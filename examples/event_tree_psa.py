"""A miniature level-1 PSA: event tree + SD fault trees end to end.

The paper situates SD fault trees inside full probabilistic safety
assessments, where *event trees* capture the order in which safety
functions are demanded ("Event trees can span over tens of safety
functions, offering a possibility for long triggering chains",
Section V-A).  This script builds a small but complete study:

1. an SD fault-tree model of two cooling functions — a main system
   whose failure *triggers* the standby system (the event-tree order
   turned into a trigger, exactly the paper's point);
2. an event tree over a loss-of-feedwater initiator with sequences to
   OK, core damage (CD) and a severe state;
3. quantification of every sequence, both statically and dynamically;
4. rate-sensitivity of the dominant dynamic component.

Run:  python examples/event_tree_psa.py
"""

from repro.core.analyzer import AnalysisOptions
from repro.core.sdft import SdFaultTreeBuilder
from repro.core.sensitivity import rate_sensitivity
from repro.core.analyzer import analyze
from repro.ctmc.builders import repairable, triggered_erlang
from repro.eventtree.quantify import quantify_event_tree
from repro.eventtree.tree import EventTreeBuilder


def build_plant_model():
    """Two cooling functions; the standby one is trigger-coupled."""
    b = SdFaultTreeBuilder("mini-psa")
    # Main feedwater-like system: one pump train, runs from time zero.
    b.static_event("MAIN-VALVE", 2e-3, "main suction valve stuck")
    b.dynamic_event(
        "MAIN-PUMP", repairable(2e-3, 0.1), "main pump fails in operation"
    )
    b.or_("MAIN-COOLING", "MAIN-VALVE", "MAIN-PUMP")

    # Standby system: fails to start statically, fails in operation
    # dynamically, and is only demanded once the main system has failed.
    b.static_event("STBY-FTS", 5e-3, "standby pump fails to start")
    b.dynamic_event(
        "STBY-PUMP",
        triggered_erlang(2, 3e-3, 0.08),
        "standby pump fails in operation",
    )
    b.or_("STBY-COOLING", "STBY-FTS", "STBY-PUMP")
    b.trigger("MAIN-COOLING", "STBY-PUMP")

    # Late heat removal as a simple static function.
    b.static_event("RHR-TRAIN", 4e-3, "residual heat removal unavailable")
    b.or_("HEAT-REMOVAL", "RHR-TRAIN")

    # A top gate so the model is well-formed on its own.
    b.and_("BOTH-COOLING", "MAIN-COOLING", "STBY-COOLING")
    b.or_("PLANT-TOP", "BOTH-COOLING", "HEAT-REMOVAL")
    return b.build("PLANT-TOP")


def build_event_tree():
    return (
        EventTreeBuilder("LOFW", "loss of feedwater", 0.1)
        .functional_event("MAIN", "MAIN-COOLING", "main cooling runs")
        .functional_event("STBY", "STBY-COOLING", "standby cooling starts")
        .functional_event("RHR", "HEAT-REMOVAL", "residual heat removal")
        .sequence("S-OK", "OK", MAIN=False)
        .sequence("S-STBY-OK", "OK", MAIN=True, STBY=False)
        .sequence("S-CD", "CD", MAIN=True, STBY=True, RHR=False)
        .sequence("S-SEVERE", "SEVERE", MAIN=True, STBY=True, RHR=True)
        .build()
    )


def main() -> None:
    sdft = build_plant_model()
    event_tree = build_event_tree()
    options = AnalysisOptions(horizon=24.0)

    print("=== sequence quantification (24 h mission) ===")
    result = quantify_event_tree(event_tree, sdft, options)
    print(f"{'sequence':12s} {'consequence':12s} {'probability':>12s} "
          f"{'frequency':>12s} {'cutsets':>8s}")
    for sequence in result.sequences:
        print(
            f"{sequence.name:12s} {sequence.consequence:12s} "
            f"{sequence.probability:12.3e} {sequence.frequency:12.3e} "
            f"{sequence.n_cutsets:8d}"
        )
    print()
    print("consequence totals:")
    for consequence, frequency in result.by_consequence().items():
        print(f"  {consequence:8s} {frequency:.3e} /demand-year-ish")
    print()

    print("=== rate sensitivity of the dynamic pumps ===")
    top_result = analyze(sdft, options)
    for event in ("MAIN-PUMP", "STBY-PUMP"):
        sensitivity = rate_sensitivity(sdft, top_result, event, relative_step=0.05)
        print(
            f"  {event:10s} elasticity {sensitivity.elasticity:+.2f} "
            f"(P: {sensitivity.base_probability:.3e} -> "
            f"{sensitivity.perturbed_probability:.3e} at +5% rates)"
        )
    print()
    print("the standby pump's elasticity is smaller: its exposure is")
    print("limited to the windows in which the main system is down.")


if __name__ == "__main__":
    main()
