"""Section VI-A walkthrough: the fictive BWR safety study.

Rebuilds the paper's small-size experiment: a boiling-water-reactor
core-damage model with five cooling-related systems (ECC, EFW, RHR and
the support systems CCW and SWS), two redundant pump trains each, and a
FEED&BLEED operator recovery.  The script prints the paper's table —
the effect of adding repairs and then trigger stages one by one on the
computed core-damage frequency and the analysis time.

Expected shape (the paper's absolute numbers use proprietary failure
data): the frequency *drops monotonically* as repairs get faster and as
more sequencing knowledge (triggers) is added, because a purely static
analysis over-counts scenarios in which equipment would not actually
have been running or would have been repaired.

Run:  python examples/bwr_case_study.py        (about 2-4 minutes)
"""

import time

from repro import AnalysisOptions, analyze, analyze_static
from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr


def main() -> None:
    horizon = 24.0
    options = AnalysisOptions(horizon=horizon)

    static_model = build_bwr(BwrConfig(dynamic=False))
    n_events = len(static_model.all_event_names)
    n_gates = len(static_model.gates)
    print(f"model: {n_events} basic events, {n_gates} gates")
    baseline = analyze_static(static_model, options)
    print(f"{'setting':34s} {'failure freq.':>14s} {'analysis time':>14s}")
    print(f"{'no timing (static analysis)':34s} {baseline:14.3e} {'-':>14s}")

    # Part 1: dynamic events with varying repair rate, no triggers yet.
    for label, repair_rate in (
        ("no repair", None),
        ("repair rate 1/1000 h", 1e-3),
        ("repair rate 1/100 h", 1e-2),
        ("repair rate 1/20 h", 5e-2),
    ):
        config = BwrConfig(repair_rate=repair_rate)
        row = _run(config, options)
        print(f"{label:34s} {row[0]:14.3e} {row[1]:13.1f}s")

    # Part 2: add the trigger stages cumulatively (paper's second block).
    for i in range(1, len(TRIGGER_STAGES) + 1):
        stages = TRIGGER_STAGES[:i]
        config = BwrConfig(repair_rate=5e-2, triggers=stages)
        row = _run(config, options)
        label = f"+{stages[-1]} trigger"
        print(f"{label:34s} {row[0]:14.3e} {row[1]:13.1f}s")

    # Diagnostics of the fully dynamic model (paper's closing paragraph
    # of VI-A: how many cutsets are dynamic, how many dynamic events per
    # cutset, and how many were added by trigger modelling).
    result = analyze(build_bwr(BwrConfig(repair_rate=5e-2, triggers=TRIGGER_STAGES)), options)
    mean_total, mean_added = result.mean_dynamic_events()
    print()
    print(f"fully dynamic model: {result.n_cutsets} minimal cutsets, "
          f"{result.n_dynamic_cutsets} need dynamic analysis")
    print(f"average dynamic events per dynamic cutset: {mean_total:.2f}, "
          f"of which {mean_added:.2f} added because triggering gates lack "
          f"static branching")


def _run(config: BwrConfig, options: AnalysisOptions) -> tuple[float, float]:
    started = time.perf_counter()
    result = analyze(build_bwr(config), options)
    return result.failure_probability, time.perf_counter() - started


if __name__ == "__main__":
    main()
