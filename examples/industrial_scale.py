"""Section VI-B walkthrough: industrial-size studies with static branching.

The paper's large-scale experiments take real (proprietary) nuclear
safety studies and dynamise them mechanically: the basic events with the
highest Fussell–Vesely importance become dynamic, and trigger chains are
formed between events of equal importance (symmetric redundant trains).
This script runs the same methodology on the synthetic PSA stand-in
``model_1``:

1. generate the static model and its minimal cutsets;
2. rank events by FV importance;
3. sweep the dynamised fraction (10 % ... 100 %) and report failure
   frequency, analysis time, and the histogram of dynamic events per
   cutset (the paper's Figure 2 data).

Expected shape: the first ~40 % of dynamised events produce most of the
frequency change, and the analysis time flattens once the distribution
of per-cutset chain sizes stops changing.

Run:  python examples/industrial_scale.py       (a few minutes)
"""

import time

from repro import AnalysisOptions, analyze
from repro.ft import mocus
from repro.models.enrich import dynamize, plan_dynamization
from repro.models.synthetic import model_1


def main() -> None:
    horizon = 24.0
    print("generating synthetic study (stand-in for the paper's model 1)...")
    tree = model_1()
    started = time.perf_counter()
    static_cutsets = mocus(tree).cutsets
    generation_time = time.perf_counter() - started
    print(
        f"{len(tree.events)} basic events, {len(tree.gates)} gates, "
        f"{len(static_cutsets)} minimal cutsets above 1e-15 "
        f"({generation_time:.1f}s)"
    )
    print(f"static failure frequency: {static_cutsets.rare_event():.3e}")
    print()

    print(
        f"{'% dyn. BE':>10s} {'% trig. BE':>11s} {'failure freq.':>14s} "
        f"{'analysis time':>14s} {'dyn MCS':>8s} {'mean dyn/MCS':>13s}"
    )
    print(f"{0:10d} {0:11d} {static_cutsets.rare_event():14.3e} {'-':>14s}"
          f" {0:8d} {'-':>13s}")
    for percent in (10, 20, 30, 40, 50, 100):
        plan = plan_dynamization(
            static_cutsets,
            dynamic_fraction=percent / 100.0,
            triggered_fraction=0.1,
        )
        sdft = dynamize(tree, plan, horizon=horizon)
        started = time.perf_counter()
        result = analyze(sdft, AnalysisOptions(horizon=horizon))
        elapsed = time.perf_counter() - started
        mean_total, _ = result.mean_dynamic_events()
        trig_percent = round(100.0 * plan.n_triggered / max(1, len(tree.events)))
        print(
            f"{percent:10d} {trig_percent:11d} "
            f"{result.failure_probability:14.3e} {elapsed:13.1f}s "
            f"{result.n_dynamic_cutsets:8d} {mean_total:13.2f}"
        )

    # Figure 2 data: the histogram of dynamic events per cutset at the
    # final dynamization level.
    print()
    print("histogram of dynamic events per minimal cutset (100% dynamised):")
    for size, count in result.dynamic_event_histogram().items():
        bar = "#" * max(1, round(40 * count / result.n_dynamic_cutsets))
        print(f"  {size:2d} dynamic events: {count:6d}  {bar}")


if __name__ == "__main__":
    main()
