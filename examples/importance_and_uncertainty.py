"""Importance measures, CCF modelling and uncertainty propagation.

The paper's concluding remark points out that importance and
uncertainty analyses re-evaluate the minimal-cutset list many times —
and that the SD method keeps that cheap because no new cutset
generation is needed.  This script demonstrates the supporting static
machinery on the BWR study:

1. generate the cutsets of the static BWR model;
2. rank events by the four standard importance measures (the FV ranking
   is what drives the dynamization methodology of Section VI-B);
3. expand the ECC pump pair into a proper alpha-factor CCF group and
   show the effect on the top frequency;
4. propagate lognormal parameter uncertainty through the cutset list.

Run:  python examples/importance_and_uncertainty.py
"""

from repro.ft import mocus
from repro.ft.ccf import alpha_factor_group, apply_ccf
from repro.ft.importance import importance
from repro.ft.uncertainty import LogNormal, propagate
from repro.core.to_static import to_static
from repro.models.bwr import BwrConfig, build_bwr


def main() -> None:
    sdft = build_bwr(BwrConfig(dynamic=False, include_ccf=False))
    tree = to_static(sdft, horizon=24.0).tree
    cutsets = mocus(tree).cutsets
    print(
        f"static BWR model: {len(tree.events)} events, "
        f"{len(cutsets)} minimal cutsets, "
        f"frequency {cutsets.rare_event():.3e}"
    )
    print()

    print("top 10 events by Fussell-Vesely importance:")
    measures = sorted(importance(cutsets).values(), key=lambda m: -m.fussell_vesely)
    print(f"{'event':26s} {'FV':>10s} {'Birnbaum':>10s} {'RAW':>8s} {'RRW':>8s}")
    for m in measures[:10]:
        print(
            f"{m.event:26s} {m.fussell_vesely:10.3e} {m.birnbaum:10.3e} "
            f"{m.risk_achievement_worth:8.2f} {m.risk_reduction_worth:8.2f}"
        )
    print()

    # --- CCF: replace the simple beta-style events by an alpha-factor
    # group over the two ECC pumps (fail-to-start).
    group = alpha_factor_group(
        "ECC-PUMPS",
        ["ECC-A-PUMP-FTS", "ECC-B-PUMP-FTS"],
        probability=3e-3,
        alphas=[0.95, 0.05],
    )
    with_ccf = apply_ccf(tree, [group])
    ccf_cutsets = mocus(with_ccf).cutsets
    print("alpha-factor CCF on the ECC pumps:")
    print(f"  frequency without explicit CCF: {cutsets.rare_event():.3e}")
    print(f"  frequency with alpha-factor CCF: {ccf_cutsets.rare_event():.3e}")
    print("  (the common-cause term fails both redundant pumps at once and")
    print("   typically dominates the double-random-failure term)")
    print()

    # --- Uncertainty propagation: lognormal error factors by event class.
    distributions = {}
    for name, event in tree.events.items():
        if event.probability <= 0.0:
            continue
        error_factor = 10.0 if "OPERATOR" in name else 3.0
        distributions[name] = LogNormal(event.probability, error_factor)
    summary = propagate(cutsets, distributions, n_samples=20_000, seed=11)
    print("lognormal uncertainty propagation (20,000 samples):")
    print(f"  mean     {summary.mean:.3e}")
    print(f"  median   {summary.median:.3e}")
    print(f"  p05      {summary.p05:.3e}")
    print(f"  p95      {summary.p95:.3e}")
    print(f"  implied error factor {summary.error_factor:.2f}")


if __name__ == "__main__":
    main()
