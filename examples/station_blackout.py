"""Station blackout: sequence-dependent behaviour no static tree can see.

The post-Fukushima concern that motivates the paper's longer analysis
horizons is the station blackout: offsite power lost, diesels failed,
batteries draining *only while the blackout lasts*.  This script builds
the SBO study in `repro.models.sbo` and shows three things:

1. the static analysis massively over-predicts core damage because it
   cannot model the grid being restored after a few hours, nor that the
   batteries only deplete during the blackout;
2. the per-cutset dynamic analysis agrees with the exact product chain
   (this model is small enough to solve exactly) and with Monte-Carlo
   simulation;
3. design questions get quantitative answers: coping time (battery
   size) and grid-recovery assumptions move the result by orders of
   magnitude, and the cut-completion analysis shows *how* the accident
   unfolds (which event tends to strike last).

Run:  python examples/station_blackout.py
"""

from repro.core.analyzer import AnalysisOptions, analyze, analyze_exact, analyze_static
from repro.core.cut_sequences import completion_distribution
from repro.ctmc.simulate import simulate_failure_probability
from repro.models.sbo import SboConfig, build_sbo


def main() -> None:
    horizon = 24.0
    options = AnalysisOptions(horizon=horizon)
    sdft = build_sbo()
    print(f"model: {sdft}")
    print()

    print("=== static vs dynamic vs exact (24 h) ===")
    static_value = analyze_static(sdft, options)
    result = analyze(sdft, options)
    exact = analyze_exact(sdft, horizon)
    simulated = simulate_failure_probability(sdft, horizon, n_runs=60_000, seed=5)
    print(f"static (no timing):     {static_value:.3e}")
    print(f"per-cutset dynamic:     {result.failure_probability:.3e}")
    print(f"exact product chain:    {exact:.3e}")
    print(f"Monte-Carlo (60k runs): {simulated.estimate:.3e}")
    print(f"-> static overshoots the exact value {static_value / exact:.0f}x;")
    print(f"   the dynamic decomposition is within "
          f"{100 * (result.failure_probability / exact - 1):.1f}%.")
    print()

    print("=== design sweeps ===")
    print(f"{'coping time (battery)':>24s} {'core damage':>14s}")
    for hours in (2.0, 4.0, 8.0, 16.0):
        value = analyze(
            build_sbo(SboConfig(battery_hours=hours)), options
        ).failure_probability
        print(f"{hours:21.0f} h  {value:14.3e}")
    print()
    print(f"{'mean grid recovery':>24s} {'core damage':>14s}")
    for rate, label in ((1.0, "1 h"), (0.25, "4 h"), (0.1, "10 h")):
        value = analyze(
            build_sbo(SboConfig(grid_recovery_rate=rate)), options
        ).failure_probability
        print(f"{label:>22s}   {value:14.3e}")
    print()

    print("=== how the dominant cutset unfolds ===")
    dominant = result.top_contributors(1)[0]
    completion = completion_distribution(sdft, dominant.cutset, horizon)
    print(f"cutset {{{', '.join(sorted(dominant.cutset))}}} "
          f"(p = {dominant.probability:.3e}):")
    for event, probability in sorted(
        completion.by_event.items(), key=lambda kv: -kv[1]
    ):
        share = probability / completion.total
        print(f"  completed by {event:14s} {share:6.1%} of the time")


if __name__ == "__main__":
    main()
