"""Quickstart: the paper's running example (Sections II–III).

An emergency cooling system with a water tank and two redundant pumps:

* pump 1 can fail to start (static ``a``) or fail in operation
  (dynamic, repairable ``b``);
* pump 2 is a spare: same failure modes (``c`` static, ``d`` dynamic),
  but it only operates — and can only fail — after pump 1 has failed,
  which is modelled by a *trigger* from the pump-1 gate;
* the tank failure ``e`` is static and rare.

The script builds the SD fault tree, runs the scalable per-cutset
analysis, and cross-checks it against the exact product-chain
probability and a Monte-Carlo simulation (both only feasible because
this model is tiny).

Run:  python examples/quickstart.py
"""

from repro import AnalysisOptions, SdFaultTreeBuilder, analyze, analyze_exact
from repro.ctmc import repairable, triggered_repairable
from repro.ctmc.simulate import simulate_failure_probability


def build_cooling_system():
    """The SD fault tree of paper Example 3."""
    b = SdFaultTreeBuilder("emergency-cooling")
    b.static_event("a", 3e-3, "pump 1 fails to start")
    b.static_event("c", 3e-3, "pump 2 fails to start")
    b.static_event("e", 3e-6, "water tank fails")
    # Failure rate 0.001/h (once per 1000 h), repair rate 0.05/h (Example 2).
    b.dynamic_event("b", repairable(0.001, 0.05), "pump 1 fails in operation")
    b.dynamic_event("d", triggered_repairable(0.001, 0.05), "pump 2 fails in operation")
    b.or_("pump1", "a", "b")
    b.or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")  # pump 2 starts when pump 1 fails
    return b.build("cooling")


def main() -> None:
    sdft = build_cooling_system()
    print(f"model: {sdft}")
    print()

    horizon = 24.0
    result = analyze(sdft, AnalysisOptions(horizon=horizon))
    print("=== scalable per-cutset analysis (the paper's method) ===")
    print(result.summary())
    print()
    print("minimal cutsets and their quantified probabilities:")
    for record in result.records:
        kind = "dynamic" if record.is_dynamic else "static "
        print(
            f"  {{{', '.join(sorted(record.cutset))}}}: "
            f"{record.probability:.3e}  [{kind}, "
            f"{record.chain_states} chain states]"
        )
    print()

    exact = analyze_exact(sdft, horizon)
    print("=== cross-checks (exact methods that do NOT scale) ===")
    print(f"exact product-chain probability: {exact:.3e}")
    simulated = simulate_failure_probability(sdft, horizon, n_runs=100_000, seed=7)
    low, high = simulated.confidence_interval
    print(f"Monte-Carlo estimate:            {simulated.estimate:.3e} "
          f"(95% CI [{low:.3e}, {high:.3e}])")
    print()
    over = result.failure_probability / exact
    conservatism = result.static_bound / exact
    print(f"per-cutset rare-event sum is {over:.3f}x the exact value "
          f"(slight over-approximation, as designed);")
    print(f"a purely static analysis would be {conservatism:.2f}x too "
          f"conservative for this 24 h mission.")


if __name__ == "__main__":
    main()
