"""Tests of the multi-initiator Study and the failure-probability curve."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_curve
from repro.errors import ModelError
from repro.eventtree.study import Study
from repro.eventtree.tree import EventTreeBuilder


class TestAnalyzeCurve:
    def test_matches_individual_analyses(self, cooling_sdft):
        horizons = [6.0, 24.0, 96.0]
        curve = analyze_curve(cooling_sdft, horizons)
        for horizon in horizons:
            individual = analyze(
                cooling_sdft, AnalysisOptions(horizon=horizon)
            ).failure_probability
            assert curve[horizon] == pytest.approx(individual, rel=1e-6)

    def test_monotone_nondecreasing(self, cooling_sdft):
        curve = analyze_curve(cooling_sdft, [1.0, 12.0, 48.0, 200.0])
        values = [curve[t] for t in sorted(curve)]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1e-12

    def test_duplicate_horizons_collapse(self, cooling_sdft):
        curve = analyze_curve(cooling_sdft, [24.0, 24.0, 24.0])
        assert list(curve) == [24.0]

    def test_empty_horizons(self, cooling_sdft):
        assert analyze_curve(cooling_sdft, []) == {}

    def test_negative_horizon_rejected(self, cooling_sdft):
        with pytest.raises(ValueError):
            analyze_curve(cooling_sdft, [-1.0, 24.0])


class TestStudy:
    def _study(self, cooling_sdft):
        study = Study(cooling_sdft, "mini-study")
        study.add_initiator(
            EventTreeBuilder("TRANSIENT", "transient", 0.5)
            .functional_event("PUMPS", "pumps")
            .sequence("T-CD", "CD", PUMPS=True)
            .build()
        )
        study.add_initiator(
            EventTreeBuilder("LOCA", "small LOCA", 0.01)
            .functional_event("PUMPS", "pumps")
            .functional_event("TANK", "tank-wrap")
            .sequence("L-CD", "CD", PUMPS=True)
            .sequence("L-SEVERE", "SEVERE", PUMPS=True, TANK=True)
            .build()
        )
        return study

    @pytest.fixture
    def wrapped_sdft(self, cooling_sdft):
        """The cooling SD model with a wrapper gate for the tank."""
        from repro.core.sdft import SdFaultTreeBuilder

        b = SdFaultTreeBuilder("cooling+wrap")
        for event in cooling_sdft.static_events.values():
            b.static_event(event.name, event.probability)
        for event in cooling_sdft.dynamic_events.values():
            b.dynamic_event(event.name, event.chain)
        for gate in cooling_sdft.gates.values():
            b.gate(gate.name, gate.gate_type, gate.children, gate.k)
        b.or_("tank-wrap", "e")
        b.trigger("pump1", "d")
        return b.build("cooling")

    def test_totals_aggregate_initiators(self, wrapped_sdft):
        study = self._study(wrapped_sdft)
        result = study.quantify(AnalysisOptions(horizon=24.0))
        t_cd = result.by_initiator["TRANSIENT"].consequence_frequency("CD")
        l_cd = result.by_initiator["LOCA"].consequence_frequency("CD")
        assert result.totals["CD"] == pytest.approx(t_cd + l_cd)
        assert "SEVERE" in result.totals

    def test_dominant_initiator(self, wrapped_sdft):
        study = self._study(wrapped_sdft)
        result = study.quantify(AnalysisOptions(horizon=24.0))
        # The transient's frequency (0.5) dwarfs the LOCA's (0.01).
        assert result.dominant_initiator("CD") == "TRANSIENT"
        assert result.contribution("TRANSIENT", "CD") > 0.9
        assert result.contribution("TRANSIENT", "CD") + result.contribution(
            "LOCA", "CD"
        ) == pytest.approx(1.0)

    def test_duplicate_initiator_rejected(self, wrapped_sdft):
        study = self._study(wrapped_sdft)
        with pytest.raises(ModelError):
            study.add_initiator(
                EventTreeBuilder("TRANSIENT", "again", 0.1)
                .functional_event("PUMPS", "pumps")
                .sequence("S", "CD", PUMPS=True)
                .build()
            )

    def test_empty_study_rejected(self, wrapped_sdft):
        with pytest.raises(ModelError):
            Study(wrapped_sdft).quantify()

    def test_contribution_of_absent_consequence(self, wrapped_sdft):
        study = self._study(wrapped_sdft)
        result = study.quantify(AnalysisOptions(horizon=24.0))
        assert result.contribution("TRANSIENT", "NOPE") == 0.0
        assert result.dominant_initiator("NOPE") is None
