"""Tests of the JSONL export, schema validator and trace report."""

import json

import pytest

from repro.obs.core import Observability
from repro.obs.export import (
    TRACE_SCHEMA,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from repro.obs.report import metric_highlights, render_trace_report


def _write_sample(path):
    obs = Observability.collecting()
    with obs.tracer.span("analyze", model="demo"):
        with obs.tracer.span("quantify") as span:
            span.set(records=3)
    obs.metrics.count("quantify.dedup_hits", 7)
    obs.metrics.observe("transient.series_terms", 12.0)
    return write_trace(
        path, obs.tracer.records(), obs.metrics.snapshot(), attrs={"jobs": "1"}
    )


class TestWriteTrace:
    def test_round_trip_is_schema_valid(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        n_lines = _write_sample(path)
        counts = validate_trace_file(path)
        assert counts == {"spans": 2, "counters": 1, "histograms": 1}
        assert n_lines == 1 + sum(counts.values())

    def test_header_carries_schema_and_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_sample(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "meta"
        assert header["schema"] == TRACE_SCHEMA
        assert header["attrs"] == {"jobs": "1"}

    def test_empty_run_still_valid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_trace(path, [], None)
        assert validate_trace_file(path) == {
            "spans": 0, "counters": 0, "histograms": 0,
        }


class TestValidator:
    def _span(self, span_id="1", parent=None, **extra):
        line = {
            "type": "span", "name": "s", "t0": 0.0, "wall": 0.1, "cpu": 0.1,
            "span_id": span_id, "parent_id": parent, "depth": 0, "attrs": {},
        }
        line.update(extra)
        return line

    def _header(self):
        return {"type": "meta", "schema": TRACE_SCHEMA, "tool": "repro",
                "attrs": {}}

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="meta header"):
            validate_trace_lines([self._span()])
        with pytest.raises(ValueError, match="empty trace"):
            validate_trace_lines([])

    def test_wrong_schema_rejected(self):
        header = self._header()
        header["schema"] = "repro-trace/99"
        with pytest.raises(ValueError, match="unsupported schema"):
            validate_trace_lines([header])

    def test_missing_span_field_rejected(self):
        span = self._span()
        del span["wall"]
        with pytest.raises(ValueError, match="missing 'wall'"):
            validate_trace_lines([self._header(), span])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            validate_trace_lines([self._header(), self._span(wall=-1.0)])

    def test_duplicate_span_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate span_id"):
            validate_trace_lines(
                [self._header(), self._span("1"), self._span("1")]
            )

    def test_dangling_parent_rejected(self):
        with pytest.raises(ValueError, match="names no span"):
            validate_trace_lines(
                [self._header(), self._span("2", parent="missing")]
            )

    def test_forward_parent_reference_allowed(self):
        """Completion order writes children before parents; the parent
        check must be file-global, not line-local."""
        counts = validate_trace_lines(
            [self._header(), self._span("2", parent="1"), self._span("1")]
        )
        assert counts["spans"] == 2

    def test_unknown_line_type_rejected(self):
        with pytest.raises(ValueError, match="unknown line type"):
            validate_trace_lines([self._header(), {"type": "mystery"}])

    def test_inconsistent_histogram_rejected(self):
        bad = {"type": "histogram", "name": "h", "count": 1, "total": 1.0,
               "min": 5.0, "max": 1.0}
        with pytest.raises(ValueError, match="inconsistent histogram"):
            validate_trace_lines([self._header(), bad])

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            validate_trace_file(path)


class TestReport:
    def test_render_contains_spans_and_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_sample(path)
        report = render_trace_report(path)
        assert "analyze" in report
        assert "quantify" in report
        assert "quantify.dedup_hits = 7" in report
        assert "transient.series_terms" in report
        assert TRACE_SCHEMA in report
        assert "jobs=1" in report

    def test_share_is_relative_to_root_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_sample(path)
        report = render_trace_report(path)
        analyze_row = next(
            line for line in report.splitlines()
            if line.startswith("analyze")
        )
        assert "100.0%" in analyze_row


class TestMetricHighlights:
    def test_empty_snapshot_no_lines(self):
        assert metric_highlights(None) == []
        assert metric_highlights({"counters": {}, "histograms": {}}) == []

    def test_only_present_sections_rendered(self):
        snapshot = {
            "counters": {"quantify.dedup_hits": 9, "quantify.dedup_misses": 1},
            "histograms": {},
        }
        lines = metric_highlights(snapshot)
        assert len(lines) == 1
        assert "90% shared" in lines[0]

    def test_pool_and_ladder_lines(self):
        snapshot = {
            "counters": {
                "ladder.descents": 2,
                "ladder.attempts_failed": 3,
                "pool.worker_faults": 1,
            },
            "histograms": {
                "pool.queue_wait_seconds": {
                    "count": 4, "total": 0.4, "min": 0.05, "max": 0.2,
                },
            },
        }
        lines = "\n".join(metric_highlights(snapshot))
        assert "pool: 4 tasks" in lines
        assert "1 worker faults" in lines
        assert "ladder: 2 descents" in lines

    def test_verify_and_pool_recovery_lines(self):
        snapshot = {
            "counters": {
                "verify.checks": 1200,
                "verify.violations": 2,
                "pool.rebuilds": 1,
                "pool.retries": 1,
                "pool.quarantined": 1,
            },
            "histograms": {},
        }
        lines = "\n".join(metric_highlights(snapshot))
        assert "verify: 1200 invariant checks, 2 violations" in lines
        assert "pool recovery: 1 rebuilds" in lines
        assert "1 quarantined" in lines

    def test_clean_run_shows_no_recovery_line(self):
        snapshot = {
            "counters": {"verify.checks": 10, "verify.violations": 0},
            "histograms": {},
        }
        lines = "\n".join(metric_highlights(snapshot))
        assert "verify: 10 invariant checks, 0 violations" in lines
        assert "pool recovery" not in lines
