"""Tests of the metrics registry: counters, histograms, snapshots, merging."""

from repro.obs.core import NULL_OBS, Observability
from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class TestNullMetrics:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.count("anything", 5)
        NULL_METRICS.observe("anything", 1.0)
        NULL_METRICS.merge_snapshot({"counters": {"x": 1}, "histograms": {}})
        assert NULL_METRICS.snapshot() == {"counters": {}, "histograms": {}}


class TestCounters:
    def test_count_accumulates(self):
        metrics = MetricsRegistry()
        metrics.count("hits")
        metrics.count("hits", 4)
        assert metrics.counter("hits") == 5
        assert metrics.counter("never-touched") == 0

    def test_snapshot_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.count("a", 2)
        snapshot = metrics.snapshot()
        metrics.count("a", 1)
        assert snapshot["counters"]["a"] == 2


class TestHistograms:
    def test_observe_tracks_count_total_min_max(self):
        metrics = MetricsRegistry()
        for value in (3.0, 1.0, 7.0):
            metrics.observe("terms", value)
        entry = metrics.snapshot()["histograms"]["terms"]
        assert entry == {"count": 3, "total": 11.0, "min": 1.0, "max": 7.0}

    def test_single_observation(self):
        metrics = MetricsRegistry()
        metrics.observe("wait", 0.25)
        entry = metrics.snapshot()["histograms"]["wait"]
        assert entry == {"count": 1, "total": 0.25, "min": 0.25, "max": 0.25}


class TestMergeSnapshot:
    def test_merges_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.count("transient.early_exit", 2)
        worker.observe("transient.series_terms", 10.0)
        worker.observe("transient.series_terms", 30.0)

        parent = MetricsRegistry()
        parent.count("transient.early_exit")
        parent.observe("transient.series_terms", 20.0)
        parent.merge_snapshot(worker.snapshot())

        snapshot = parent.snapshot()
        assert snapshot["counters"]["transient.early_exit"] == 3
        terms = snapshot["histograms"]["transient.series_terms"]
        assert terms == {"count": 3, "total": 60.0, "min": 10.0, "max": 30.0}

    def test_merge_order_is_irrelevant(self):
        """The property the cross-jobs determinism guarantee rests on:
        folding worker snapshots in any completion order yields the
        same totals."""
        snapshots = []
        for values in ((1.0, 5.0), (2.0,), (9.0, 3.0)):
            worker = MetricsRegistry()
            for v in values:
                worker.observe("h", v)
                worker.count("c")
            snapshots.append(worker.snapshot())

        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for s in snapshots:
            forward.merge_snapshot(s)
        for s in reversed(snapshots):
            backward.merge_snapshot(s)
        assert forward.snapshot() == backward.snapshot()

    def test_empty_snapshot_noop(self):
        metrics = MetricsRegistry()
        metrics.count("a")
        metrics.merge_snapshot(None)
        metrics.merge_snapshot({})
        assert metrics.snapshot()["counters"] == {"a": 1}


class TestObservabilityBundle:
    def test_null_bundle_disabled(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.tracer.enabled is False
        assert NULL_OBS.metrics.enabled is False

    def test_collecting_enables_both(self):
        obs = Observability.collecting(prefix="t3.")
        assert obs.enabled
        with obs.tracer.span("x"):
            pass
        assert obs.tracer.records()[0].span_id == "t3.1"

    def test_from_options(self):
        assert Observability.from_options(None, False) is NULL_OBS
        assert Observability.from_options("/tmp/t.jsonl", False).enabled
        assert Observability.from_options(None, True).enabled
