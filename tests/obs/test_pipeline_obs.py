"""End-to-end observability contract of the analysis pipeline.

Three guarantees:

* tracing never changes results — a traced run is bit-identical to an
  untraced one, serial or parallel;
* the written trace is schema-valid and covers every pipeline phase
  (including pool-task spans shipped back from worker processes);
* the analysis-derived metrics (``mocus.*``, ``transient.*``,
  ``quantify.dedup_*``) are identical across ``jobs`` settings — only
  the execution metrics (``pool.*``) depend on how the run executed.
"""

import dataclasses

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.obs.export import validate_trace_file
from repro.robust.budget import Budget

#: The metric families derived from the analysis itself, not from how it
#: was executed; these must not depend on ``jobs``.
DETERMINISTIC_PREFIXES = ("mocus.", "transient.", "quantify.", "ladder.")


def masked_records(result):
    return [dataclasses.replace(r, solve_seconds=0.0) for r in result.records]


def deterministic_counters(snapshot):
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


def deterministic_histograms(snapshot):
    return {
        name: value
        for name, value in snapshot["histograms"].items()
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


class TestTracingIsInert:
    def test_traced_run_matches_untraced(self, cooling_sdft, tmp_path):
        plain = analyze(cooling_sdft, AnalysisOptions())
        traced = analyze(
            cooling_sdft,
            AnalysisOptions(
                trace_path=str(tmp_path / "trace.jsonl"), collect_metrics=True
            ),
        )
        assert traced.failure_probability == plain.failure_probability
        assert traced.static_bound == plain.static_bound
        assert masked_records(traced) == masked_records(plain)
        assert (traced.cache_hits, traced.cache_misses) == (
            plain.cache_hits, plain.cache_misses,
        )
        assert plain.metrics is None
        assert traced.metrics is not None

    def test_untraced_result_has_no_metrics_overhead_artifacts(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions())
        assert result.metrics is None
        assert "metrics:" not in result.summary()

    def test_metrics_only_run_skips_trace_file(self, cooling_sdft, tmp_path):
        result = analyze(cooling_sdft, AnalysisOptions(collect_metrics=True))
        assert result.metrics is not None
        assert "metrics:" in result.summary()
        assert list(tmp_path.iterdir()) == []


class TestTraceFile:
    def test_schema_valid_and_covers_every_phase(self, cooling_sdft, tmp_path):
        path = tmp_path / "trace.jsonl"
        analyze(cooling_sdft, AnalysisOptions(trace_path=str(path)))
        counts = validate_trace_file(path)
        assert counts["spans"] >= 4
        assert counts["counters"] > 0

        import json

        names = set()
        for raw in path.read_text().splitlines():
            line = json.loads(raw)
            if line["type"] == "span":
                names.add(line["name"])
        assert {"analyze", "translate", "mocus", "quantify"} <= names
        assert "quantify.solve" in names  # dynamic cutsets were solved

    def test_parallel_trace_contains_worker_task_spans(
        self, cooling_sdft, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        analyze(cooling_sdft, AnalysisOptions(jobs=2, trace_path=str(path)))
        validate_trace_file(path)

        import json

        task_spans = [
            json.loads(raw)
            for raw in path.read_text().splitlines()
            if '"pool.task"' in raw
        ]
        assert task_spans
        for span in task_spans:
            assert span["span_id"].startswith("t")
            assert span["parent_id"] is not None
        # Queue-wait metrics landed with the spans.
        result = analyze(
            cooling_sdft, AnalysisOptions(jobs=2, collect_metrics=True)
        )
        assert result.metrics["counters"]["pool.tasks"] > 0
        assert "pool.queue_wait_seconds" in result.metrics["histograms"]

    def test_health_notes_the_trace(self, cooling_sdft, tmp_path):
        path = tmp_path / "trace.jsonl"
        result = analyze(cooling_sdft, AnalysisOptions(trace_path=str(path)))
        assert any(
            event.stage == "obs" for event in result.health.events
        )


class TestCrossJobsDeterminism:
    def test_analysis_metrics_identical_jobs1_vs_jobs2(self, cooling_sdft):
        serial = analyze(
            cooling_sdft, AnalysisOptions(jobs=1, collect_metrics=True)
        )
        parallel = analyze(
            cooling_sdft, AnalysisOptions(jobs=2, collect_metrics=True)
        )
        assert parallel.failure_probability == serial.failure_probability
        assert masked_records(parallel) == masked_records(serial)
        assert deterministic_counters(parallel.metrics) == (
            deterministic_counters(serial.metrics)
        )
        assert deterministic_histograms(parallel.metrics) == (
            deterministic_histograms(serial.metrics)
        )
        # The execution metrics differ by construction.
        assert "pool.tasks" in parallel.metrics["counters"]
        assert "pool.tasks" not in serial.metrics["counters"]

    def test_dedup_counters_match_cache_totals(self, cooling_sdft):
        result = analyze(
            cooling_sdft, AnalysisOptions(collect_metrics=True)
        )
        counters = result.metrics["counters"]
        assert counters["quantify.dedup_hits"] == result.cache_hits
        assert counters["quantify.dedup_misses"] == result.cache_misses

    def test_series_terms_count_matches_unique_solves(self, cooling_sdft):
        """One series-length observation per actual chain solve — cache
        hits and static cutsets observe nothing."""
        result = analyze(
            cooling_sdft, AnalysisOptions(collect_metrics=True)
        )
        terms = result.metrics["histograms"]["transient.series_terms"]
        assert terms["count"] == result.cache_misses


class TestBudgetAndMocusMetrics:
    def test_budget_charges_are_counted(self, cooling_sdft):
        result = analyze(
            cooling_sdft,
            AnalysisOptions(collect_metrics=True, wall_seconds=3600.0),
        )
        counters = result.metrics["counters"]
        assert counters.get("budget.states_charged", 0) > 0

    def test_budget_counts_match_budget_attributes(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        budget = Budget(max_total_states=100, metrics=metrics)
        budget.charge_states(40, "quantify")
        budget.charge_cutset("mocus")
        assert metrics.counter("budget.states_charged") == budget.states_charged
        assert metrics.counter("budget.cutsets_charged") == budget.cutsets_charged

    def test_mocus_counters_present_and_consistent(self, cooling_sdft):
        result = analyze(
            cooling_sdft, AnalysisOptions(collect_metrics=True)
        )
        counters = result.metrics["counters"]
        assert counters["mocus.partials_expanded"] > 0
        assert counters["mocus.cutsets_minimal"] == result.n_cutsets

    def test_ladder_rung_counter_on_clean_isolated_run(self, cooling_sdft):
        result = analyze(
            cooling_sdft,
            AnalysisOptions(collect_metrics=True, fault_isolation=True),
        )
        counters = result.metrics["counters"]
        # Every cutset went through the ladder's first rung successfully.
        assert counters.get("ladder.rung.exact", 0) == result.n_cutsets
        assert "ladder.descents" not in counters
