"""Tests of the span tracer: nesting, ids, null path, worker grafting."""

import pytest

from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", key="value") as span:
            span.set(more="attrs")
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.current_id is None

    def test_span_is_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_add_foreign_discards(self):
        NULL_TRACER.add_foreign([{"name": "x"}], parent_id="1")
        assert NULL_TRACER.records() == []


class TestTracer:
    def test_records_wall_and_cpu(self):
        tracer = Tracer()
        with tracer.span("work", label="outer"):
            pass
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.attrs == {"label": "outer"}
        assert record.wall_seconds >= 0.0
        assert record.cpu_seconds >= 0.0
        assert record.parent_id is None
        assert record.depth == 0

    def test_nesting_links_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            outer_id = tracer.current_id
            with tracer.span("inner"):
                assert tracer.current_id != outer_id
        inner, outer = tracer.records()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.depth == 0
        assert tracer.current_id is None

    def test_set_updates_attributes(self):
        tracer = Tracer()
        with tracer.span("solve", cutset="a+b") as span:
            span.set(chain_states=12, probability=0.5)
        (record,) = tracer.records()
        assert record.attrs == {
            "cutset": "a+b", "chain_states": 12, "probability": 0.5,
        }

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record.attrs["error"] == "RuntimeError"
        assert tracer.current_id is None

    def test_prefix_namespaces_span_ids(self):
        tracer = Tracer(prefix="t7.")
        with tracer.span("a"):
            pass
        (record,) = tracer.records()
        assert record.span_id == "t7.1"

    def test_ids_unique_across_sequential_spans(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        ids = [r.span_id for r in tracer.records()]
        assert len(set(ids)) == 3


class TestSpanRecordRoundTrip:
    def test_to_dict_from_dict(self):
        record = SpanRecord(
            "quantify.solve", 123.0, 0.5, 0.4, "3", "1", 2, {"k": "v"}
        )
        payload = record.to_dict()
        assert payload["type"] == "span"
        assert payload["wall"] == 0.5
        rebuilt = SpanRecord.from_dict(payload)
        assert rebuilt == record


class TestAddForeign:
    def test_grafts_roots_under_parent_with_depth_shift(self):
        parent = Tracer()
        with parent.span("quantify"):
            worker = Tracer(prefix="t0.")
            with worker.span("pool.task"):
                with worker.span("solve"):
                    pass
            payloads = [r.to_dict() for r in worker.records()]
            parent.add_foreign(payloads, parent_id=parent.current_id)
        records = {r.name: r for r in parent.records()}
        quantify = records["quantify"]
        task = records["pool.task"]
        solve = records["solve"]
        assert task.parent_id == quantify.span_id
        assert task.depth == 1
        assert solve.parent_id == task.span_id
        assert solve.depth == 2

    def test_prefixes_avoid_id_collisions(self):
        parent = Tracer()
        with parent.span("quantify"):
            for task_id in range(2):
                worker = Tracer(prefix=f"t{task_id}.")
                with worker.span("pool.task"):
                    pass
                parent.add_foreign(
                    [r.to_dict() for r in worker.records()],
                    parent_id=parent.current_id,
                )
        ids = [r.span_id for r in parent.records()]
        assert len(set(ids)) == len(ids) == 3

    def test_empty_payloads_noop(self):
        tracer = Tracer()
        tracer.add_foreign([], parent_id=None)
        assert tracer.records() == []
