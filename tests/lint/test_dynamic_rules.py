"""Positive and negative tests of the trigger rules (SD3xx)."""

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import triggered_repairable
from tests.lint.helpers import codes_of, findings_for


def _dead_trigger_model():
    """A trigger whose source gate can never fail (probability-0 inputs)."""
    b = SdFaultTreeBuilder("t")
    b.static_event("a", 1e-3)
    b.static_event("z1", 0.0).static_event("z2", 0.0)
    b.dynamic_event("d", triggered_repairable(0.01, 0.1))
    b.or_("source", "z1", "z2")
    b.or_("top", "a", "d")
    b.trigger("source", "d")
    return b.build("top")


class TestTriggerNeverFires:  # SD301
    def test_never_failing_source_is_flagged(self):
        findings = findings_for(_dead_trigger_model(), "SD301")
        assert [d.node for d in findings] == ["source"]
        assert "d" in findings[0].message

    def test_live_trigger_is_fine(self, cooling_sdft):
        assert "SD301" not in codes_of(cooling_sdft)


class TestNeverSwitchedOn:  # SD302
    def test_event_behind_dead_trigger_is_flagged(self):
        findings = findings_for(_dead_trigger_model(), "SD302")
        assert [d.node for d in findings] == ["d"]

    def test_live_triggered_event_is_fine(self, cooling_sdft):
        assert "SD302" not in codes_of(cooling_sdft)


def _cascade_model(stages: int):
    """``stages`` chained triggers: g1 -(d1)-> g2 -(d2)-> g3 ...

    Gate ``g{i+1}`` contains the event triggered by ``g{i}``, so each
    stage can only switch on after the previous one failed.
    """
    b = SdFaultTreeBuilder("t")
    b.static_event("s0", 1e-3).static_event("s1", 1e-3)
    b.or_("g1", "s0", "s1")
    tops = ["g1"]
    for i in range(1, stages):
        b.static_event(f"x{i}", 1e-3)
        b.dynamic_event(f"d{i}", triggered_repairable(0.01, 0.1))
        b.trigger(f"g{i}", f"d{i}")
        b.or_(f"g{i + 1}", f"d{i}", f"x{i}")
        tops.append(f"g{i + 1}")
    b.dynamic_event("last", triggered_repairable(0.01, 0.1))
    b.trigger(f"g{stages}", "last")
    b.or_("top", "last", *tops)
    return b.build("top")


class TestTriggerCascade:  # SD303
    def test_three_stage_cascade_is_flagged(self):
        findings = findings_for(_cascade_model(3), "SD303")
        assert [d.node for d in findings] == ["g1"]
        assert "g1 -> g2 -> g3" in findings[0].message

    def test_two_stage_handoff_is_the_normal_pattern(self):
        assert "SD303" not in codes_of(_cascade_model(2))

    def test_single_trigger_is_fine(self, cooling_sdft):
        assert "SD303" not in codes_of(cooling_sdft)
