"""The analyzer's pre-flight lint gate (``AnalysisOptions(lint=True)``).

An error-level model must be rejected *before* translate/MOCUS/quantify
— asserted through the trace, which must contain the ``lint`` span and
no phase spans at all.
"""

import json

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.sdft import SdFaultTreeBuilder
from repro.errors import LintError, ModelError
from repro.ft.builder import FaultTreeBuilder

PHASES = {"analyze", "translate", "mocus", "quantify"}


def _error_model():
    """Top gate can never fail (SD107): AND over a probability-0 event."""
    b = SdFaultTreeBuilder("vacuous")
    b.static_event("a", 0.0)
    b.static_event("b", 0.01)
    b.and_("top", "a", "b")
    return b.build("top")


class TestFailFast:
    def test_error_model_is_rejected_with_lint_error(self):
        with pytest.raises(LintError) as excinfo:
            analyze(_error_model(), AnalysisOptions(lint=True))
        assert "SD107" in str(excinfo.value)
        assert excinfo.value.report is not None
        assert excinfo.value.report.has_errors

    def test_lint_error_is_a_model_error(self):
        """Callers that catch ModelError keep working."""
        with pytest.raises(ModelError):
            analyze(_error_model(), AnalysisOptions(lint=True))

    def test_rejection_happens_before_any_phase(self, tmp_path):
        trace = tmp_path / "rejected.jsonl"
        with pytest.raises(LintError):
            analyze(
                _error_model(),
                AnalysisOptions(lint=True, trace_path=str(trace)),
            )
        names = {
            json.loads(line).get("name")
            for line in trace.read_text().splitlines()
        }
        assert "lint" in names
        assert not names & PHASES

    def test_lint_off_runs_the_vacuous_model(self):
        """Without the gate the pipeline still works (empty cutset list,
        probability zero) — the gate adds the diagnosis, not new
        behaviour."""
        result = analyze(_error_model(), AnalysisOptions())
        assert result.failure_probability == 0.0
        assert result.lint is None


class TestCleanRun:
    def test_report_rides_on_the_result(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(lint=True))
        assert result.lint is not None
        assert not result.lint.has_errors

    def test_warnings_reach_summary_and_health(self):
        b = FaultTreeBuilder("warned")
        b.event("a", 0.5).event("b", 1e-3)
        b.or_("top", "a", "b")
        from repro.core.sdft import SdFaultTree

        tree = b.build("top")
        sdft = SdFaultTree(
            tree.top, tree.events.values(), [], tree.gates.values(), {},
            name=tree.name,
        )
        result = analyze(sdft, AnalysisOptions(lint=True))
        assert result.lint.warnings
        assert "lint:" in result.summary()
        lint_notes = [e for e in result.health.events if e.stage == "lint"]
        assert any("SD201" in e.message for e in lint_notes)

    def test_traced_clean_run_has_lint_and_phases(self, cooling_sdft, tmp_path):
        trace = tmp_path / "clean.jsonl"
        result = analyze(
            cooling_sdft, AnalysisOptions(lint=True, trace_path=str(trace))
        )
        assert result.failure_probability > 0.0
        names = {
            json.loads(line).get("name")
            for line in trace.read_text().splitlines()
        }
        assert "lint" in names
        assert PHASES <= names
