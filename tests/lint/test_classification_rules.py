"""Positive and negative tests of the classification preview (SD4xx)."""

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from tests.lint.helpers import codes_of, findings_for


def _general_case_model():
    """A trigger gate violating both static branching and static joins:
    an OR with two dynamic children, one of them under an AND."""
    b = SdFaultTreeBuilder("t")
    b.static_event("s1", 1e-3).static_event("s2", 1e-3)
    b.dynamic_event("d1", repairable(0.01, 0.1))
    b.dynamic_event("d2", repairable(0.01, 0.1))
    b.dynamic_event("d3", triggered_repairable(0.01, 0.1))
    b.and_("join", "d1", "s1")
    b.or_("gt", "join", "d2", "s2")
    b.trigger("gt", "d3")
    b.or_("top", "gt", "d3")
    return b.build("top")


class TestGeneralCaseTrigger:  # SD401
    def test_general_trigger_gate_is_flagged(self):
        findings = findings_for(_general_case_model(), "SD401")
        assert [d.node for d in findings] == ["gt"]
        assert "cutset combinations" in findings[0].message

    def test_static_branching_trigger_is_fine(self, cooling_sdft):
        assert "SD401" not in codes_of(cooling_sdft)


class TestNonuniformStaticJoins:  # SD402
    def test_untriggered_dynamics_under_static_joins_are_flagged(self):
        b = SdFaultTreeBuilder("t")
        b.static_event("s1", 1e-3)
        b.dynamic_event("d1", repairable(0.01, 0.1))
        b.dynamic_event("d2", repairable(0.01, 0.1))
        b.dynamic_event("d3", triggered_repairable(0.01, 0.1))
        b.or_("gt", "d1", "d2", "s1")
        b.trigger("gt", "d3")
        b.or_("top", "gt", "d3")
        findings = findings_for(b.build("top"), "SD402")
        assert [d.node for d in findings] == ["gt"]
        assert "not triggered at all" in findings[0].message

    def test_uniformly_triggered_joins_are_fine(self):
        b = SdFaultTreeBuilder("t")
        b.static_event("s1", 1e-3).static_event("s2", 1e-3)
        b.dynamic_event("d1", triggered_repairable(0.01, 0.1))
        b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
        b.dynamic_event("d3", triggered_repairable(0.01, 0.1))
        b.or_("g0", "s1", "s2")
        b.trigger("g0", "d1")
        b.trigger("g0", "d2")
        b.or_("gt", "d1", "d2")
        b.trigger("gt", "d3")
        b.or_("top", "g0", "gt", "d3")
        assert "SD402" not in codes_of(b.build("top"))


class TestVotingOverDynamic:  # SD403
    def test_proper_voting_gate_with_dynamic_input_is_flagged(self):
        b = SdFaultTreeBuilder("t")
        b.static_event("s1", 1e-3).static_event("s2", 1e-3).static_event("s3", 1e-3)
        b.dynamic_event("d1", repairable(0.01, 0.1))
        b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
        b.atleast("vote", 2, "d1", "s1", "s2")
        b.or_("gt", "vote", "s3")
        b.trigger("gt", "d2")
        b.or_("top", "gt", "d2")
        findings = findings_for(b.build("top"), "SD403")
        assert [d.node for d in findings] == ["vote"]

    def test_static_only_voting_gate_is_fine(self):
        b = SdFaultTreeBuilder("t")
        b.static_event("s1", 1e-3).static_event("s2", 1e-3).static_event("s3", 1e-3)
        b.dynamic_event("d1", repairable(0.01, 0.1))
        b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
        b.atleast("vote", 2, "s1", "s2", "s3")
        b.or_("gt", "vote", "d1")
        b.trigger("gt", "d2")
        b.or_("top", "gt", "d2")
        assert "SD403" not in codes_of(b.build("top"))
