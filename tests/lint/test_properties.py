"""Property tests of the linter.

Two invariants:

* ``lint()`` never raises, whatever buildable tree it is handed — the
  never-fail analysis is pure graph reachability and every transient
  solve is guarded;
* a tree the linter has nothing to say about analyzes without a
  :class:`~repro.errors.ModelError` (the gate never rejects a clean
  model).
"""

from hypothesis import given, settings

from repro.core.analyzer import AnalysisOptions, analyze
from repro.errors import ModelError
from repro.lint import LintConfig, Severity, lint
from tests.strategies import fault_trees, sd_fault_trees


class TestLintNeverRaises:
    @given(tree=fault_trees())
    def test_static_trees(self, tree):
        """Extreme probabilities (0 and 1 included) must not crash."""
        report = lint(tree)
        assert all(isinstance(d.code, str) for d in report.diagnostics)

    @given(tree=sd_fault_trees())
    def test_sd_trees(self, tree):
        report = lint(tree)
        report.render_text()
        report.to_json()

    @given(tree=sd_fault_trees())
    def test_with_policy_config(self, tree):
        config = LintConfig(
            horizon=8.0,
            cutoff=1e-9,
            disabled=frozenset({"SD103"}),
            severity_overrides={"SD201": Severity.ERROR},
        )
        lint(tree, config)


class TestCleanTreesAnalyze:
    @settings(max_examples=25)
    @given(tree=sd_fault_trees(max_static=2, max_dynamic=3, max_gates=4))
    def test_diagnostic_free_tree_analyzes(self, tree):
        report = lint(tree)
        if report.diagnostics:
            return  # the property only constrains diagnostic-free trees
        try:
            result = analyze(tree, AnalysisOptions(lint=True, cutoff=1e-12))
        except ModelError as error:  # pragma: no cover - the failure mode
            raise AssertionError(
                f"clean model rejected by analysis: {error}"
            ) from error
        assert result.failure_probability >= 0.0
        assert result.lint is not None
        assert not result.lint.diagnostics
