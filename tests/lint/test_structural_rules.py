"""Positive and negative tests of the structural rules (SD1xx).

Every rule gets a minimal model that trips it and a near-miss that must
stay silent — the contract of a stable diagnostic catalogue.
"""

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.ft.builder import FaultTreeBuilder
from tests.lint.helpers import codes_of, findings_for


class TestUnreachableGate:  # SD101
    def test_disconnected_gate_is_flagged(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("a2", 1e-3)
        b.event("x", 1e-3).event("y", 1e-3)
        b.or_("dead", "x", "y")
        b.or_("top", "a", "a2")
        tree = b.build("top")
        findings = findings_for(tree, "SD101")
        assert [d.node for d in findings] == ["dead"]

    def test_trigger_only_subtree_is_not_flagged(self):
        """The static translation pulls a trigger gate's subtree into the
        cutsets of its triggered events: not dead weight."""
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.static_event("x", 1e-3).static_event("y", 1e-3)
        b.dynamic_event("d", triggered_repairable(0.01, 0.1))
        b.or_("source", "x", "y")
        b.or_("top", "a", "d")
        b.trigger("source", "d")
        tree = b.build("top")
        assert "SD101" not in codes_of(tree)
        assert "SD102" not in codes_of(tree)


class TestUnreachableEvent:  # SD102
    def test_unused_event_is_flagged(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("b", 1e-3).event("orphan", 1e-3)
        b.or_("top", "a", "b")
        findings = findings_for(b.build("top"), "SD102")
        assert [d.node for d in findings] == ["orphan"]
        assert "never used" in findings[0].message

    def test_event_behind_dead_gate_gets_the_other_message(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("b", 1e-3).event("x", 1e-3).event("y", 1e-3)
        b.or_("dead", "x", "y")
        b.or_("top", "a", "b")
        findings = findings_for(b.build("top"), "SD102")
        assert {d.node for d in findings} == {"x", "y"}
        assert all("unreachable gates" in d.message for d in findings)

    def test_fully_wired_tree_is_clean(self, cooling_tree):
        assert "SD102" not in codes_of(cooling_tree)


class TestSingleChildGate:  # SD103
    def test_pass_through_gate_is_flagged(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("b", 1e-3)
        b.or_("wrap", "a")
        b.or_("top", "wrap", "b")
        findings = findings_for(b.build("top"), "SD103")
        assert [d.node for d in findings] == ["wrap"]

    def test_two_children_are_fine(self, cooling_tree):
        assert "SD103" not in codes_of(cooling_tree)


class TestDegenerateAtleast:  # SD104
    def test_k_equals_one_is_an_or(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("b", 1e-3).event("c", 1e-3)
        b.atleast("top", 1, "a", "b", "c")
        findings = findings_for(b.build("top"), "SD104")
        assert [d.node for d in findings] == ["top"]
        assert "OR" in findings[0].message

    def test_k_equals_n_is_an_and(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("b", 1e-3).event("c", 1e-3)
        b.atleast("top", 3, "a", "b", "c")
        findings = findings_for(b.build("top"), "SD104")
        assert "AND" in findings[0].message

    def test_proper_voting_gate_is_fine(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("b", 1e-3).event("c", 1e-3)
        b.atleast("top", 2, "a", "b", "c")
        assert "SD104" not in codes_of(b.build("top"))


class TestVacuousGate:  # SD105
    def test_and_with_impossible_input_is_flagged(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("z", 0.0).event("ok", 1e-3)
        b.and_("vac", "a", "z")
        b.or_("top", "vac", "ok")
        findings = findings_for(b.build("top"), "SD105")
        assert [d.node for d in findings] == ["vac"]

    def test_vacuity_is_reported_at_its_origin_only(self):
        """A parent gate that can never fail *because of* a vacuous
        child gate is noise; only the origin is reported."""
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("z", 0.0).event("ok", 1e-3)
        b.and_("vac", "a", "z")
        b.and_("outer", "vac", "a")
        b.or_("top", "outer", "ok")
        findings = findings_for(b.build("top"), "SD105")
        assert [d.node for d in findings] == ["vac"]

    def test_normal_and_gate_is_fine(self, cooling_tree):
        assert "SD105" not in codes_of(cooling_tree)


class TestConstantGate:  # SD106
    def test_or_with_certain_input_is_flagged(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("one", 1.0).event("b", 1e-3)
        b.or_("const", "a", "one")
        b.and_("top", "const", "b")
        findings = findings_for(b.build("top"), "SD106")
        assert [d.node for d in findings] == ["const"]

    def test_normal_or_gate_is_fine(self, cooling_tree):
        assert "SD106" not in codes_of(cooling_tree)


class TestTopNeverFails:  # SD107
    def test_vacuous_top_is_an_error(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("z", 0.0)
        b.and_("top", "a", "z")
        findings = findings_for(b.build("top"), "SD107")
        assert len(findings) == 1
        assert findings[0].severity.value == "error"

    def test_inert_dynamic_top_is_an_error(self):
        """A top gate exclusively over chains that cannot reach a failed
        state is just as vacuous as a probability-0 one."""
        from repro.ctmc.chain import Ctmc

        stuck = Ctmc(["up", "down"], {"up": 1.0}, {}, ["down"])
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", stuck)
        b.and_("top", "a", "d")
        findings = findings_for(b.build("top"), "SD107")
        assert len(findings) == 1

    def test_failable_top_is_fine(self, cooling_sdft):
        assert "SD107" not in codes_of(cooling_sdft)


class TestTopAlwaysFails:  # SD108
    def test_certain_top_is_an_error(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("one", 1.0)
        b.or_("top", "a", "one")
        findings = findings_for(b.build("top"), "SD108")
        assert len(findings) == 1
        assert findings[0].severity.value == "error"

    def test_near_certain_top_is_not_an_sd108(self):
        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("big", 0.99)
        b.or_("top", "a", "big")
        assert "SD108" not in codes_of(b.build("top"))


class TestDynamicNeverFails:
    def test_repairable_chain_is_not_never_failing(self):
        """Constant propagation must treat a repairable chain (which can
        reach its failed state) as failable."""
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", repairable(0.01, 0.5))
        b.and_("top", "a", "d")
        assert "SD107" not in codes_of(b.build("top"))
