"""Helpers shared by the lint rule tests."""

from __future__ import annotations

from repro.lint import LintConfig, lint


def codes_of(model, **config_kwargs) -> set[str]:
    """The set of diagnostic codes ``lint`` reports for ``model``."""
    return set(lint(model, LintConfig(**config_kwargs)).codes())


def findings_for(model, code: str, **config_kwargs):
    """All diagnostics with ``code`` for ``model`` (possibly empty)."""
    report = lint(model, LintConfig(**config_kwargs))
    return [d for d in report.diagnostics if d.code == code]
