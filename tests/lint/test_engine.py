"""Tests of the lint engine: report shape, config policy, registry,
and the zero-errors guarantee over every bundled model.
"""

import json

import pytest

from repro.lint import (
    Diagnostic,
    LintConfig,
    Severity,
    all_rules,
    get_rule,
    lint,
)


class TestReportShape:
    def test_sorted_most_severe_first(self):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("one", 1.0)
        b.event("x", 1e-3)
        b.or_("wrap", "x")
        b.or_("top", "a", "one", "wrap")
        report = lint(b.build("top"))
        ranks = [d.severity.rank for d in report.diagnostics]
        assert ranks == sorted(ranks, reverse=True)
        assert report.has_errors  # SD108: certain top
        assert report.max_severity is Severity.ERROR

    def test_clean_report(self, cooling_tree):
        report = lint(cooling_tree)
        assert report.diagnostics == ()
        assert report.max_severity is None
        assert report.counts() == {"error": 0, "warning": 0, "info": 0}
        assert "no diagnostics" in report.render_text()

    def test_json_round_trip(self, cooling_sdft):
        report = lint(cooling_sdft)
        payload = json.loads(report.to_json())
        assert payload["model"] == "cooling-sd"
        assert set(payload["counts"]) == {"error", "warning", "info"}
        for entry in payload["diagnostics"]:
            assert set(entry) >= {"code", "severity", "node", "path", "message"}

    def test_plain_fault_tree_is_promoted(self, cooling_tree):
        report = lint(cooling_tree)
        assert report.model == "cooling"

    def test_at_or_above(self):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("t")
        b.event("a", 0.5).event("x", 1e-3)
        b.or_("wrap", "x")
        b.or_("top", "a", "wrap")
        report = lint(b.build("top"))  # SD201 warning + SD103/SD506 infos
        assert {d.code for d in report.at_or_above(Severity.WARNING)} == {"SD201"}
        assert len(report.at_or_above(Severity.INFO)) == 3


class TestConfigPolicy:
    def test_disable_suppresses_a_rule(self):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("x", 1e-3)
        b.or_("wrap", "x")
        b.or_("top", "a", "wrap")
        tree = b.build("top")
        assert "SD103" in lint(tree).codes()
        assert "SD103" not in lint(
            tree, LintConfig(disabled=frozenset({"SD103"}))
        ).codes()

    def test_severity_override_changes_findings(self):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("t")
        b.event("a", 1e-3).event("x", 1e-3)
        b.or_("wrap", "x")
        b.or_("top", "a", "wrap")
        report = lint(
            b.build("top"),
            LintConfig(severity_overrides={"SD103": Severity.ERROR}),
        )
        assert report.has_errors
        assert report.errors[0].code == "SD103"

    def test_invalid_config_is_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(horizon=-1.0)
        with pytest.raises(ValueError):
            LintConfig(cutoff=-1e-9)


class TestRegistry:
    def test_every_code_range_is_populated(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        for prefix in ("SD1", "SD2", "SD3", "SD4"):
            assert any(c.startswith(prefix) for c in codes)

    def test_get_rule(self):
        registered = get_rule("SD101")
        assert registered.name == "unreachable-gate"
        with pytest.raises(KeyError):
            get_rule("SD999")

    def test_duplicate_code_is_rejected(self):
        from repro.lint.registry import rule

        with pytest.raises(ValueError):

            @rule("SD101", "duplicate", Severity.INFO, "duplicate code")
            def duplicate(ctx):
                return []

    def test_every_rule_has_error_free_metadata(self):
        for registered in all_rules():
            assert registered.code.startswith("SD")
            assert registered.name
            assert registered.description
            assert isinstance(registered.default_severity, Severity)


class TestDiagnostic:
    def test_render_includes_hint(self):
        d = Diagnostic(
            "SD999", Severity.WARNING, "n", "message", ("top", "n"), hint="fix it"
        )
        text = d.render()
        assert "top/n" in text and "hint: fix it" in text

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.parse("Error") is Severity.ERROR
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestBundledModelsAreClean:
    """Every bundled example/benchmark model lints with zero errors —
    the acceptance bar of the linter itself.
    """

    def _assert_no_errors(self, model):
        report = lint(model)
        assert not report.has_errors, report.render_text()

    def test_cooling_fixtures(self, cooling_tree, cooling_sdft):
        assert lint(cooling_tree).diagnostics == ()
        assert lint(cooling_sdft).diagnostics == ()

    def test_bwr_variants(self):
        from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

        for config in (
            BwrConfig(),
            BwrConfig(dynamic=False),
            BwrConfig(triggers=TRIGGER_STAGES),
            BwrConfig(triggers=("FEEDBLEED", "RHR")),
        ):
            self._assert_no_errors(build_bwr(config))

    def test_bwr_has_no_structural_findings(self):
        from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

        report = lint(build_bwr(BwrConfig(triggers=TRIGGER_STAGES)))
        assert not any(d.code.startswith("SD1") for d in report.diagnostics)

    def test_sbo(self):
        from repro.models.sbo import build_sbo

        self._assert_no_errors(build_sbo())

    def test_synthetic_presets(self):
        from repro.models.synthetic import model_1, model_2

        for model in (model_1(), model_2()):
            report = lint(model)
            # The shape and probabilistic layers are clean; the semantic
            # layer legitimately sees the presets' shared-support
            # absorptions (SD503) and the verified diet they enable
            # (SD506) — warnings, never errors.
            assert not report.has_errors, report.render_text()
            assert all(
                d.code.startswith("SD5") for d in report.diagnostics
            ), report.render_text()
