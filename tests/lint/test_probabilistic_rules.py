"""Positive and negative tests of the probabilistic rules (SD2xx)."""

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import erlang_failure, repairable
from repro.ctmc.chain import Ctmc
from repro.ft.builder import FaultTreeBuilder
from tests.lint.helpers import codes_of, findings_for


def _two_event_top(p_a: float, p_b: float = 1e-3):
    b = FaultTreeBuilder("t")
    b.event("a", p_a).event("b", p_b)
    b.or_("top", "a", "b")
    return b.build("top")


class TestRareEventDegraded:  # SD201
    def test_large_probability_is_flagged(self):
        findings = findings_for(_two_event_top(0.5), "SD201")
        assert [d.node for d in findings] == ["a"]

    def test_threshold_is_configurable(self):
        assert "SD201" in codes_of(_two_event_top(0.08), rare_event_threshold=0.05)
        assert "SD201" not in codes_of(_two_event_top(0.08))

    def test_small_probability_is_fine(self):
        assert "SD201" not in codes_of(_two_event_top(0.05))

    def test_certain_event_is_sd202_not_sd201(self):
        codes = codes_of(_two_event_top(1.0))
        assert "SD202" in codes
        assert "SD201" not in codes

    def test_dynamic_worst_case_is_flagged(self):
        """A fast-failing chain whose worst case over the horizon
        exceeds the threshold trips the same rule."""
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", erlang_failure(1, 0.1))  # p(24h) ~ 0.91
        b.or_("top", "a", "d")
        findings = findings_for(b.build("top"), "SD201")
        assert [d.node for d in findings] == ["d"]


class TestCertainEvent:  # SD202
    def test_probability_one_is_flagged(self):
        findings = findings_for(_two_event_top(1.0), "SD202")
        assert [d.node for d in findings] == ["a"]

    def test_probability_below_one_is_fine(self):
        assert "SD202" not in codes_of(_two_event_top(0.999))


class TestZeroProbabilityEvent:  # SD203
    def test_probability_zero_is_flagged(self):
        findings = findings_for(_two_event_top(0.0), "SD203")
        assert [d.node for d in findings] == ["a"]

    def test_tiny_probability_is_not_sd203(self):
        assert "SD203" not in codes_of(_two_event_top(1e-12))


class TestCutoffEmptiesMcs:  # SD204
    def test_cutoff_above_every_event_is_an_error(self):
        tree = _two_event_top(1e-6, 1e-6)
        findings = findings_for(tree, "SD204", cutoff=1e-3)
        assert len(findings) == 1
        assert findings[0].severity.value == "error"

    def test_cutoff_below_the_best_event_is_fine(self):
        tree = _two_event_top(1e-6, 1e-6)
        assert "SD204" not in codes_of(tree, cutoff=1e-9)

    def test_zero_cutoff_is_silent(self):
        assert "SD204" not in codes_of(_two_event_top(1e-6), cutoff=0.0)


class TestEventBelowCutoff:  # SD205
    def test_event_below_cutoff_is_flagged(self):
        findings = findings_for(_two_event_top(1e-20), "SD205")
        assert [d.node for d in findings] == ["a"]

    def test_event_above_cutoff_is_fine(self):
        assert "SD205" not in codes_of(_two_event_top(1e-10))


class TestStiffChain:  # SD206
    def test_huge_exit_rate_is_flagged(self):
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", repairable(2e3, 1e3))
        b.or_("top", "a", "d")
        findings = findings_for(b.build("top"), "SD206")
        assert [d.node for d in findings] == ["d"]

    def test_moderate_rates_are_fine(self, cooling_sdft):
        assert "SD206" not in codes_of(cooling_sdft)


class TestInertChain:  # SD207
    def test_chain_without_path_to_failed_is_flagged(self):
        stuck = Ctmc(["up", "down"], {"up": 1.0}, {}, ["down"])
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", stuck)
        b.or_("top", "a", "d")
        findings = findings_for(b.build("top"), "SD207")
        assert [d.node for d in findings] == ["d"]

    def test_failable_chain_is_fine(self, cooling_sdft):
        assert "SD207" not in codes_of(cooling_sdft)


class TestNegligibleRates:  # SD208
    def test_tiny_exposure_is_flagged(self):
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", erlang_failure(1, 1e-12))
        b.or_("top", "a", "d")
        findings = findings_for(b.build("top"), "SD208")
        assert [d.node for d in findings] == ["d"]

    def test_normal_rates_are_fine(self, cooling_sdft):
        assert "SD208" not in codes_of(cooling_sdft)

    def test_inert_chain_is_sd207_not_sd208(self):
        stuck = Ctmc(["up", "down"], {"up": 1.0}, {}, ["down"])
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", stuck)
        b.or_("top", "a", "d")
        codes = codes_of(b.build("top"))
        assert "SD207" in codes
        assert "SD208" not in codes


class TestInitiallyFailedEvent:  # SD209
    def test_initially_failed_chain_is_flagged(self):
        failed_start = Ctmc(
            ["down", "up"], {"down": 1.0}, {("down", "up"): 0.1}, ["down"]
        )
        b = SdFaultTreeBuilder("t")
        b.static_event("a", 1e-3)
        b.dynamic_event("d", failed_start)
        b.and_("top", "a", "d")
        findings = findings_for(b.build("top"), "SD209")
        assert [d.node for d in findings] == ["d"]
        assert "SD201" not in codes_of(b.build("top"))

    def test_normally_started_chain_is_fine(self, cooling_sdft):
        assert "SD209" not in codes_of(cooling_sdft)
