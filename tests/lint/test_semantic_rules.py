"""The semantic rules SD501–SD507."""

from __future__ import annotations

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import triggered_repairable
from repro.ft.builder import FaultTreeBuilder
from repro.lint import Severity, lint
from tests.lint.helpers import codes_of, findings_for


def race_model():
    """The seeded trigger-race defect (see tests/sem/test_triggers.py)."""
    b = SdFaultTreeBuilder("race")
    b.static_event("x", 0.01).static_event("a", 0.02)
    b.dynamic_event(
        "d-spare", triggered_repairable(0.01, 0.1, passive_failure_rate=0.005)
    )
    b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
    b.or_("g1", "x", "a")
    b.or_("g2", "x", "d-spare")
    b.or_("top", "g1", "g2", "d2")
    b.trigger("g1", "d-spare")
    b.trigger("g2", "d2")
    return b.build("top")


def vacuous_model():
    """The seeded vacuous-operand defect: ``OR(a, AND(a, b))``."""
    b = FaultTreeBuilder("vacuous")
    b.event("a", 0.01).event("b", 0.02)
    b.and_("both", "a", "b")
    b.or_("top", "a", "both")
    return b.build("top")


class TestSd501TriggerRace:
    def test_seeded_race_is_flagged(self):
        findings = findings_for(race_model(), "SD501")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.node == "g1"
        assert "g2" in finding.message and "d-spare" in finding.message
        assert finding.severity is Severity.WARNING

    def test_race_free_wiring_is_clean(self):
        b = SdFaultTreeBuilder("clean")
        b.static_event("x", 0.01)
        b.dynamic_event("d", triggered_repairable(0.01, 0.1))
        b.or_("src", "x")
        b.or_("top", "src", "d")
        b.trigger("src", "d")
        assert "SD501" not in codes_of(b.build("top"))


class TestSd502InstantFailure:
    def test_cold_start_chain_is_noted(self):
        findings = findings_for(race_model(), "SD502")
        assert [f.node for f in findings] == ["d-spare"]
        assert findings[0].severity is Severity.INFO

    def test_delay_only_chain_is_clean(self):
        b = SdFaultTreeBuilder("warm")
        b.static_event("x", 0.01)
        b.dynamic_event("d", triggered_repairable(0.01, 0.1))
        b.or_("src", "x")
        b.or_("top", "src", "d")
        b.trigger("src", "d")
        assert "SD502" not in codes_of(b.build("top"))


class TestSd503VacuousOperand:
    def test_seeded_vacuous_operand_is_flagged(self):
        findings = findings_for(vacuous_model(), "SD503")
        assert [(f.node, True) for f in findings] == [("top", True)]
        assert "both" in findings[0].message

    def test_constant_operands_are_left_to_sd203(self):
        # A zero-probability event is vacuous in any OR, but that story
        # belongs to the probabilistic rules — SD503 must stay silent.
        b = FaultTreeBuilder("zero")
        b.event("a", 0.1).event("z", 0.0)
        b.or_("top", "a", "z")
        assert "SD503" not in codes_of(b.build("top"))

    def test_tight_model_is_clean(self):
        b = FaultTreeBuilder("tight")
        b.event("a", 0.01).event("b", 0.02)
        b.and_("top", "a", "b")
        assert "SD503" not in codes_of(b.build("top"))


class TestSd504AbsorbedEvent:
    def test_event_outside_top_support_is_flagged(self):
        findings = findings_for(vacuous_model(), "SD504")
        assert [f.node for f in findings] == ["b"]

    def test_all_events_matter_in_tight_model(self):
        b = FaultTreeBuilder("tight")
        b.event("a", 0.01).event("b", 0.02)
        b.atleast("top", 1, "a", "b")
        assert "SD504" not in codes_of(b.build("top"))


class TestSd505EmergentBoundBreach:
    def test_emergent_breach_is_flagged(self):
        # No single event exceeds the 0.1 threshold, yet the exact OR
        # probability provably does — only interval analysis sees it.
        b = FaultTreeBuilder("emergent")
        b.event("e1", 0.09).event("e2", 0.09).event("e3", 0.09)
        b.or_("top", "e1", "e2", "e3")
        findings = findings_for(b.build("top"), "SD505")
        assert len(findings) == 1
        assert "SD201" not in codes_of(b.build("top"))

    def test_single_event_breach_is_sd201_territory(self):
        b = FaultTreeBuilder("single")
        b.event("big", 0.5).event("a", 0.01)
        b.or_("top", "big", "a")
        codes = codes_of(b.build("top"))
        assert "SD201" in codes and "SD505" not in codes

    def test_rare_model_is_clean(self):
        b = FaultTreeBuilder("rare")
        b.event("a", 1e-4).event("b", 1e-4)
        b.or_("top", "a", "b")
        assert "SD505" not in codes_of(b.build("top"))


class TestSd506Simplifiable:
    def test_diet_opportunity_is_reported(self):
        findings = findings_for(vacuous_model(), "SD506")
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert "simplify" in (findings[0].hint or "")

    def test_tight_model_is_clean(self):
        b = FaultTreeBuilder("tight")
        b.event("a", 0.01).event("b", 0.02)
        b.and_("top", "a", "b")
        assert "SD506" not in codes_of(b.build("top"))


class TestSd507Coherence:
    def test_engine_self_check_never_fires_on_gate_trees(self):
        for model in (race_model(), vacuous_model()):
            assert "SD507" not in codes_of(model)


class TestRegistryIntegration:
    def test_sd5_codes_are_registered(self):
        from repro.lint import all_rules

        codes = {r.code for r in all_rules()}
        assert {f"SD50{i}" for i in range(1, 8)} <= codes

    def test_lint_survives_a_tiny_sem_budget(self):
        # With a node budget too small to compile anything, the BDD-backed
        # rules must skip silently — lint never raises.
        from repro.lint import LintConfig

        report = lint(vacuous_model(), LintConfig(sem_node_budget=1))
        assert "SD503" not in report.codes()
