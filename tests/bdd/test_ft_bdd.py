"""Tests of fault tree -> BDD compilation against brute-force oracles."""

import math

import pytest
from hypothesis import given

from repro.bdd.ft_bdd import compile_tree, exact_mcs, exact_probability
from repro.bdd.ordering import alphabetical_order, dfs_order, probability_order
from repro.ft.scenario import exact_top_probability, minimal_failure_sets

from tests.strategies import fault_trees


class TestExactProbability:
    def test_paper_example(self, cooling_tree):
        assert math.isclose(
            exact_probability(cooling_tree),
            exact_top_probability(cooling_tree),
            rel_tol=1e-9,
        )

    @given(fault_trees(max_events=7, max_gates=6))
    def test_matches_brute_force(self, tree):
        assert math.isclose(
            exact_probability(tree),
            exact_top_probability(tree),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )

    @given(fault_trees(max_events=6, max_gates=5))
    def test_order_independence(self, tree):
        """Different variable orders give different BDDs, same probability."""
        values = []
        for order_fn in (dfs_order, alphabetical_order, probability_order):
            compiled = compile_tree(tree, order_fn(tree))
            values.append(compiled.probability())
        assert max(values) - min(values) < 1e-12


class TestExactMcs:
    def test_paper_example_7(self, cooling_tree):
        cutsets = exact_mcs(cooling_tree)
        assert set(cutsets.cutsets) == {
            frozenset({"e"}),
            frozenset({"a", "c"}),
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        }

    @given(fault_trees(max_events=7, max_gates=6))
    def test_matches_brute_force(self, tree):
        expected = set(minimal_failure_sets(tree))
        assert set(exact_mcs(tree).cutsets) == expected

    def test_mcs_of_inner_gate(self, cooling_tree):
        compiled = compile_tree(cooling_tree)
        inner = compiled.minimal_cutsets_of("pump1")
        assert set(inner.cutsets) == {frozenset({"a"}), frozenset({"b"})}


class TestMinsolBdd:
    """The BDD-level minimal-solutions recursion vs the explicit sets."""

    @given(fault_trees(max_events=7, max_gates=6))
    def test_methods_agree(self, tree):
        compiled = compile_tree(tree)
        explicit = set(compiled.minimal_cutsets(method="sets").cutsets)
        bdd_level = set(compiled.minimal_cutsets(method="bdd").cutsets)
        assert explicit == bdd_level

    @given(fault_trees(max_events=7, max_gates=6))
    def test_bdd_method_matches_brute_force(self, tree):
        compiled = compile_tree(tree)
        expected = set(minimal_failure_sets(tree))
        assert set(compiled.minimal_cutsets(method="bdd").cutsets) == expected

    def test_minsol_idempotent(self, cooling_tree):
        compiled = compile_tree(cooling_tree)
        manager = compiled.manager
        once = manager.minsol(compiled.root)
        twice = manager.minsol(once)
        assert once == twice

    def test_unknown_method_rejected(self, cooling_tree):
        compiled = compile_tree(cooling_tree)
        with pytest.raises(ValueError):
            compiled.minimal_cutsets(method="magic")


class TestCompiledTree:
    def test_gate_roots_shared_manager(self, cooling_tree):
        compiled = compile_tree(cooling_tree)
        assert set(compiled.gate_roots) == set(cooling_tree.gates)
        assert compiled.root == compiled.gate_roots["cooling"]
        assert compiled.node_count > 2

    def test_invalid_order_rejected(self, cooling_tree):
        with pytest.raises(ValueError):
            compile_tree(cooling_tree, ["a", "b"])  # not a permutation
