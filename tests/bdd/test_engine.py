"""Tests of the ROBDD engine itself."""

import itertools
import math

from hypothesis import given
from hypothesis import strategies as st

from repro.bdd.engine import FALSE, TRUE, BddManager


class TestReduction:
    def test_identical_branches_collapse(self):
        m = BddManager()
        assert m.mk(0, TRUE, TRUE) == TRUE
        assert m.mk(0, FALSE, FALSE) == FALSE

    def test_hash_consing(self):
        m = BddManager()
        a = m.mk(0, FALSE, TRUE)
        b = m.mk(0, FALSE, TRUE)
        assert a == b
        assert m.var(0) == a

    def test_terminal_constants(self):
        m = BddManager()
        assert m.evaluate(TRUE, lambda v: False) is True
        assert m.evaluate(FALSE, lambda v: True) is False


class TestBooleanOperations:
    def test_and_or_truth_tables(self):
        m = BddManager()
        x, y = m.var(0), m.var(1)
        conj = m.apply_and(x, y)
        disj = m.apply_or(x, y)
        for vx, vy in itertools.product([False, True], repeat=2):
            env = {0: vx, 1: vy}
            assert m.evaluate(conj, env.__getitem__) == (vx and vy)
            assert m.evaluate(disj, env.__getitem__) == (vx or vy)

    def test_identities(self):
        m = BddManager()
        x = m.var(0)
        assert m.apply_and(x, TRUE) == x
        assert m.apply_and(x, FALSE) == FALSE
        assert m.apply_or(x, FALSE) == x
        assert m.apply_or(x, TRUE) == TRUE
        assert m.apply_and(x, x) == x

    def test_negate_involution(self):
        m = BddManager()
        x, y = m.var(0), m.var(1)
        f = m.apply_or(m.apply_and(x, y), m.negate(x))
        assert m.negate(m.negate(f)) == f
        assert m.apply_and(f, m.negate(f)) == FALSE

    def test_conjoin_disjoin_empty(self):
        m = BddManager()
        assert m.conjoin([]) == TRUE
        assert m.disjoin([]) == FALSE

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_atleast_semantics(self, n, k):
        if k > n:
            k = n
        m = BddManager()
        nodes = [m.var(i) for i in range(n)]
        threshold = m.atleast(k, nodes)
        for assignment in itertools.product([False, True], repeat=n):
            env = dict(enumerate(assignment))
            expected = sum(assignment) >= k
            assert m.evaluate(threshold, env.__getitem__) == expected


class TestEvaluation:
    def test_probability_independent_or(self):
        m = BddManager()
        f = m.disjoin([m.var(0), m.var(1)])
        p = m.probability(f, {0: 0.1, 1: 0.2})
        assert math.isclose(p, 1 - 0.9 * 0.8)

    def test_probability_matches_enumeration(self):
        m = BddManager()
        x, y, z = m.var(0), m.var(1), m.var(2)
        f = m.apply_or(m.apply_and(x, y), z)
        probs = {0: 0.3, 1: 0.5, 2: 0.1}
        expected = 0.0
        for bits in itertools.product([False, True], repeat=3):
            if (bits[0] and bits[1]) or bits[2]:
                weight = 1.0
                for i, bit in enumerate(bits):
                    weight *= probs[i] if bit else 1 - probs[i]
                expected += weight
        assert math.isclose(m.probability(f, probs), expected, rel_tol=1e-12)

    def test_support_and_node_count(self):
        m = BddManager()
        f = m.apply_and(m.var(0), m.var(2))
        assert m.support(f) == {0, 2}
        assert m.count_nodes(f) == 4  # two decision nodes + two terminals

    def test_satisfying_paths(self):
        m = BddManager()
        f = m.apply_and(m.var(0), m.var(1))
        paths = list(m.satisfying_paths(f))
        assert paths == [{0: True, 1: True}]
