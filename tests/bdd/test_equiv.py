"""The shared-manager equivalence and monotonicity helpers."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, is_monotone, non_monotone_variables, trees_equivalent
from repro.errors import BddBudgetExceeded
from repro.ft.builder import FaultTreeBuilder


def _tree(spec: str):
    """``spec`` picks one of a few small hand-built trees."""
    b = FaultTreeBuilder(spec)
    b.event("a", 0.1).event("b", 0.2).event("c", 0.3)
    if spec == "dnf":
        b.and_("ab", "a", "b")
        b.and_("ac", "a", "c")
        b.or_("top", "ab", "ac")
    elif spec == "factored":
        b.or_("bc", "b", "c")
        b.and_("top", "a", "bc")
    elif spec == "other":
        b.or_("top", "a", "b", "c")
    return b.build("top")


class TestTreesEquivalent:
    def test_distributivity_is_proven(self):
        # a(b + c) == ab + ac, despite entirely different gate structure.
        assert trees_equivalent(_tree("dnf"), _tree("factored"))

    def test_different_functions_are_rejected(self):
        assert not trees_equivalent(_tree("dnf"), _tree("other"))

    def test_interior_scopes_must_also_agree(self):
        b1 = FaultTreeBuilder("s1")
        b1.event("a", 0.1).event("b", 0.2)
        b1.or_("scope", "a", "b")
        b1.or_("top", "scope")
        b2 = FaultTreeBuilder("s2")
        b2.event("a", 0.1).event("b", 0.2)
        b2.or_("scope", "a")  # narrower interior function, same top? no —
        b2.or_("top", "scope", "b")  # top agrees, the scope does not
        t1, t2 = b1.build("top"), b2.build("top")
        assert trees_equivalent(t1, t2)
        assert not trees_equivalent(t1, t2, scopes=("scope",))

    def test_missing_scope_is_not_equivalent(self):
        assert not trees_equivalent(
            _tree("dnf"), _tree("factored"), scopes=("ab",)
        )

    def test_constants_are_substituted(self):
        b = FaultTreeBuilder("c1")
        b.event("a", 0.1).event("sure", 1.0)
        b.and_("top", "a", "sure")
        with_const = b.build("top")
        b2 = FaultTreeBuilder("c2")
        b2.event("a", 0.1).event("sure", 1.0)
        b2.or_("top", "a", "wrap")
        b2.or_("wrap", "a")
        plain_a = b2.build("top")
        assert trees_equivalent(with_const, plain_a, constants={"sure": True})

    def test_budget_overrun_raises(self):
        b = FaultTreeBuilder("wide")
        for i in range(14):
            b.event(f"e{i}", 0.01)
        b.atleast("top", 7, *[f"e{i}" for i in range(14)])
        tree = b.build("top")
        with pytest.raises(BddBudgetExceeded):
            trees_equivalent(tree, tree, node_budget=3)


class TestMonotonicity:
    def test_coherent_function_has_no_witnesses(self):
        manager = BddManager()
        x, y = manager.var(0), manager.var(1)
        node = manager.apply_or(manager.apply_and(x, y), x)
        assert is_monotone(manager, node)
        assert non_monotone_variables(manager, node) == frozenset()

    def test_negation_shape_is_caught(self):
        # f = x XOR y is non-monotone in both variables.
        manager = BddManager()
        x, y = manager.var(0), manager.var(1)
        left = manager.apply_and(x, manager.negate(y))
        right = manager.apply_and(manager.negate(x), y)
        node = manager.apply_or(left, right)
        assert not is_monotone(manager, node)
        assert non_monotone_variables(manager, node) == frozenset({0, 1})
