"""Tests of the production BDD quantifier: orderings, modules, exactness."""

from __future__ import annotations

import math

import pytest

from repro.bdd.ft_bdd import compile_tree, exact_probability
from repro.bdd.ordering import (
    AUTO_CANDIDATES,
    ORDERINGS,
    depth_order,
    dfs_order,
    weight_order,
)
from repro.bdd.quantify import quantify_static_tree
from repro.errors import BddBudgetExceeded
from repro.ft.builder import FaultTreeBuilder
from repro.ft.cutsets import CutSetList
from repro.ft.mocus import MocusOptions, mocus
from repro.models.synthetic import model_1, model_2


def _voting_tree():
    """A 2-of-4 vote over moderately likely events (10 minimal cutsets)."""
    b = FaultTreeBuilder("voting")
    for i in range(4):
        b.event(f"v{i}", 0.1 + 0.05 * i)
    b.atleast("top", 2, "v0", "v1", "v2", "v3")
    return b.build("top")


def _cooling_tree():
    b = FaultTreeBuilder("cooling")
    b.event("a", 3e-3).event("b", 1e-3)
    b.event("c", 3e-3).event("d", 1e-3)
    b.event("e", 3e-6)
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    return b.or_("cooling", "pumps", "e").build("cooling")


class TestOrderings:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_every_ordering_is_a_permutation(self, name):
        tree = _cooling_tree()
        order = ORDERINGS[name](tree)
        assert sorted(order) == sorted(tree.events)

    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_probability_is_order_invariant(self, name):
        """Any variable order gives the same (exact) probability."""
        tree = _cooling_tree()
        reference = exact_probability(tree)
        compiled = compile_tree(tree, ORDERINGS[name](tree))
        assert math.isclose(compiled.probability(), reference, rel_tol=1e-12)

    def test_auto_candidates_are_registered(self):
        assert set(AUTO_CANDIDATES) <= set(ORDERINGS)
        assert "dfs" in AUTO_CANDIDATES

    def test_weight_order_puts_heavy_variables_first(self):
        # 'e' sits directly under the top OR (weight 1/3); the pump
        # events sit two gates down behind an AND split.
        tree = _cooling_tree()
        assert weight_order(tree)[0] == "e"

    def test_depth_order_puts_shallow_variables_first(self):
        tree = _cooling_tree()
        assert depth_order(tree)[0] == "e"

    def test_orders_are_deterministic(self):
        tree = _cooling_tree()
        for heuristic in (dfs_order, weight_order, depth_order):
            assert heuristic(tree) == heuristic(tree)


class TestQuantifyStaticTree:
    @pytest.mark.parametrize("factory", [model_1, model_2])
    def test_modular_matches_monolithic(self, factory):
        tree = factory(0.01)
        modular = quantify_static_tree(tree)
        monolithic = quantify_static_tree(tree, use_modules=False)
        assert math.isclose(
            modular.probability, monolithic.probability, rel_tol=1e-12
        )
        assert modular.n_modules > 0
        assert monolithic.n_modules == 0

    def test_matches_plain_exact_probability(self):
        tree = _cooling_tree()
        q = quantify_static_tree(tree)
        assert math.isclose(q.probability, exact_probability(tree), rel_tol=1e-12)
        assert q.node_count > 0
        assert q.ordering in ORDERINGS

    def test_budget_propagates_when_all_orderings_trip(self):
        tree = _cooling_tree()
        with pytest.raises(BddBudgetExceeded):
            quantify_static_tree(tree, node_budget=3, use_modules=False)

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError, match="unknown BDD ordering"):
            quantify_static_tree(_cooling_tree(), ordering="sorcery")

    def test_named_ordering_is_honoured(self):
        q = quantify_static_tree(_cooling_tree(), ordering="weight")
        assert q.ordering == "weight"


class TestExactnessAgainstInclusionExclusion:
    """The BDD probability equals inclusion–exclusion over the MCS family.

    Both are exact on small models (≤ 24 events, so the full expansion
    is feasible); agreement pins the Shannon-expansion evaluation
    against an algebraically independent derivation.
    """

    @pytest.mark.parametrize(
        "tree",
        [_cooling_tree(), _voting_tree()],
        ids=["cooling", "voting"],
    )
    def test_bdd_matches_inclusion_exclusion(self, tree):
        assert len(tree.events) <= 24
        full = mocus(tree, MocusOptions(cutoff=0.0)).cutsets
        assert len(full) <= 20  # the full expansion must stay feasible
        probabilities = {n: e.probability for n, e in tree.events.items()}
        family = CutSetList.from_cutsets(list(full), probabilities, minimal=True)
        expected = family.inclusion_exclusion()
        assert math.isclose(
            exact_probability(tree), expected, rel_tol=1e-9, abs_tol=1e-300
        )

    def test_bracket_holds(self):
        """rare-event sum >= exact >= largest single cutset."""
        for tree in (_cooling_tree(), model_1(0.05)):
            full = mocus(tree, MocusOptions(cutoff=0.0)).cutsets
            exact = exact_probability(tree)
            assert full.rare_event() >= exact - 1e-12
            assert full.largest_cutset_probability() <= exact + 1e-12
