"""Scaling and edge-case regression tests of the production BDD engine.

The iterative engine rewrite exists so that deep chain-shaped trees —
the classical recursion killer — compile, negate and quantify at the
default Python recursion limit.  These tests pin that property at 5,000
events, plus the ``atleast`` boundary semantics and duplicate-operand
behaviour the old per-call-memo implementation left untested.
"""

from __future__ import annotations

import math
import sys

import pytest

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.ft_bdd import compile_tree
from repro.errors import BddBudgetExceeded
from repro.ft.builder import FaultTreeBuilder

CHAIN_EVENTS = 5_000


def _chain_tree(n: int, probability: float = 1e-4):
    """A pathological depth-``n`` chain: ``g_i = OR(e_i, g_{i+1})``."""
    b = FaultTreeBuilder(f"chain-{n}")
    for i in range(n):
        b.event(f"e{i}", probability)
    b.or_(f"g{n - 1}", f"e{n - 1}")
    for i in range(n - 2, -1, -1):
        b.or_(f"g{i}", f"e{i}", f"g{i + 1}")
    return b.build("g0")


class TestDeepChains:
    def test_5000_event_chain_compiles_and_evaluates(self):
        """The regression of the tentpole: no RecursionError at depth 5000.

        The old recursive ``_apply``/``negate``/``probability`` walks
        died on this shape well below 5,000 events.
        """
        assert sys.getrecursionlimit() <= 10_000  # the test must be honest
        tree = _chain_tree(CHAIN_EVENTS)
        compiled = compile_tree(tree)
        p = compiled.probability()
        exact = 1.0 - (1.0 - 1e-4) ** CHAIN_EVENTS
        assert math.isclose(p, exact, rel_tol=1e-9)

    def test_deep_chain_negation_and_minsol(self):
        m = BddManager()
        # A single conjunction chain of depth 5000 built variable by
        # variable exercises negate/minsol on maximally deep BDDs.
        f = TRUE
        for i in range(CHAIN_EVENTS - 1, -1, -1):
            f = m.apply_and(m.var(i), f)
        g = m.negate(m.negate(f))
        assert g == f
        minimal = m.minsol(f)
        assert m.count_paths(minimal) == 1

    def test_deep_chain_apply_mixes(self):
        m = BddManager()
        f = FALSE
        for i in range(CHAIN_EVENTS):
            f = m.apply_or(m.var(i), f)
        p = m.probability(f, {i: 1e-4 for i in range(CHAIN_EVENTS)})
        assert math.isclose(p, 1.0 - (1.0 - 1e-4) ** CHAIN_EVENTS, rel_tol=1e-9)


class TestAtleastBoundaries:
    def test_k_zero_is_tautology(self):
        m = BddManager()
        nodes = [m.var(i) for i in range(4)]
        assert m.atleast(0, nodes) == TRUE
        assert m.atleast(-3, nodes) == TRUE
        assert m.atleast(0, []) == TRUE

    def test_k_equal_len_is_conjunction(self):
        m = BddManager()
        nodes = [m.var(i) for i in range(4)]
        assert m.atleast(4, nodes) == m.conjoin(nodes)

    def test_k_above_len_is_contradiction(self):
        m = BddManager()
        nodes = [m.var(i) for i in range(4)]
        assert m.atleast(5, nodes) == FALSE
        assert m.atleast(1, []) == FALSE

    def test_k_one_is_disjunction(self):
        m = BddManager()
        nodes = [m.var(i) for i in range(4)]
        assert m.atleast(1, nodes) == m.disjoin(nodes)


class TestDuplicateOperands:
    def test_duplicate_children_under_and(self):
        m = BddManager()
        x, y = m.var(0), m.var(1)
        assert m.conjoin([x, x, y, y, x]) == m.apply_and(x, y)

    def test_duplicate_children_under_or(self):
        m = BddManager()
        x, y = m.var(0), m.var(1)
        assert m.disjoin([x, x, y, x]) == m.apply_or(x, y)

    def test_shared_subtree_reaching_a_gate_twice(self):
        # A diamond: the shared gate feeds both AND inputs, so the
        # conjunction collapses to the shared function itself.
        b = FaultTreeBuilder("dup")
        b.event("a", 0.2).event("b", 0.3)
        b.or_("shared", "a", "b")
        b.or_("left", "shared")
        b.or_("right", "shared")
        b.and_("top", "left", "right")
        tree = b.build("top")
        compiled = compile_tree(tree)
        assert math.isclose(
            compiled.probability(), 1 - 0.8 * 0.7, rel_tol=1e-12
        )


class TestNodeBudget:
    def test_budget_trips_cleanly(self):
        m = BddManager(node_budget=4)
        with pytest.raises(BddBudgetExceeded):
            # Parity-like structure forces fresh nodes past any budget.
            f = m.var(0)
            for i in range(1, 64):
                f = m.apply_and(m.negate(f), m.var(i))

    def test_existing_nodes_never_trip(self):
        m = BddManager()
        x, y = m.var(0), m.var(1)
        f = m.apply_and(x, y)
        m.node_budget = len(m)
        # Re-deriving only existing nodes stays within the table.
        assert m.apply_and(x, y) == f

    def test_compile_tree_respects_budget(self):
        tree = _chain_tree(64)
        with pytest.raises(BddBudgetExceeded):
            compile_tree(tree, node_budget=3)
