"""Farm hardening: worker death, quarantine, watchdog timeouts, events."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.perf.pool import FarmEvent, SolverFarm
from repro.robust import faults
from tests.perf.test_pool import make_task


def _kill_once(latch_path):
    """SIGKILL the calling worker the first time any task reaches it.

    The latch file provides cross-process once-semantics: every forked
    worker inherits its own copy of the armed fault, so an in-memory
    flag could not stop the second worker from also dying.
    """

    def predicate(**_context):
        try:
            open(latch_path, "x").close()
        except FileExistsError:
            return False
        os.kill(os.getpid(), signal.SIGKILL)
        return False  # unreachable

    return predicate


def _hang_in_worker(parent_pid, latch_path, seconds=5.0):
    """Stall one worker past the watchdog deadline; never the parent."""

    def predicate(**_context):
        if os.getpid() == parent_pid:
            return False
        try:
            open(latch_path, "x").close()
        except FileExistsError:
            return False
        time.sleep(seconds)
        return False

    return predicate


@pytest.fixture
def three_tasks(cooling_sdft):
    cutsets = [
        frozenset({"a", "d"}),
        frozenset({"b", "c"}),
        frozenset({"b", "d"}),
    ]
    models, tasks = [], []
    for i, cutset in enumerate(cutsets):
        model, task = make_task(cooling_sdft, cutset, task_id=i)
        models.append(model)
        tasks.append(task)
    return models, tasks


class TestWorkerDeath:
    def test_sigkilled_worker_is_survived(self, three_tasks, tmp_path):
        """Regression: a worker dying mid-task used to break the whole
        run with BrokenProcessPool; the farm must rebuild and finish."""
        models, tasks = three_tasks
        farm = SolverFarm(jobs=2, backoff_seconds=0.0)
        with faults.inject(
            "worker_kill", when=_kill_once(str(tmp_path / "kill.latch"))
        ):
            results = {r.task_id: r for r in farm.run(tasks)}
        assert sorted(results) == [0, 1, 2]
        assert all(r.ok for r in results.values())
        assert farm.rebuilds >= 1
        kinds = {event.kind for event in farm.events}
        assert "rebuild" in kinds
        # A one-shot kill is usually too fast to attribute: the farm
        # either retries an observed victim or probes the suspects.
        assert kinds & {"retry", "probe"}

    def test_repeat_killer_is_quarantined(self, three_tasks, tmp_path):
        """A task that kills its worker every time is isolated after
        ``max_task_crashes`` strikes instead of looping forever."""
        models, tasks = three_tasks
        target = frozenset({"b", "d"})

        def kill_for_target(cutset=None, **_):
            if cutset == target:
                os.kill(os.getpid(), signal.SIGKILL)
            return False

        farm = SolverFarm(jobs=2, backoff_seconds=0.0)
        with faults.inject("worker_kill", when=kill_for_target):
            results = {r.task_id: r for r in farm.run(tasks)}
        assert sorted(results) == [0, 1, 2]
        doomed = results[2]
        assert not doomed.ok
        assert doomed.error_kind == "quarantined"
        assert results[0].ok and results[1].ok
        assert any(e.kind == "quarantine" for e in farm.events)
        assert farm.quarantined == 1

    def test_charged_events_carry_the_cutset(self, three_tasks):
        """retry/quarantine events name the task so health can cite it."""
        _, tasks = three_tasks
        target = frozenset({"b", "d"})

        def kill_for_target(cutset=None, **_):
            if cutset == target:
                os.kill(os.getpid(), signal.SIGKILL)
            return False

        farm = SolverFarm(jobs=2, backoff_seconds=0.0)
        with faults.inject("worker_kill", when=kill_for_target):
            list(farm.run(tasks))
        charged = [
            e for e in farm.events if e.kind in ("retry", "quarantine")
        ]
        assert charged
        assert all(e.cutset == ("b", "d") for e in charged)


class TestWatchdog:
    def test_hung_task_times_out(self, three_tasks, tmp_path):
        """A stalled worker is reaped by the wall deadline: its task comes
        back as a timeout result, everyone else still finishes."""
        _, tasks = three_tasks
        farm = SolverFarm(jobs=2, task_timeout=0.5, backoff_seconds=0.0)
        with faults.inject(
            "transient_solve",
            when=_hang_in_worker(os.getpid(), str(tmp_path / "hang.latch")),
        ):
            results = {r.task_id: r for r in farm.run(tasks)}
        assert sorted(results) == [0, 1, 2]
        timed_out = [r for r in results.values() if r.error_kind == "timeout"]
        assert len(timed_out) == 1
        assert farm.timeouts == 1
        finished = [r for r in results.values() if r.ok]
        assert len(finished) == 2

    def test_no_timeout_without_deadline(self, three_tasks):
        _, tasks = three_tasks
        farm = SolverFarm(jobs=2)
        results = list(farm.run(tasks))
        assert all(r.ok for r in results)
        assert farm.timeouts == 0
        assert farm.events == []


class TestAnalyzerIntegration:
    def test_analysis_survives_a_killed_worker(self, cooling_sdft, tmp_path):
        """End to end: jobs=2 with a one-shot worker kill still produces
        the serial answer, and the health report records the recovery."""
        baseline = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        with faults.inject(
            "worker_kill", when=_kill_once(str(tmp_path / "kill.latch"))
        ):
            survived = analyze(
                cooling_sdft, AnalysisOptions(horizon=24.0, jobs=2)
            )
        assert survived.failure_probability == baseline.failure_probability
        assert any(e.stage == "pool" for e in survived.health.events)

    def test_analysis_survives_a_hung_task(self, cooling_sdft, tmp_path):
        """The watchdog reaps the hang; the parent re-solves the victim
        in-process, so the final answer is still the serial one."""
        baseline = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        with faults.inject(
            "transient_solve",
            when=_hang_in_worker(os.getpid(), str(tmp_path / "hang.latch")),
        ):
            survived = analyze(
                cooling_sdft,
                AnalysisOptions(
                    horizon=24.0, jobs=2, pool_task_timeout_seconds=0.5
                ),
            )
        assert survived.failure_probability == baseline.failure_probability
        assert any(
            "timeout" in e.message or "deadline" in e.message
            for e in survived.health.events
        )


class TestFarmEvent:
    def test_is_plain_frozen_data(self):
        event = FarmEvent(kind="rebuild", message="pool rebuilt")
        assert event.task_id is None and event.cutset is None
        with pytest.raises(AttributeError):
            event.kind = "other"
