"""Content-based chain/model fingerprints and the cache-key soundness fix."""

import pickle

import pytest

from repro.core.quantify import QuantificationCache, quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.ctmc.chain import Ctmc
from repro.perf.fingerprint import model_signature


def build_cooling_sdft():
    """The Example-3 cooling system with freshly built chain objects."""
    b = SdFaultTreeBuilder("cooling-sd")
    b.static_event("a", 3e-3).static_event("c", 3e-3).static_event("e", 3e-6)
    b.dynamic_event("b", repairable(0.001, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")
    return b.build("cooling")


class TestChainFingerprint:
    def test_identical_chains_built_separately_match(self):
        assert repairable(0.001, 0.05).fingerprint() == repairable(
            0.001, 0.05
        ).fingerprint()

    def test_rate_changes_the_fingerprint(self):
        assert (
            repairable(0.001, 0.05).fingerprint()
            != repairable(0.002, 0.05).fingerprint()
        )

    def test_failed_set_changes_the_fingerprint(self):
        base = Ctmc(["ok", "fail"], {"ok": 1.0}, {("ok", "fail"): 0.1}, ["fail"])
        no_failed = Ctmc(["ok", "fail"], {"ok": 1.0}, {("ok", "fail"): 0.1}, [])
        assert base.fingerprint() != no_failed.fingerprint()

    def test_state_order_is_canonicalised(self):
        forward = Ctmc(
            ["ok", "fail"], {"ok": 1.0}, {("ok", "fail"): 0.1}, ["fail"]
        )
        backward = Ctmc(
            ["fail", "ok"], {"ok": 1.0}, {("ok", "fail"): 0.1}, ["fail"]
        )
        assert forward.fingerprint() == backward.fingerprint()

    def test_triggered_differs_from_plain(self):
        """On/off structure is analysis-relevant and must enter the key."""
        triggered = triggered_repairable(0.001, 0.05)
        plain = Ctmc(
            triggered.states, triggered.initial, triggered.rates, triggered.failed
        )
        assert triggered.fingerprint() != plain.fingerprint()

    def test_untriggered_view_differs_from_triggered_chain(self):
        chain = triggered_repairable(0.001, 0.05)
        assert chain.fingerprint() != chain.untriggered_view().fingerprint()

    def test_survives_pickling(self):
        chain = triggered_repairable(0.001, 0.05)
        original = chain.fingerprint()
        assert pickle.loads(pickle.dumps(chain)).fingerprint() == original

    def test_cached_on_the_instance(self):
        chain = repairable(0.001, 0.05)
        assert chain.fingerprint() is chain.fingerprint()


class TestCacheKeySoundness:
    def test_equal_but_distinct_chains_hit_the_cache(self):
        """Regression for the historical ``id(chain)`` cache keys.

        Two structurally identical models built separately share no
        chain objects; the content-based signature must make the second
        quantification a cache hit anyway.
        """
        first_model = build_cooling_sdft()
        second_model = build_cooling_sdft()
        assert (
            first_model.chain_of("d") is not second_model.chain_of("d")
        ), "fixture must not share chain objects"
        cache = QuantificationCache()
        first = quantify_cutset(
            first_model, frozenset({"b", "d"}), 24.0, cache=cache
        )
        second = quantify_cutset(
            second_model, frozenset({"b", "d"}), 24.0, cache=cache
        )
        assert not first.cache_hit
        assert second.cache_hit
        assert cache.hits == 1 and cache.misses == 1
        assert second.probability == first.probability

    def test_signature_distinguishes_horizons(self, cooling_sdft):
        from repro.core.cutset_model import build_cutset_model

        model = build_cutset_model(cooling_sdft, frozenset({"b", "d"}))
        assert model_signature(model.model, 24.0) != model_signature(
            model.model, 48.0
        )

    def test_signature_is_picklable_and_stable_across_processes(self, cooling_sdft):
        """Signatures must hold across a process boundary (dedup farm)."""
        from repro.core.cutset_model import build_cutset_model

        model = build_cutset_model(cooling_sdft, frozenset({"b", "d"}))
        key = model_signature(model.model, 24.0)
        revived = pickle.loads(pickle.dumps(model.model))
        assert model_signature(revived, 24.0) == key
