"""Batched dispatch: the batch planner, the warm pool, the model table.

The economics under test: many solves per IPC round-trip, one pool fork
per process (not per analysis), zero model pickling on the fork path —
all without changing a single result bit relative to per-task dispatch.
"""

from dataclasses import dataclass

import pytest

from repro.core.cutset_model import build_cutset_model
from repro.perf import pool as pool_module
from repro.perf.pool import (
    SolveBatch,
    SolveTask,
    SolverFarm,
    fork_available,
    shutdown_warm_farm,
    solve_batch,
    solve_task,
    warm_farm,
)
from repro.perf.schedule import estimate_chain_states, plan_batches


@dataclass(frozen=True)
class Weighted:
    """A minimal schedulable stand-in for a solve task."""

    name: str
    estimated_states: int


def make_tasks(sdft, n_min=6):
    """Distinct dynamic solve tasks (cutsets x horizons), ids 0..n-1."""
    cutsets = [
        frozenset({"b", "d"}),
        frozenset({"a", "d"}),
        frozenset({"b", "c"}),
    ]
    tasks = []
    for horizon in (12.0, 24.0):
        for cutset in cutsets:
            model = build_cutset_model(sdft, cutset)
            assert model.model is not None
            tasks.append(
                SolveTask(
                    task_id=len(tasks),
                    model=model.model,
                    horizon=horizon,
                    epsilon=1e-12,
                    max_chain_states=200_000,
                    lump_chains=False,
                    cutset=tuple(sorted(cutset)),
                    estimated_states=estimate_chain_states(model.model),
                )
            )
    assert len(tasks) >= n_min
    return tasks


class TestPlanBatches:
    def test_partitions_every_task_exactly_once(self):
        tasks = [Weighted(f"t{i}", 10 * (i + 1)) for i in range(11)]
        batches = plan_batches(tasks, 4)
        flat = [task for batch in batches for task in batch]
        assert sorted(t.name for t in flat) == sorted(t.name for t in tasks)
        assert len(batches) == 4

    def test_never_more_batches_than_tasks(self):
        tasks = [Weighted("a", 1), Weighted("b", 1)]
        assert len(plan_batches(tasks, 8)) == 2
        assert plan_batches([], 4) == []

    def test_deterministic(self):
        tasks = [Weighted(f"t{i}", (i * 37) % 11 + 1) for i in range(20)]
        first = plan_batches(tasks, 5)
        second = plan_batches(list(tasks), 5)
        assert first == second

    def test_balances_load(self):
        # 4 heavy + 8 light over 4 batches: LPT must put one heavy task
        # in each batch, never two.
        tasks = [Weighted(f"h{i}", 1000) for i in range(4)]
        tasks += [Weighted(f"l{i}", 1) for i in range(8)]
        batches = plan_batches(tasks, 4)
        for batch in batches:
            assert sum(1 for t in batch if t.estimated_states == 1000) == 1

    def test_batch_internal_order_is_largest_first(self):
        tasks = [Weighted(f"t{i}", i + 1) for i in range(9)]
        for batch in plan_batches(tasks, 3):
            sizes = [t.estimated_states for t in batch]
            assert sizes == sorted(sizes, reverse=True)


class TestSolveBatch:
    def test_matches_per_task_results(self, cooling_sdft):
        tasks = make_tasks(cooling_sdft)
        expected = [solve_task(task) for task in tasks]
        got = solve_batch(SolveBatch(tuple(tasks)))
        assert [r.task_id for r in got] == [r.task_id for r in expected]
        assert [r.probability for r in got] == [
            r.probability for r in expected
        ]
        assert [r.chain_states for r in got] == [
            r.chain_states for r in expected
        ]


class TestRunBatched:
    def test_bit_identical_to_per_task_dispatch(self, cooling_sdft):
        tasks = make_tasks(cooling_sdft)
        farm = SolverFarm(jobs=2)
        try:
            batched = {r.task_id: r for r in farm.run_batched(tasks)}
            assert farm.batch_sizes, "the batched path must have been taken"
            assert sum(farm.batch_sizes) == len(tasks)
            per_task = {r.task_id: r for r in farm.run(tasks)}
        finally:
            farm.close()
        assert set(batched) == set(per_task) == set(range(len(tasks)))
        for task_id in per_task:
            assert batched[task_id].probability == (
                per_task[task_id].probability
            )
            assert batched[task_id].chain_states == (
                per_task[task_id].chain_states
            )
            assert batched[task_id].ok

    def test_small_lists_fall_back_to_per_task_dispatch(self, cooling_sdft):
        tasks = make_tasks(cooling_sdft)[:2]
        farm = SolverFarm(jobs=2)
        try:
            results = list(farm.run_batched(tasks))
        finally:
            farm.close()
        assert len(results) == len(tasks)
        assert farm.batch_sizes == []

    def test_task_timeout_falls_back_to_per_task_dispatch(self, cooling_sdft):
        tasks = make_tasks(cooling_sdft)
        farm = SolverFarm(jobs=2, task_timeout=30.0)
        try:
            results = list(farm.run_batched(tasks))
        finally:
            farm.close()
        assert len(results) == len(tasks)
        assert farm.batch_sizes == []  # a batch cannot be timed out mid-flight

    def test_run_state_resets_between_runs(self, cooling_sdft):
        tasks = make_tasks(cooling_sdft)
        farm = SolverFarm(jobs=2)
        try:
            list(farm.run_batched(tasks))
            first = list(farm.batch_sizes)
            list(farm.run_batched(tasks))
            assert farm.batch_sizes == first  # per-run, not cumulative
            assert farm.events == []
        finally:
            farm.close()


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestModelTable:
    def test_tasks_resolve_models_by_index(self, cooling_sdft):
        tasks = make_tasks(cooling_sdft)
        by_index = [
            SolveTask(
                task_id=task.task_id,
                model=None,
                horizon=task.horizon,
                epsilon=task.epsilon,
                max_chain_states=task.max_chain_states,
                lump_chains=task.lump_chains,
                cutset=task.cutset,
                estimated_states=task.estimated_states,
                model_index=index,
            )
            for index, task in enumerate(tasks)
        ]
        farm = SolverFarm(jobs=2)
        try:
            farm.set_model_table([t.model for t in tasks], key="test-table")
            expected = {r.task_id: r for r in farm.run(tasks)}
            got = {r.task_id: r for r in farm.run_batched(by_index)}
        finally:
            farm.close()
        assert set(got) == set(expected)
        for task_id, result in got.items():
            assert result.ok, result.error
            assert result.probability == expected[task_id].probability

    def test_table_reinstall_with_same_key_is_free(self):
        farm = SolverFarm(jobs=2)
        try:
            farm.set_model_table(["m1"], key="k")
            epoch = pool_module._MODEL_EPOCH
            farm._pool = object()  # simulate a live pool  # type: ignore
            farm.set_model_table(["m1"], key="k")
            assert pool_module._MODEL_EPOCH == epoch
            farm._pool = None
            farm.set_model_table(["m2"], key="k2")
            assert pool_module._MODEL_EPOCH == epoch + 1
        finally:
            farm._pool = None
            farm.close()


class TestWarmFarm:
    def test_reused_for_same_jobs(self):
        shutdown_warm_farm()
        first = warm_farm(2)
        second = warm_farm(2)
        assert first is second
        shutdown_warm_farm()

    def test_rebuilt_for_different_jobs(self):
        shutdown_warm_farm()
        first = warm_farm(2)
        second = warm_farm(3)
        assert first is not second
        assert second.jobs == 3
        shutdown_warm_farm()

    def test_timeout_update_keeps_the_farm(self):
        shutdown_warm_farm()
        first = warm_farm(2, task_timeout=None)
        second = warm_farm(2, task_timeout=1.5)
        assert first is second
        assert second.task_timeout == 1.5
        shutdown_warm_farm()

    def test_changed_options_key_refreshes_workers(self):
        # Workers inherit solver knobs (epsilon, max_chain_states,
        # lump_chains) when the pool forks; a farm kept warm across
        # runs must not serve a run whose options differ from the ones
        # it was built with.
        shutdown_warm_farm()
        try:
            first = warm_farm(2, options_key=("1e-12", 200_000, False))
            assert first.option_refreshes == 0
            same = warm_farm(2, options_key=("1e-12", 200_000, False))
            assert same is first
            assert same.option_refreshes == 0

            changed = warm_farm(2, options_key=("1e-10", 200_000, True))
            assert changed is first  # same farm object, recycled pool
            assert changed.option_refreshes == 1
            # The refresh lands in the *next* run's accounting as a
            # pool.rebuilds metric (never in the health report — health
            # is identical across farm history).
            changed._reset_run_state()
            assert changed.rebuilds == 1
            assert [e.kind for e in changed.events] == ["refresh"]
            # ... and is consumed: the run after that starts clean.
            changed._reset_run_state()
            assert changed.rebuilds == 0
            assert changed.events == []

            # None means "caller doesn't track options": never refresh.
            untracked = warm_farm(2, options_key=None)
            assert untracked.option_refreshes == 1
        finally:
            shutdown_warm_farm()

    def test_shutdown_is_idempotent(self):
        shutdown_warm_farm()
        shutdown_warm_farm()
        assert warm_farm(2) is not None
        shutdown_warm_farm()
