"""The parallel determinism contract: ``jobs=N`` equals ``jobs=1`` bit for bit.

Everything analysis-relevant — records, totals, cache counters, health
events — must be identical whichever execution strategy ran.  Only
wall-clock observables (``solve_seconds``, ``timings``) and the
execution description (``perf.jobs``, ``perf.worker_faults``) may
differ.
"""

import dataclasses

from repro.core.analyzer import AnalysisOptions, analyze
from repro.errors import NumericalError
from repro.ft.mocus import MocusOptions, mocus
from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr
from repro.models.enrich import dynamize, plan_dynamization
from repro.models.synthetic import model_1
from repro.robust import faults


def masked_records(result):
    """The records with wall-clock noise removed (all else must match)."""
    return [
        dataclasses.replace(r, solve_seconds=0.0) for r in result.records
    ]


def assert_identical(serial, parallel):
    """Bit-identical analysis values; only execution stats may differ."""
    assert parallel.failure_probability == serial.failure_probability
    assert parallel.static_bound == serial.static_bound
    assert parallel.failure_probability_interval() == (
        serial.failure_probability_interval()
    )
    assert masked_records(parallel) == masked_records(serial)
    assert (parallel.cache_hits, parallel.cache_misses) == (
        serial.cache_hits,
        serial.cache_misses,
    )
    assert parallel.health == serial.health
    assert parallel.mcs_truncated == serial.mcs_truncated
    assert parallel.mcs_remainder_bound == serial.mcs_remainder_bound
    # Dedup statistics derive from the shared cache — identical too.
    assert parallel.perf.dynamic_solves == serial.perf.dynamic_solves
    assert parallel.perf.unique_models_solved == serial.perf.unique_models_solved
    assert parallel.perf.dedup_ratio == serial.perf.dedup_ratio


def run_pair(sdft, jobs, **options):
    serial = analyze(sdft, AnalysisOptions(jobs=1, **options))
    parallel = analyze(sdft, AnalysisOptions(jobs=jobs, **options))
    return serial, parallel


def dynamized_synthetic():
    """A dynamized synthetic PSA study (the Section VI-B construction)."""
    tree = model_1(scale=0.5)
    cutsets = mocus(tree, MocusOptions(cutoff=1e-10)).cutsets
    plan = plan_dynamization(cutsets, 0.3, 0.5)
    return dynamize(tree, plan, 24.0)


class TestDeterminism:
    def test_cooling_jobs2_matches_serial(self, cooling_sdft):
        serial, parallel = run_pair(cooling_sdft, jobs=2)
        assert_identical(serial, parallel)
        assert parallel.perf.jobs == 2
        assert serial.perf.jobs == 1

    def test_bwr_jobs4_matches_serial(self):
        sdft = build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES))
        serial, parallel = run_pair(sdft, jobs=4, cutoff=1e-10)
        assert_identical(serial, parallel)
        assert parallel.perf.dynamic_solves > 0
        assert parallel.perf.dedup_ratio > 0.0  # BWR shapes repeat massively

    def test_synthetic_jobs4_matches_serial(self):
        sdft = dynamized_synthetic()
        serial, parallel = run_pair(sdft, jobs=4, cutoff=1e-10)
        assert_identical(serial, parallel)
        assert parallel.perf.dynamic_solves > 0

    def test_lumped_run_matches_serial(self, cooling_sdft):
        serial, parallel = run_pair(cooling_sdft, jobs=2, lump_chains=True)
        assert_identical(serial, parallel)


class TestWorkerFaultDeterminism:
    def test_injected_worker_fault_degrades_identically(self, cooling_sdft):
        """A solver fault tripping *inside a worker* must leave the exact
        same records and health trail as the same fault in the serial
        loop: the parent re-runs the affected cutsets through the
        degradation ladder."""
        doomed = frozenset({"b", "d"})

        def run(jobs):
            with faults.inject(
                "transient_solve",
                NumericalError("injected solver failure"),
                when=lambda cutset: cutset == doomed,
            ):
                return analyze(
                    cooling_sdft,
                    AnalysisOptions(jobs=jobs, fault_isolation=True),
                )

        serial = run(1)
        parallel = run(2)
        assert_identical(serial, parallel)
        # The fault really tripped, and really tripped in a worker.
        assert not serial.health.is_clean
        assert serial.perf.worker_faults == 0
        assert parallel.perf.worker_faults >= 1
        (record,) = [r for r in parallel.records if r.cutset == doomed]
        assert record.rung in ("monte_carlo", "bound", "skipped")

    def test_state_budget_exhaustion_matches_serial(self, cooling_sdft):
        """The state budget is charged in deterministic cutset order by
        both strategies, so even partial (budget-cut) results agree."""
        options = dict(max_total_states=5, fault_isolation=True)
        serial, parallel = run_pair(cooling_sdft, jobs=2, **options)
        assert_identical(serial, parallel)
        assert not serial.health.is_clean  # the budget really did bite
        assert serial.is_degraded and parallel.is_degraded
