"""The solver farm: worker correctness, fault capture, jobs resolution."""

import pytest

from repro.core.cutset_model import build_cutset_model
from repro.core.quantify import quantify_model
from repro.errors import NumericalError
from repro.perf.pool import (
    SolveResult,
    SolveTask,
    SolverFarm,
    resolve_jobs,
    solve_task,
)
from repro.perf.schedule import estimate_chain_states
from repro.robust import faults


def make_task(sdft, cutset, task_id=0, **overrides):
    model = build_cutset_model(sdft, cutset)
    assert model.model is not None, "task fixtures must be dynamic cutsets"
    settings = dict(
        task_id=task_id,
        model=model.model,
        horizon=24.0,
        epsilon=1e-12,
        max_chain_states=200_000,
        lump_chains=False,
        cutset=tuple(sorted(cutset)),
        estimated_states=estimate_chain_states(model.model),
    )
    settings.update(overrides)
    return model, SolveTask(**settings)


class TestResolveJobs:
    def test_integers_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_integer_strings_pass_through(self):
        assert resolve_jobs("4") == 4

    def test_auto_and_none_use_available_cpus(self):
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(None) == resolve_jobs("auto")

    @pytest.mark.parametrize("bad", [0, -1, "0"])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)


class TestSolveTask:
    def test_matches_the_serial_solver(self, cooling_sdft):
        model, task = make_task(cooling_sdft, frozenset({"b", "d"}))
        result = solve_task(task)
        serial = quantify_model(model, 24.0)
        assert result.ok
        assert result.probability * model.static_factor == serial.probability
        assert result.chain_states == serial.chain_states
        assert result.solve_seconds > 0.0

    def test_lumped_solve_matches_serial(self, cooling_sdft):
        model, task = make_task(
            cooling_sdft, frozenset({"b", "d"}), lump_chains=True
        )
        result = solve_task(task)
        serial = quantify_model(model, 24.0, lump_chains=True)
        assert result.ok
        assert result.probability * model.static_factor == serial.probability
        assert result.chain_states == serial.chain_states

    def test_numerical_fault_is_captured(self, cooling_sdft):
        _, task = make_task(cooling_sdft, frozenset({"b", "d"}))
        with faults.inject("transient_solve", NumericalError("forced")):
            result = solve_task(task)
        assert not result.ok
        assert result.error_kind == "numerical"
        assert "forced" in result.error

    def test_unexpected_error_is_captured_as_crash(self, cooling_sdft):
        _, task = make_task(cooling_sdft, frozenset({"b", "d"}))
        with faults.inject("transient_solve", RuntimeError("boom")):
            result = solve_task(task)
        assert not result.ok
        assert result.error_kind == "crash"
        assert "RuntimeError" in result.error

    def test_state_allowance_is_enforced(self, cooling_sdft):
        _, task = make_task(
            cooling_sdft, frozenset({"b", "d"}), state_allowance=1
        )
        result = solve_task(task)
        assert not result.ok
        assert result.error_kind == "budget"

    def test_fault_predicate_targets_the_cutset(self, cooling_sdft):
        """``when=`` predicates see the task's cutset inside the worker path."""
        _, task = make_task(cooling_sdft, frozenset({"b", "d"}))
        with faults.inject(
            "transient_solve",
            NumericalError("targeted"),
            when=lambda cutset: cutset == frozenset({"b", "d"}),
        ):
            assert solve_task(task).error_kind == "numerical"
        with faults.inject(
            "transient_solve",
            NumericalError("other"),
            when=lambda cutset: cutset == frozenset({"never"}),
        ):
            assert solve_task(task).ok


class TestSolverFarm:
    def test_one_result_per_task_matching_serial(self, cooling_sdft):
        cutsets = [
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        ]
        models, tasks = [], []
        for i, cutset in enumerate(cutsets):
            model, task = make_task(cooling_sdft, cutset, task_id=i)
            models.append(model)
            tasks.append(task)
        results = {r.task_id: r for r in SolverFarm(jobs=2).run(tasks)}
        assert sorted(results) == [0, 1, 2]
        for i, model in enumerate(models):
            serial = quantify_model(model, 24.0)
            assert results[i].ok
            assert (
                results[i].probability * model.static_factor
                == serial.probability
            )
            assert results[i].chain_states == serial.chain_states

    def test_empty_task_list(self):
        assert list(SolverFarm(jobs=2).run([])) == []

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            SolverFarm(jobs=0)

    def test_parent_armed_fault_trips_inside_the_worker(self, cooling_sdft):
        """Fork inheritance: faults armed before the pool starts trip in
        workers, and the failure comes back as a result, not an exception."""
        _, good = make_task(cooling_sdft, frozenset({"b", "c"}), task_id=0)
        _, doomed = make_task(cooling_sdft, frozenset({"b", "d"}), task_id=1)
        with faults.inject(
            "transient_solve",
            NumericalError("worker fault"),
            when=lambda cutset: cutset == frozenset({"b", "d"}),
        ):
            results = {
                r.task_id: r for r in SolverFarm(jobs=2).run([good, doomed])
            }
        assert results[0].ok
        assert not results[1].ok
        assert results[1].error_kind == "numerical"

    def test_results_are_plain_data(self, cooling_sdft):
        _, task = make_task(cooling_sdft, frozenset({"b", "d"}))
        (result,) = list(SolverFarm(jobs=1).run([task]))
        assert isinstance(result, SolveResult)
        assert result.ok
