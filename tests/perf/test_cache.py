"""Persistent solve cache: lifecycle, invalidation, corruption tolerance.

The contract under test: a warm cache makes re-analysis near-free and
*bit-identical* to a cold run, a key mismatch (model content, horizon,
solver options) is always a miss, and no form of on-disk corruption —
garbage files, torn payloads, stale schemas — can ever fail or skew an
analysis: the worst a broken cache can do is run at cold speed.
"""

import dataclasses
import json
import os
import sqlite3
import threading

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.errors import NumericalError
from repro.perf.cache import (
    SCHEMA_VERSION,
    SolveCache,
    default_cache_dir,
    tree_digest,
)
from repro.robust import faults

SIGNATURE = ("model", "fingerprint-a", 24.0)


def make_cache(tmp_path, **kwargs):
    return SolveCache(str(tmp_path / "cache"), **kwargs)


def db_path(cache):
    return os.path.join(cache.cache_dir, "solve-cache.sqlite")


def masked_records(result):
    """Records with wall-clock noise removed (all else must match)."""
    return [
        dataclasses.replace(r, solve_seconds=0.0) for r in result.records
    ]


def cache_messages(result):
    return [
        e.message for e in result.health.events if e.stage == "cache"
    ]


def was_restored(result):
    return any("full-result hit" in m for m in cache_messages(result))


def build_cooling(rate_b=0.001):
    b = SdFaultTreeBuilder("cooling-sd")
    b.static_event("a", 3e-3).static_event("c", 3e-3)
    b.static_event("e", 3e-6)
    b.dynamic_event("b", repairable(rate_b, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")
    return b.build("cooling")


class TestSolveLayer:
    def test_roundtrip(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put_solve(SIGNATURE, 1e-12, 200_000, False, 0.25, 17)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) == (0.25, 17)
        assert cache.solve_hits == 1
        assert cache.solve_misses == 0

    def test_misses_on_any_key_component_change(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put_solve(SIGNATURE, 1e-12, 200_000, False, 0.25, 17)
        assert cache.get_solve(("other",), 1e-12, 200_000, False) is None
        assert cache.get_solve(SIGNATURE, 1e-10, 200_000, False) is None
        assert cache.get_solve(SIGNATURE, 1e-12, 100, False) is None
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, True) is None
        assert cache.solve_misses == 4

    @pytest.mark.parametrize(
        "probability", [float("nan"), -0.5, 1.5, float("inf")]
    )
    def test_never_persists_implausible_values(self, tmp_path, probability):
        cache = make_cache(tmp_path)
        cache.put_solve(SIGNATURE, 1e-12, 200_000, False, probability, 17)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None

    def test_refuses_writes_while_faults_armed(self, tmp_path):
        cache = make_cache(tmp_path)
        with faults.inject("transient_solve", NumericalError("armed")):
            cache.put_solve(SIGNATURE, 1e-12, 200_000, False, 0.25, 17)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None

    def test_refuses_writes_while_value_faults_armed(self, tmp_path):
        cache = make_cache(tmp_path)
        with faults.inject_value("solve_value", 0.9, times=1):
            cache.put_solve(SIGNATURE, 1e-12, 200_000, False, 0.25, 17)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None


class TestMocusAndRecordsLayers:
    def test_mocus_roundtrip(self, tmp_path):
        cache = make_cache(tmp_path)
        cutsets = [["a", "b"], ["c"]]
        cache.put_mocus("digest", 1e-15, 10_000_000, cutsets)
        assert cache.get_mocus("digest", 1e-15, 10_000_000) == cutsets
        assert cache.get_mocus("digest", 1e-10, 10_000_000) is None
        assert cache.get_mocus("other", 1e-15, 10_000_000) is None

    def test_records_roundtrip(self, tmp_path):
        cache = make_cache(tmp_path)
        payload = {"records": [{"cutset": ["a"]}], "static_bound": 0.1}
        cache.put_records("fp", ("opts",), payload)
        found = cache.get_records("fp", ("opts",))
        assert found["records"] == payload["records"]
        assert found["static_bound"] == payload["static_bound"]
        assert cache.get_records("fp", ("other",)) is None


class TestCorruptionTolerance:
    def put_one(self, cache):
        cache.put_solve(SIGNATURE, 1e-12, 200_000, False, 0.25, 17)

    def corrupt_payloads(self, cache, payload):
        with sqlite3.connect(db_path(cache)) as connection:
            connection.execute("UPDATE entries SET payload = ?", (payload,))

    def test_torn_payload_is_a_miss_and_row_is_dropped(self, tmp_path):
        cache = make_cache(tmp_path)
        self.put_one(cache)
        cache.close()
        self.corrupt_payloads(cache, "{not json")
        cache = SolveCache(cache.cache_dir)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None
        assert cache.errors == 1
        with sqlite3.connect(db_path(cache)) as connection:
            count = connection.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]
        assert count == 0  # the bad row cannot keep costing parse failures

    def test_stale_schema_version_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        self.put_one(cache)
        cache.close()
        stale = json.dumps(
            {"probability": 0.25, "chain_states": 17, "schema": -1}
        )
        self.corrupt_payloads(cache, stale)
        cache = SolveCache(cache.cache_dir)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None
        assert cache.errors == 1

    def test_out_of_range_stored_value_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        self.put_one(cache)
        cache.close()
        bad = json.dumps(
            {"probability": 2.5, "chain_states": 17, "schema": SCHEMA_VERSION}
        )
        self.corrupt_payloads(cache, bad)
        cache = SolveCache(cache.cache_dir)
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None
        assert cache.errors == 1

    def test_garbage_database_file_degrades_to_misses(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "solve-cache.sqlite").write_bytes(b"not a database")
        cache = SolveCache(str(cache_dir))
        self.put_one(cache)  # must not raise
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None
        assert cache.errors >= 1

    def test_unwritable_cache_dir_degrades_to_misses(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the directory should be")
        cache = SolveCache(str(blocker / "cache"))
        self.put_one(cache)  # must not raise
        assert cache.get_solve(SIGNATURE, 1e-12, 200_000, False) is None
        assert cache.errors >= 1


class TestEviction:
    def test_oldest_entries_beyond_the_bound_are_evicted(self, tmp_path):
        cache = make_cache(tmp_path, max_entries=2)
        for index in range(4):
            cache.put_solve(
                (f"model-{index}",), 1e-12, 200_000, False, 0.25, 17
            )
        assert cache.evictions == 2
        with sqlite3.connect(db_path(cache)) as connection:
            count = connection.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]
        assert count == 2


class TestTreeDigest:
    def test_stable_and_content_sensitive(self, cooling_tree):
        assert tree_digest(cooling_tree) == tree_digest(cooling_tree)

    def test_probability_change_changes_digest(self):
        from repro.ft.builder import FaultTreeBuilder

        def tiny(p):
            b = FaultTreeBuilder("t")
            b.event("a", p).event("b", 1e-3)
            b.or_("top", "a", "b")
            return b.build("top")

        assert tree_digest(tiny(3e-3)) != tree_digest(tiny(4e-3))


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == str(tmp_path / "override")

    def test_falls_back_to_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().endswith(os.path.join(".cache", "repro"))


class TestAnalyzerLifecycle:
    """Cold -> warm bit-identity, invalidation, and the escape hatch."""

    def opts(self, tmp_path, **overrides):
        settings = dict(cache_dir=str(tmp_path / "run-cache"))
        settings.update(overrides)
        return AnalysisOptions(**settings)

    def test_cold_then_warm_is_bit_identical(self, cooling_sdft, tmp_path):
        cold = analyze(cooling_sdft, self.opts(tmp_path))
        warm = analyze(cooling_sdft, self.opts(tmp_path))
        assert not was_restored(cold)
        assert was_restored(warm)
        assert warm.failure_probability == cold.failure_probability
        assert warm.static_bound == cold.static_bound
        assert masked_records(warm) == masked_records(cold)
        assert warm.failure_probability_interval() == (
            cold.failure_probability_interval()
        )
        assert (warm.cache_hits, warm.cache_misses) == (
            cold.cache_hits,
            cold.cache_misses,
        )

    def test_warm_run_with_jobs_is_bit_identical(self, cooling_sdft, tmp_path):
        cold = analyze(cooling_sdft, self.opts(tmp_path, jobs=1))
        warm = analyze(cooling_sdft, self.opts(tmp_path, jobs=2))
        assert warm.failure_probability == cold.failure_probability
        assert masked_records(warm) == masked_records(cold)

    def test_rate_change_invalidates(self, tmp_path):
        baseline = analyze(build_cooling(0.001), self.opts(tmp_path))
        changed = analyze(build_cooling(0.002), self.opts(tmp_path))
        assert not was_restored(changed)
        assert changed.failure_probability != baseline.failure_probability

    def test_horizon_change_invalidates(self, cooling_sdft, tmp_path):
        baseline = analyze(cooling_sdft, self.opts(tmp_path))
        changed = analyze(cooling_sdft, self.opts(tmp_path, horizon=48.0))
        assert not was_restored(changed)
        assert changed.failure_probability != baseline.failure_probability

    def test_solver_option_change_invalidates(self, cooling_sdft, tmp_path):
        analyze(cooling_sdft, self.opts(tmp_path))
        lumped = analyze(cooling_sdft, self.opts(tmp_path, lump_chains=True))
        assert not was_restored(lumped)

    def test_verify_full_recomputes(self, cooling_sdft, tmp_path):
        analyze(cooling_sdft, self.opts(tmp_path))
        full = analyze(cooling_sdft, self.opts(tmp_path, verify="full"))
        assert not was_restored(full)

    def test_no_cache_dir_touches_no_disk(self, cooling_sdft, monkeypatch,
                                          tmp_path):
        # The library default is cache-off; nothing may appear under the
        # default location either (the conftest points it into tmp).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default"))
        result = analyze(cooling_sdft, AnalysisOptions())
        assert result.records
        assert not os.path.exists(str(tmp_path / "default"))
        assert cache_messages(result) == []

    def test_cached_run_keeps_clean_health(self, cooling_sdft, tmp_path):
        analyze(cooling_sdft, self.opts(tmp_path))
        warm = analyze(cooling_sdft, self.opts(tmp_path))
        assert was_restored(warm)
        assert warm.health.is_clean

    def test_concurrent_writers_share_one_directory(self, cooling_sdft,
                                                    tmp_path):
        options = self.opts(tmp_path)
        results = [None] * 4
        errors = []

        def worker(slot):
            try:
                results[slot] = analyze(cooling_sdft, options)
            except Exception as error:  # pragma: no cover - the failure
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        probabilities = {r.failure_probability for r in results}
        assert len(probabilities) == 1
        warm = analyze(cooling_sdft, options)
        assert was_restored(warm)
        assert warm.failure_probability == probabilities.pop()
