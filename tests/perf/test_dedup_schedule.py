"""Dedup planning and largest-first scheduling."""

from dataclasses import dataclass, field

from repro.core.cutset_model import build_cutset_model
from repro.perf.dedup import DedupPlan
from repro.perf.fingerprint import model_signature
from repro.perf.schedule import (
    ESTIMATE_CAP,
    estimate_chain_states,
    order_largest_first,
)


@dataclass
class _FakeTask:
    estimated_states: int
    name: str = ""


@dataclass
class _FakeModel:
    cutset: frozenset = field(default_factory=frozenset)


class TestDedupPlan:
    def test_groups_by_key_in_first_seen_order(self):
        plan = DedupPlan()
        plan.add(("k1",), _FakeModel(frozenset({"a"})))
        plan.add(("k2",), _FakeModel(frozenset({"b"})))
        plan.add(("k1",), _FakeModel(frozenset({"c"})))
        assert [g.key for g in plan.groups] == [("k1",), ("k2",)]
        assert plan.get(("k1",)).members == [frozenset({"a"}), frozenset({"c"})]

    def test_representative_is_first_member(self):
        plan = DedupPlan()
        first = _FakeModel(frozenset({"a"}))
        plan.add(("k",), first)
        plan.add(("k",), _FakeModel(frozenset({"b"})))
        assert plan.get(("k",)).representative is first

    def test_statistics(self):
        plan = DedupPlan()
        for name in "abc":
            plan.add(("shared",), _FakeModel(frozenset({name})))
        plan.add(("solo",), _FakeModel(frozenset({"d"})))
        assert plan.n_models == 4
        assert plan.n_unique == 2
        assert plan.dedup_ratio == 0.5

    def test_empty_plan(self):
        plan = DedupPlan()
        assert plan.n_models == 0
        assert plan.dedup_ratio == 0.0
        assert plan.groups == []

    def test_real_cutset_models_share_a_signature(self, cooling_sdft):
        """{b,d} with different static partners → one quantification."""
        plan = DedupPlan()
        for static_partner in (frozenset({"b", "d"}), frozenset()):
            cutset = frozenset({"b", "d"}) | static_partner
            model = build_cutset_model(cooling_sdft, cutset)
            plan.add(model_signature(model.model, 24.0), model)
        assert plan.n_unique == 1
        assert plan.dedup_ratio == 0.5


class TestSchedule:
    def test_estimate_multiplies_local_state_spaces(self, cooling_sdft):
        model = build_cutset_model(cooling_sdft, frozenset({"b", "d"}))
        # b: 2-state repairable, d: 4-state triggered repairable — the
        # FT_C of {b, d} has no static guards.
        assert estimate_chain_states(model.model) == 2 * 4

    def test_estimate_caps(self, cooling_sdft):
        model = build_cutset_model(cooling_sdft, frozenset({"b", "d"}))
        big = model.model
        # A pathological horizon of chains would overflow; the cap holds.
        estimate = 1
        for _ in range(100):
            estimate = min(ESTIMATE_CAP, estimate * 4)
        assert estimate == ESTIMATE_CAP
        assert estimate_chain_states(big) <= ESTIMATE_CAP

    def test_orders_largest_first_stable(self):
        tasks = [
            _FakeTask(4, "a"),
            _FakeTask(16, "b"),
            _FakeTask(4, "c"),
            _FakeTask(8, "d"),
        ]
        ordered = order_largest_first(tasks)
        assert [t.name for t in ordered] == ["b", "d", "a", "c"]
