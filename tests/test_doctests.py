"""Keep the runnable examples in docstrings honest."""

import doctest

import repro
import repro.ft.builder


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_builder_doctest():
    results = doctest.testmod(repro.ft.builder, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
