"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.models.formats import save_model


@pytest.fixture
def sd_model_file(cooling_sdft, tmp_path):
    path = tmp_path / "cooling.json"
    save_model(cooling_sdft, path)
    return str(path)


@pytest.fixture
def static_model_file(cooling_tree, tmp_path):
    path = tmp_path / "static.json"
    save_model(cooling_tree, path)
    return str(path)


class TestAnalyze:
    def test_sd_model(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "top 10 cutsets" in out

    def test_static_model_promoted(self, static_model_file, capsys):
        assert main(["analyze", static_model_file]) == 0
        out = capsys.readouterr().out
        assert "cutsets: 5 total" in out

    def test_horizon_option(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--horizon", "96"]) == 0
        assert "horizon: 96.0" in capsys.readouterr().out


class TestMcs:
    def test_lists_cutsets(self, static_model_file, capsys):
        assert main(["mcs", static_model_file]) == 0
        out = capsys.readouterr().out
        assert "5 minimal cutsets" in out
        assert "rare-event sum" in out

    def test_sd_model_translated(self, sd_model_file, capsys):
        assert main(["mcs", sd_model_file]) == 0
        assert "minimal cutsets" in capsys.readouterr().out


class TestImportance:
    def test_table(self, static_model_file, capsys):
        assert main(["importance", static_model_file]) == 0
        out = capsys.readouterr().out
        assert "FV" in out and "Birnbaum" in out
        assert "a" in out


class TestClassify:
    def test_trigger_classes_listed(self, sd_model_file, capsys):
        assert main(["classify", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "pump1" in out
        assert "static-branching" in out
        assert "per-cutset chains stay small" in out

    def test_static_model_has_no_triggers(self, static_model_file, capsys):
        assert main(["classify", static_model_file]) == 0
        assert "no triggering gates" in capsys.readouterr().out


class TestCurve:
    def test_prints_monotone_table(self, sd_model_file, capsys):
        assert main(["curve", sd_model_file, "--horizons", "12,24,48"]) == 0
        out = capsys.readouterr().out
        assert "P(failure <= t)" in out
        values = [
            float(line.split()[1])
            for line in out.splitlines()
            if line.strip() and line.split()[0].replace(".", "").isdigit()
        ]
        assert values == sorted(values)


class TestSimulate:
    def test_estimate(self, sd_model_file, capsys):
        assert main(
            ["simulate", sd_model_file, "--runs", "2000", "--seed", "3"]
        ) == 0
        assert "95% CI" in capsys.readouterr().out


class TestDemoBwr:
    def test_save(self, tmp_path, capsys):
        target = tmp_path / "bwr.json"
        assert main(["demo-bwr", "--save", str(target), "--triggers", "none"]) == 0
        data = json.loads(target.read_text())
        assert data["kind"] == "sd-fault-tree"

    def test_trigger_list_parsing(self, tmp_path):
        target = tmp_path / "bwr.json"
        assert (
            main(["demo-bwr", "--save", str(target), "--triggers", "RHR,ECC"]) == 0
        )
        data = json.loads(target.read_text())
        triggered = {e for events in data["triggers"].values() for e in events}
        assert triggered == {"RHR-B-PUMP-FTR", "ECC-B-PUMP-FTR"}


class TestXmlModels:
    def test_analyze_openpsa_file(self, cooling_tree, tmp_path, capsys):
        from repro.models.openpsa import save_openpsa

        path = tmp_path / "model.xml"
        save_openpsa(cooling_tree, path)
        assert main(["analyze", str(path)]) == 0
        assert "cutsets: 5 total" in capsys.readouterr().out

    def test_mcs_openpsa_file(self, cooling_tree, tmp_path, capsys):
        from repro.models.openpsa import save_openpsa

        path = tmp_path / "model.xml"
        save_openpsa(cooling_tree, path)
        assert main(["mcs", str(path)]) == 0
        assert "5 minimal cutsets" in capsys.readouterr().out


class TestAnalyzeFlags:
    def test_lump_flag(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--lump"]) == 0
        assert "failure probability" in capsys.readouterr().out

    def test_bounds_flag(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--bounds"]) == 0
        assert "failure probability" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_is_clean_error(self, capsys):
        assert main(["analyze", "/nonexistent/model.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_json_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{")
        assert main(["mcs", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestSimplify:
    @pytest.fixture
    def fat_model_file(self, tmp_path):
        """A model with verified diet opportunities (wrapper + vacuity)."""
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("fat")
        b.event("a", 1e-3).event("b", 2e-3).event("c", 3e-3)
        b.and_("both", "a", "b")
        b.or_("wrap", "c")
        b.or_("top", "a", "both", "wrap")
        path = tmp_path / "fat.json"
        save_model(b.build("top"), path)
        return str(path)

    def test_reports_the_diet(self, fat_model_file, capsys):
        assert main(["simplify", fat_model_file]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "BDD-verified" in out

    def test_check_passes_on_verified_diet(self, fat_model_file):
        assert main(["simplify", fat_model_file, "--check"]) == 0

    def test_check_fails_when_budget_blocks_verification(
        self, fat_model_file, capsys
    ):
        assert (
            main(["simplify", fat_model_file, "--check", "--node-budget", "1"])
            == 1
        )
        assert "check failed" in capsys.readouterr().err

    def test_output_round_trips_and_shrinks(self, fat_model_file, tmp_path, capsys):
        from repro.models.formats import load_model

        def gate_count(model):
            tree = getattr(model, "structure", model)
            return len(tree.gates)

        target = tmp_path / "small.json"
        assert main(["simplify", fat_model_file, "--output", str(target)]) == 0
        assert gate_count(load_model(target)) < gate_count(load_model(fat_model_file))

    def test_json_format(self, fat_model_file, capsys):
        assert main(["simplify", fat_model_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gates_after"] < payload["gates_before"]
        assert payload["budget_hit"] is False

    def test_analyze_simplify_flag_preserves_the_answer(
        self, sd_model_file, capsys
    ):
        assert main(["analyze", sd_model_file, "--no-cache"]) == 0
        plain = capsys.readouterr().out.splitlines()[0]
        assert (
            main(["analyze", sd_model_file, "--no-cache", "--simplify"]) == 0
        )
        simplified = capsys.readouterr().out.splitlines()[0]
        assert plain == simplified


class TestLintCodeValidation:
    def test_unknown_disable_code_exits_two(self, sd_model_file, capsys):
        assert main(["lint", sd_model_file, "--disable", "SD999"]) == 2
        err = capsys.readouterr().err
        assert "SD999" in err and "unknown rule code" in err

    def test_unknown_codes_are_all_listed(self, sd_model_file, capsys):
        assert (
            main(["lint", sd_model_file, "--disable", "SD998,SD101,SD999"]) == 2
        )
        err = capsys.readouterr().err
        assert "SD998" in err and "SD999" in err and "SD101" not in err

    def test_unknown_severity_code_exits_two(self, sd_model_file, capsys):
        assert main(["lint", sd_model_file, "--severity", "SD999=error"]) == 2
        assert "SD999" in capsys.readouterr().err

    def test_known_codes_still_accepted(self, sd_model_file):
        assert (
            main(
                ["lint", sd_model_file, "--disable", "SD103",
                 "--severity", "SD201=info"]
            )
            == 0
        )
