"""Smoke tests keeping the example scripts from rotting.

Full example runs take minutes (they sweep whole experiment tables), so
these tests compile every script and exercise the cheap model-building
entry points; the heavy `main()` paths are executed by the benchmark
suite's models anyway.
"""

import pathlib
import py_compile
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _load(name: str):
    import importlib.util

    path = pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestBuilders:
    def test_quickstart_model(self):
        module = _load("quickstart")
        sdft = module.build_cooling_system()
        assert sdft.trigger_of == {"d": "pump1"}

    def test_event_tree_psa_model(self):
        module = _load("event_tree_psa")
        sdft = module.build_plant_model()
        event_tree = module.build_event_tree()
        assert "STBY-PUMP" in sdft.dynamic_events
        assert event_tree.consequences() == {"OK", "CD", "SEVERE"}

    def test_examples_have_main(self):
        for path in EXAMPLES:
            source = path.read_text()
            assert 'if __name__ == "__main__":' in source, path
            assert "def main(" in source, path
