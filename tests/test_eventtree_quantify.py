"""Tests of event-tree quantification over static and SD models."""

import pytest

from repro.core.analyzer import AnalysisOptions
from repro.errors import ModelError
from repro.eventtree.quantify import quantify_event_tree
from repro.eventtree.tree import EventTreeBuilder


@pytest.fixture
def event_tree():
    return (
        EventTreeBuilder("COOLING-DEMAND", "IE", 0.5)
        .functional_event("PUMPS", "pumps")
        .functional_event("TANK", "tank-wrap")
        .sequence("OKPATH", "OK", PUMPS=False)
        .sequence("S-PUMPS", "CD", PUMPS=True, TANK=False)
        .sequence("S-BOTH", "SEVERE", PUMPS=True, TANK=True)
        .build()
    )


@pytest.fixture
def static_model(cooling_tree):
    """The cooling example with an extra wrapper gate for the tank."""
    from repro.ft.builder import FaultTreeBuilder

    b = FaultTreeBuilder("cooling+wrap")
    for event in cooling_tree.events.values():
        b.event(event.name, event.probability)
    for gate in cooling_tree.gates.values():
        b.gate(gate.name, gate.gate_type, gate.children, gate.k)
    b.or_("tank-wrap", "e")
    b.or_("top-all", "cooling", "tank-wrap")
    return b.build("top-all")


class TestStaticQuantification:
    def test_sequence_probabilities(self, event_tree, static_model):
        result = quantify_event_tree(event_tree, static_model)
        by_name = {s.name: s for s in result.sequences}
        # S-PUMPS: both pumps fail; rare-event sum of the 4 pump cutsets.
        expected_pumps = 9e-6 + 3e-6 + 3e-6 + 1e-6
        assert by_name["S-PUMPS"].probability == pytest.approx(
            expected_pumps, rel=1e-9
        )
        # S-BOTH additionally requires the tank.
        assert by_name["S-BOTH"].probability == pytest.approx(
            expected_pumps * 3e-6, rel=1e-9
        )

    def test_frequencies_scale_by_initiator(self, event_tree, static_model):
        result = quantify_event_tree(event_tree, static_model)
        for sequence in result.sequences:
            assert sequence.frequency == pytest.approx(0.5 * sequence.probability)

    def test_success_only_sequences_skipped(self, event_tree, static_model):
        result = quantify_event_tree(event_tree, static_model)
        assert {s.name for s in result.sequences} == {"S-PUMPS", "S-BOTH"}

    def test_consequence_totals(self, event_tree, static_model):
        result = quantify_event_tree(event_tree, static_model)
        totals = result.by_consequence()
        assert set(totals) == {"CD", "SEVERE"}
        assert totals["CD"] == pytest.approx(
            result.consequence_frequency("CD")
        )
        assert totals["SEVERE"] < totals["CD"]

    def test_missing_gate_rejected(self, event_tree, cooling_tree):
        with pytest.raises(ModelError, match="tank-wrap"):
            quantify_event_tree(event_tree, cooling_tree)


class TestSdQuantification:
    def test_dynamic_sequence_below_static(self, cooling_sdft):
        """Against the SD model the pump sequence quantifies below the
        static value: the spare pump's exposure is trigger-limited."""
        event_tree = (
            EventTreeBuilder("DEMAND", "IE", 1.0)
            .functional_event("PUMPS", "pumps")
            .sequence("S", "CD", PUMPS=True)
            .build()
        )
        result = quantify_event_tree(
            event_tree, cooling_sdft, AnalysisOptions(horizon=24.0)
        )
        sequence = result.sequences[0]
        static_value = 9e-6 + 2 * 3e-3 * 0.0237 + 0.0237**2
        assert 0.0 < sequence.probability < static_value
        assert result.consequence_frequency("CD") == pytest.approx(
            sequence.probability
        )
