"""Static-engine selection: BDD-exact serving, fallbacks, overshoot fix."""

from __future__ import annotations

import math

import pytest

from repro.bdd.ft_bdd import exact_probability
from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.sdft import SdFaultTree
from repro.ft.builder import FaultTreeBuilder

HORIZON = 24.0


def _static_sdft(tree) -> SdFaultTree:
    """Promote a plain static tree to an (all-static) SD tree."""
    return SdFaultTree(
        tree.top,
        list(tree.events.values()),
        [],
        list(tree.gates.values()),
        name=tree.name,
    )


def _cooling():
    b = FaultTreeBuilder("cooling-static")
    b.event("a", 3e-3).event("b", 1e-3)
    b.event("c", 3e-3).event("d", 1e-3)
    b.event("e", 3e-6)
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    return b.or_("cooling", "pumps", "e").build("cooling")


def _overshoot():
    """Two near-certain single-event cutsets: rare-event sum 1.8 > 1."""
    b = FaultTreeBuilder("overshoot")
    b.event("x", 0.9).event("y", 0.9)
    b.or_("top", "x", "y")
    return b.build("top")


class TestBddEngine:
    def test_auto_serves_the_exact_bdd_value(self):
        tree = _cooling()
        result = analyze(_static_sdft(tree), AnalysisOptions(horizon=HORIZON))
        assert result.method == "bdd-exact"
        assert math.isclose(
            result.failure_probability, exact_probability(tree), rel_tol=1e-12
        )
        assert result.bdd_nodes > 0
        assert result.bdd_ordering
        assert result.rare_event_sum is not None
        assert result.rare_event_sum >= result.failure_probability - 1e-12
        assert any(
            e.stage == "bdd" and "exact BDD" in e.message
            for e in result.health.events
        )

    def test_exact_interval_is_degenerate(self):
        result = analyze(
            _static_sdft(_cooling()), AnalysisOptions(horizon=HORIZON)
        )
        lower, upper = result.failure_probability_interval()
        assert lower == upper == result.failure_probability

    def test_mcs_engine_keeps_the_classical_path(self):
        result = analyze(
            _static_sdft(_cooling()),
            AnalysisOptions(horizon=HORIZON, static_engine="mcs"),
        )
        assert result.method == "mcs-rare-event"
        assert result.bdd_nodes == 0
        assert result.failure_probability == result.rare_event_sum

    def test_engines_agree_within_rare_event_error(self):
        sdft = _static_sdft(_cooling())
        bdd = analyze(sdft, AnalysisOptions(horizon=HORIZON, static_engine="bdd"))
        mcs = analyze(sdft, AnalysisOptions(horizon=HORIZON, static_engine="mcs"))
        # rare-event sum >= exact >= largest single cutset
        assert mcs.failure_probability >= bdd.failure_probability - 1e-12
        assert math.isclose(
            mcs.failure_probability, bdd.failure_probability, rel_tol=1e-2
        )

    def test_budget_trip_falls_back_to_cutsets(self):
        result = analyze(
            _static_sdft(_cooling()),
            AnalysisOptions(horizon=HORIZON, bdd_node_budget=2),
        )
        assert result.method == "mcs-rare-event"
        assert any(
            e.stage == "bdd" and "falling back" in e.message
            for e in result.health.events
        )
        # The fallback is informational: the run still counts as clean.
        assert result.health.is_clean

    def test_dynamic_models_never_use_the_bdd(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        assert result.method == "mcs-rare-event"
        assert result.bdd_nodes == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="static_engine"):
            analyze(
                _static_sdft(_cooling()),
                AnalysisOptions(horizon=HORIZON, static_engine="quantum"),
            )

    def test_verify_cheap_passes_on_the_exact_path(self):
        result = analyze(
            _static_sdft(_cooling()),
            AnalysisOptions(horizon=HORIZON, verify="cheap"),
        )
        assert result.method == "bdd-exact"
        assert result.health.is_clean


class TestOvershootFix:
    def test_mcs_path_serves_the_min_cut_upper_bound(self):
        """The soundness bugfix: the served value can no longer exceed 1."""
        result = analyze(
            _static_sdft(_overshoot()),
            AnalysisOptions(horizon=HORIZON, static_engine="mcs"),
        )
        assert result.method == "mcs-min-cut-ub"
        assert result.rare_event_sum == pytest.approx(1.8)
        assert result.failure_probability == pytest.approx(0.99)
        assert result.failure_probability <= 1.0
        assert any(
            "overshoots 1.0" in e.message for e in result.health.events
        )

    def test_overshoot_summary_names_the_estimator(self):
        result = analyze(
            _static_sdft(_overshoot()),
            AnalysisOptions(horizon=HORIZON, static_engine="mcs"),
        )
        summary = result.summary()
        assert "mcs-min-cut-ub" in summary
        assert "min-cut upper bound" in summary

    def test_bdd_engine_solves_the_overshoot_exactly(self):
        result = analyze(
            _static_sdft(_overshoot()), AnalysisOptions(horizon=HORIZON)
        )
        assert result.method == "bdd-exact"
        assert result.failure_probability == pytest.approx(0.99)

    def test_verify_accepts_the_served_bound(self):
        """P1 on the served value passes even though the raw sum is 1.8."""
        for engine in ("mcs", "auto"):
            result = analyze(
                _static_sdft(_overshoot()),
                AnalysisOptions(
                    horizon=HORIZON, static_engine=engine, verify="cheap"
                ),
            )
            assert result.failure_probability <= 1.0

    def test_overshoot_interval_brackets_the_serve(self):
        result = analyze(
            _static_sdft(_overshoot()),
            AnalysisOptions(horizon=HORIZON, static_engine="mcs"),
        )
        lower, upper = result.failure_probability_interval()
        assert lower <= result.failure_probability <= upper
        assert upper <= 1.0
        # The floor is the largest single record, not the raw sum.
        assert lower == pytest.approx(0.9)


class TestRecordsCacheRoundTrip:
    def test_method_survives_the_records_layer(self, tmp_path):
        sdft = _static_sdft(_overshoot())
        opts = AnalysisOptions(
            horizon=HORIZON, static_engine="mcs", cache_dir=str(tmp_path)
        )
        first = analyze(sdft, opts)
        second = analyze(sdft, opts)
        assert any(
            "full-result hit" in e.message for e in second.health.events
        )
        assert second.method == first.method == "mcs-min-cut-ub"
        assert second.failure_probability == first.failure_probability

    def test_bdd_stats_survive_the_records_layer(self, tmp_path):
        sdft = _static_sdft(_cooling())
        opts = AnalysisOptions(horizon=HORIZON, cache_dir=str(tmp_path))
        first = analyze(sdft, opts)
        second = analyze(sdft, opts)
        assert second.method == "bdd-exact"
        assert second.failure_probability == first.failure_probability
        assert second.bdd_nodes == first.bdd_nodes
        assert second.bdd_ordering == first.bdd_ordering
