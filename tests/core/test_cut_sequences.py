"""Tests of the cut-completion (minimal cut sequence) attribution."""

import pytest

from repro.core.cut_sequences import AT_TIME_ZERO, completion_distribution
from repro.core.quantify import quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable


class TestStaticCutsets:
    def test_completed_at_time_zero(self, cooling_sdft):
        completion = completion_distribution(
            cooling_sdft, frozenset({"a", "c"}), 24.0
        )
        assert completion.by_event == {AT_TIME_ZERO: pytest.approx(9e-6)}
        assert completion.most_likely_completer() == AT_TIME_ZERO


class TestDynamicCutsets:
    def test_attributions_sum_to_quantified_probability(self, cooling_sdft):
        for cutset in ({"b", "d"}, {"a", "d"}, {"b", "c"}):
            completion = completion_distribution(
                cooling_sdft, frozenset(cutset), 24.0
            )
            exact = quantify_cutset(cooling_sdft, frozenset(cutset), 24.0)
            assert completion.total == pytest.approx(
                exact.probability, rel=1e-6
            ), cutset

    def test_triggered_spare_strikes_last(self, cooling_sdft):
        """In {b, d} the spare pump d can only start degrading after b
        has failed, so d completes the cut almost always."""
        completion = completion_distribution(
            cooling_sdft, frozenset({"b", "d"}), 24.0
        )
        assert completion.most_likely_completer() == "d"
        assert completion.by_event["d"] > 10 * completion.by_event.get("b", 0.0)

    def test_single_dynamic_event_is_sole_completer(self, cooling_sdft):
        completion = completion_distribution(
            cooling_sdft, frozenset({"a", "d"}), 24.0
        )
        assert set(completion.by_event) == {"d"}

    def test_symmetric_events_complete_equally(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("x", repairable(0.02, 0.3))
        b.dynamic_event("y", repairable(0.02, 0.3))
        b.and_("top", "x", "y")
        sdft = b.build("top")
        completion = completion_distribution(sdft, frozenset({"x", "y"}), 24.0)
        assert completion.by_event["x"] == pytest.approx(
            completion.by_event["y"], rel=1e-9
        )

    def test_faster_failing_event_completes_less_often(self):
        """The component that fails fast tends to fail *first*; the slow
        one then completes the cut."""
        b = SdFaultTreeBuilder()
        b.dynamic_event("fast", repairable(0.2, 0.05))
        b.dynamic_event("slow", repairable(0.01, 0.05))
        b.and_("top", "fast", "slow")
        sdft = b.build("top")
        completion = completion_distribution(
            sdft, frozenset({"fast", "slow"}), 24.0
        )
        assert completion.by_event["slow"] > completion.by_event["fast"]


class TestDegenerateCases:
    def test_trivially_zero_cutset(self):
        b = SdFaultTreeBuilder()
        b.static_event("s", 0.01)
        b.static_event("u", 0.02)
        b.dynamic_event("t", triggered_repairable(0.05, 0.2))
        b.or_("src", "s")
        b.and_("helper", "t", "u")
        b.or_("top", "helper", "u")
        b.trigger("src", "t")
        sdft = b.build("top")
        completion = completion_distribution(sdft, frozenset({"t", "u"}), 24.0)
        assert completion.by_event == {}
        assert completion.most_likely_completer() is None
