"""Tests of the expected-downtime (unavailability) analysis."""

import pytest

from repro.core.analyzer import AnalysisOptions
from repro.core.downtime import (
    analyze_expected_downtime,
    exact_expected_downtime,
)
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable


class TestAgainstExact:
    def test_over_approximates_exact(self, cooling_sdft):
        result = analyze_expected_downtime(
            cooling_sdft, AnalysisOptions(horizon=24.0)
        )
        exact = exact_expected_downtime(cooling_sdft, 24.0)
        assert result.expected_downtime_hours >= exact - 1e-12
        assert result.expected_downtime_hours <= 1.2 * exact + 1e-12

    def test_unavailability_fraction(self, cooling_sdft):
        result = analyze_expected_downtime(
            cooling_sdft, AnalysisOptions(horizon=24.0)
        )
        assert 0.0 <= result.unavailability <= 1.0
        assert result.unavailability == pytest.approx(
            result.expected_downtime_hours / 24.0
        )

    def test_per_cutset_contributions_sum(self, cooling_sdft):
        result = analyze_expected_downtime(
            cooling_sdft, AnalysisOptions(horizon=24.0)
        )
        assert sum(result.per_cutset.values()) == pytest.approx(
            result.expected_downtime_hours
        )
        assert frozenset({"e"}) in result.per_cutset

    def test_static_cutset_contribution(self, cooling_sdft):
        """A static cutset is down the whole mission when it fails at 0."""
        result = analyze_expected_downtime(
            cooling_sdft, AnalysisOptions(horizon=24.0)
        )
        assert result.per_cutset[frozenset({"e"})] == pytest.approx(3e-6 * 24.0)
        assert result.per_cutset[frozenset({"a", "c"})] == pytest.approx(9e-6 * 24.0)


class TestRepairEffect:
    def _pair(self, repair_rate: float):
        b = SdFaultTreeBuilder()
        b.dynamic_event("x", repairable(0.05, repair_rate))
        b.dynamic_event("y", repairable(0.05, repair_rate))
        b.and_("top", "x", "y")
        return b.build("top")

    def test_faster_repair_less_downtime(self):
        options = AnalysisOptions(horizon=100.0)
        slow = analyze_expected_downtime(self._pair(0.01), options)
        fast = analyze_expected_downtime(self._pair(2.0), options)
        assert fast.expected_downtime_hours < slow.expected_downtime_hours

    def test_downtime_below_reach_probability_times_horizon(self):
        """Downtime can never exceed (probability of ever failing) x t;
        with fast repair it is far below — the quantity reachability
        analysis cannot see."""
        from repro.core.analyzer import analyze

        sdft = self._pair(2.0)
        options = AnalysisOptions(horizon=100.0)
        downtime = analyze_expected_downtime(sdft, options)
        reach = analyze(sdft, options)
        assert (
            downtime.expected_downtime_hours
            < reach.failure_probability * 100.0
        )

    def test_zero_horizon(self, cooling_sdft):
        result = analyze_expected_downtime(
            cooling_sdft, AnalysisOptions(horizon=0.0)
        )
        assert result.expected_downtime_hours == 0.0
        assert result.unavailability == 0.0
