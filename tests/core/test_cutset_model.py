"""Tests of the FT_C construction (Section V-C)."""

import pytest

from repro.core.cutset_model import TOP_GATE, build_cutset_model
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import AnalysisError
from repro.ft.tree import GateType


class TestStaticCutsets:
    def test_pure_static_cutset_has_no_model(self, cooling_sdft):
        model = build_cutset_model(cooling_sdft, frozenset({"a", "c"}))
        assert model.model is None
        assert model.static_factor == pytest.approx(9e-6)
        assert not model.is_dynamic

    def test_unknown_events_rejected(self, cooling_sdft):
        with pytest.raises(AnalysisError):
            build_cutset_model(cooling_sdft, frozenset({"ghost"}))


class TestStaticBranching:
    def test_trigger_within_cutset(self, cooling_sdft):
        """Cutset {b, d}: d's trigger (pump1) is failed by b; the model
        keeps both dynamic events with a trigger over b."""
        model = build_cutset_model(cooling_sdft, frozenset({"b", "d"}))
        sdft_c = model.model
        assert sdft_c is not None
        assert set(sdft_c.dynamic_events) == {"b", "d"}
        assert model.n_dynamic_in_cutset == 2
        assert model.n_added_dynamic == 0
        # The top gate requires both dynamic events simultaneously.
        top = sdft_c.gates[TOP_GATE]
        assert top.gate_type is GateType.AND
        assert set(top.children) == {"b", "d"}
        # d is triggered by a reconstructed gate over b.
        trigger_gate = sdft_c.trigger_of["d"]
        assert sdft_c.structure.events_under(trigger_gate) == {"b"}

    def test_trigger_satisfied_by_static_event(self, cooling_sdft):
        """Cutset {a, d}: a (static, assumed failed) already fails d's
        trigger, so d becomes always-on with the untriggered view."""
        model = build_cutset_model(cooling_sdft, frozenset({"a", "d"}))
        sdft_c = model.model
        assert sdft_c is not None
        assert model.always_on == {"d"}
        assert set(sdft_c.dynamic_events) == {"d"}
        assert not isinstance(sdft_c.chain_of("d"), TriggeredCtmc)
        assert sdft_c.trigger_of == {}
        assert model.static_factor == pytest.approx(3e-3)


class TestStaticJoins:
    def _joins_model(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("e", repairable(0.02, 0.5))
        b.dynamic_event("f", repairable(0.03, 0.5))
        b.dynamic_event("g", triggered_repairable(0.05, 0.2))
        b.static_event("s", 0.01)
        b.or_("trigger_sys", "e", "f")
        b.and_("top", "trigger_sys", "g", "s")
        b.trigger("trigger_sys", "g")
        return b.build("top")

    def test_sibling_dynamic_events_added(self):
        """Cutset {e, g, s}: static joins pulls f into the model even
        though it is not in the cutset (paper Example 11: f's failure
        and repair shape g's trigger timing)."""
        sdft = self._joins_model()
        model = build_cutset_model(sdft, frozenset({"e", "g", "s"}))
        sdft_c = model.model
        assert set(sdft_c.dynamic_events) == {"e", "f", "g"}
        assert model.n_dynamic_in_cutset == 2
        assert model.n_added_dynamic == 1
        # Top requires only the cutset's dynamic events.
        assert set(sdft_c.gates[TOP_GATE].children) == {"e", "g"}
        # The reconstructed trigger covers both e and f.
        trigger_gate = sdft_c.trigger_of["g"]
        assert sdft_c.structure.events_under(trigger_gate) == {"e", "f"}


class TestGeneralCase:
    def _general_model(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("p", repairable(0.02, 0.5))
        b.dynamic_event("q1", repairable(0.04, 0.5))
        b.dynamic_event("q2", repairable(0.03, 0.4))
        b.static_event("d", 0.15)
        b.dynamic_event("r", triggered_repairable(0.05, 0.2))
        b.or_("guard", "d", "q1", "q2")
        b.and_("trig_gate", "p", "guard")
        b.and_("aux", "trig_gate", "r")
        b.or_("top", "aux")
        b.trigger("trig_gate", "r")
        return b.build("top")

    def test_static_guards_added(self):
        """Cutset {p, q1, r}: the general case adds the static guard d
        (it can trigger r earlier) but not q2's... actually q2 is also a
        relevant dynamic event of the guard OR."""
        sdft = self._general_model()
        model = build_cutset_model(sdft, frozenset({"p", "q1", "r"}))
        sdft_c = model.model
        assert "d" in sdft_c.static_events
        assert "q2" in sdft_c.dynamic_events

    def test_statics_in_cutset_excluded_from_model(self):
        """Cutset {d, p, r}: d is assumed failed (multiplied outside),
        so the trigger reduces to p alone and q1/q2 are irrelevant."""
        sdft = self._general_model()
        model = build_cutset_model(sdft, frozenset({"d", "p", "r"}))
        sdft_c = model.model
        assert set(sdft_c.dynamic_events) == {"p", "r"}
        assert sdft_c.static_events == {}
        assert model.static_factor == pytest.approx(0.15)


class TestChainedTriggers:
    def _chained(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("a1", repairable(0.03, 0.3))
        b.dynamic_event("a2", repairable(0.02, 0.3))
        b.dynamic_event("b1", triggered_repairable(0.04, 0.3))
        b.dynamic_event("b2", triggered_repairable(0.05, 0.3))
        b.dynamic_event("c1", triggered_repairable(0.06, 0.3))
        b.or_("sysA", "a1", "a2")
        b.or_("sysB", "b1", "b2")
        b.and_("top", "sysA", "sysB", "c1")
        b.trigger("sysA", "b1", "b2")
        b.trigger("sysB", "c1")
        return b.build("top")

    def test_uniform_triggering_reuses_gates(self):
        """Cutset {a1, b1, c1}: modelling c1's trigger adds b2 (static
        joins); b2's trigger gate sysA is already modelled for b1 and is
        reused, so no general-case blow-up occurs."""
        sdft = self._chained()
        model = build_cutset_model(sdft, frozenset({"a1", "b1", "c1"}))
        sdft_c = model.model
        assert set(sdft_c.dynamic_events) == {"a1", "a2", "b1", "b2", "c1"}
        assert model.n_added_dynamic == 2
        # b1 and b2 share one reconstructed trigger gate.
        assert sdft_c.trigger_of["b1"] == sdft_c.trigger_of["b2"]

    def test_model_is_quantifiable(self):
        """The constructed FT_C must itself be a valid SD fault tree
        whose product chain builds without errors."""
        from repro.ctmc.product import build_product

        sdft = self._chained()
        model = build_cutset_model(sdft, frozenset({"a1", "b1", "c1"}))
        product = build_product(model.model)
        assert product.n_states > 1


class TestTriviallyZero:
    def test_untriggerable_cutset(self):
        """A cutset whose triggered event's gate cannot fail in the
        counted runs quantifies to zero."""
        b = SdFaultTreeBuilder()
        b.static_event("s", 0.01)
        b.static_event("u", 0.02)
        b.dynamic_event("t", triggered_repairable(0.05, 0.2))
        b.or_("src", "s")
        b.or_("top", "helper", "u")
        b.and_("helper", "t", "u")
        b.trigger("src", "t")
        sdft = b.build("top")
        # Force the degenerate case directly: cutset {t, u} without s.
        model = build_cutset_model(sdft, frozenset({"t", "u"}))
        assert model.trivially_zero
        assert model.model is None
