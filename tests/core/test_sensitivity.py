"""Tests of the rate-sensitivity analysis."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.sensitivity import rate_sensitivity
from repro.errors import UnknownNodeError


@pytest.fixture
def analyzed(cooling_sdft):
    return cooling_sdft, analyze(cooling_sdft, AnalysisOptions(horizon=24.0))


class TestRateSensitivity:
    def test_higher_failure_rate_raises_probability(self, analyzed):
        sdft, result = analyzed
        sensitivity = rate_sensitivity(sdft, result, "b", relative_step=0.10)
        # b's chain carries both failure and repair rates; failure
        # dominates the first-passage behaviour, so scaling both up
        # still increases the failure probability.
        assert sensitivity.perturbed_probability > sensitivity.base_probability
        assert sensitivity.elasticity > 0.0

    def test_base_matches_analysis(self, analyzed):
        sdft, result = analyzed
        sensitivity = rate_sensitivity(sdft, result, "d")
        assert sensitivity.base_probability == pytest.approx(
            result.failure_probability
        )

    def test_perturbation_consistency_with_full_reanalysis(self, analyzed):
        """Re-quantifying only the affected cutsets equals analysing the
        perturbed model from scratch."""
        from repro.core.sensitivity import _with_scaled_rates

        sdft, result = analyzed
        sensitivity = rate_sensitivity(sdft, result, "b", relative_step=0.25)
        full = analyze(
            _with_scaled_rates(sdft, "b", 1.25), AnalysisOptions(horizon=24.0)
        )
        assert sensitivity.perturbed_probability == pytest.approx(
            full.failure_probability, rel=1e-9
        )

    def test_small_step_linearises(self, analyzed):
        """Elasticity stabilises as the step shrinks (the derivative)."""
        sdft, result = analyzed
        coarse = rate_sensitivity(sdft, result, "b", relative_step=0.5)
        fine = rate_sensitivity(sdft, result, "b", relative_step=0.01)
        finer = rate_sensitivity(sdft, result, "b", relative_step=0.005)
        assert abs(fine.elasticity - finer.elasticity) < abs(
            coarse.elasticity - finer.elasticity
        ) + 1e-9

    def test_static_event_rejected(self, analyzed):
        sdft, result = analyzed
        with pytest.raises(UnknownNodeError):
            rate_sensitivity(sdft, result, "a")

    def test_zero_elasticity_when_probability_zero(self, cooling_sdft):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=24.0, cutoff=1e-2)
        )
        assert result.failure_probability == 0.0
        sensitivity = rate_sensitivity(cooling_sdft, result, "b")
        assert sensitivity.elasticity == 0.0
