"""Tests of the trigger-gate classification (Section V-A)."""

from repro.core.classify import (
    TriggerClass,
    classification_report,
    classify_trigger_gate,
    has_static_branching,
    has_static_joins,
    has_uniform_triggering,
)
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable


def _builder():
    b = SdFaultTreeBuilder()
    b.static_event("s1", 0.01).static_event("s2", 0.01)
    b.dynamic_event("d1", repairable(0.01, 0.1))
    b.dynamic_event("d2", repairable(0.01, 0.1))
    b.dynamic_event("t1", triggered_repairable(0.01, 0.1))
    return b


class TestStaticBranching:
    def test_or_with_one_dynamic_child(self):
        b = _builder()
        b.or_("trig", "s1", "d1")
        b.and_("top", "trig", "t1", "s2", "d2")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_static_branching(sdft, "trig")
        assert classify_trigger_gate(sdft, "trig") is TriggerClass.STATIC_BRANCHING

    def test_or_with_two_dynamic_children_fails(self):
        b = _builder()
        b.or_("trig", "d1", "d2")
        b.and_("top", "trig", "t1", "s1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert not has_static_branching(sdft, "trig")

    def test_and_over_dynamics_is_fine(self):
        """Static branching allows ANDs over dynamic events (Figure 1,
        left column, case 3)."""
        b = _builder()
        b.and_("trig", "d1", "d2")
        b.or_("top", "t1", "trig")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_static_branching(sdft, "trig")

    def test_nested_or_checked(self):
        b = _builder()
        b.or_("inner", "d1", "d2")
        b.and_("trig", "s1", "inner")
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert not has_static_branching(sdft, "trig")


class TestStaticJoins:
    def test_or_over_dynamics(self):
        b = _builder()
        b.or_("trig", "d1", "d2")
        b.and_("top", "trig", "t1", "s1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_static_joins(sdft, "trig")
        assert classify_trigger_gate(sdft, "trig") is TriggerClass.STATIC_JOINS

    def test_and_with_dynamic_child_fails(self):
        b = _builder()
        b.and_("inner", "d1", "s1")
        b.or_("trig", "inner", "d2")
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert not has_static_joins(sdft, "trig")

    def test_and_over_statics_is_fine(self):
        b = _builder()
        b.and_("inner", "s1", "s2")
        b.or_("trig", "inner", "d1", "d2")
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_static_joins(sdft, "trig")


class TestUniformTriggering:
    def test_all_triggered_by_common_gate(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("a1", repairable(0.01, 0.1))
        b.dynamic_event("b1", triggered_repairable(0.01, 0.1))
        b.dynamic_event("b2", triggered_repairable(0.01, 0.1))
        b.dynamic_event("c1", triggered_repairable(0.01, 0.1))
        b.or_("sysA", "a1")
        b.or_("sysB", "b1", "b2")
        b.and_("top", "sysA", "sysB", "c1")
        b.trigger("sysA", "b1", "b2")
        b.trigger("sysB", "c1")
        sdft = b.build("top")
        assert has_uniform_triggering(sdft, "sysB")
        assert (
            classify_trigger_gate(sdft, "sysB")
            is TriggerClass.STATIC_JOINS_UNIFORM
        )
        # sysA's single dynamic event a1 is untriggered: not uniform.
        assert not has_uniform_triggering(sdft, "sysA")

    def test_no_dynamics_is_vacuously_uniform(self):
        b = _builder()
        b.or_("trig", "s1", "s2")
        b.or_("top", "trig", "t1", "d1", "d2")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_uniform_triggering(sdft, "trig")


class TestGeneralCase:
    def test_mixed_structure(self):
        b = _builder()
        b.or_("guard", "s1", "d1", "d2")  # two dynamic children: no branching
        b.and_("trig", "guard", "d2")  # wait: d2 under AND too
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert classify_trigger_gate(sdft, "trig") is TriggerClass.GENERAL

    def test_voting_gate_with_dynamics_is_general(self):
        b = _builder()
        b.atleast("trig", 2, "s1", "d1", "d2")
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert classify_trigger_gate(sdft, "trig") is TriggerClass.GENERAL

    def test_degenerate_voting_gates_reduce(self):
        b = _builder()
        b.atleast("trig", 1, "s1", "d1")  # acts as OR: one dynamic child
        b.or_("top", "trig", "t1", "d2")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert (
            classify_trigger_gate(sdft, "trig") is TriggerClass.STATIC_BRANCHING
        )

    def test_atleast_n_of_n_degenerates_to_and(self):
        """k == n is an AND: dynamic children are fine for branching."""
        b = _builder()
        b.atleast("trig", 2, "d1", "d2")
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_static_branching(sdft, "trig")
        assert (
            classify_trigger_gate(sdft, "trig") is TriggerClass.STATIC_BRANCHING
        )

    def test_atleast_one_of_n_degenerates_to_or_for_joins(self):
        """k == 1 is an OR: dynamic children make it a static join."""
        b = _builder()
        b.atleast("trig", 1, "d1", "d2")
        b.and_("top", "trig", "t1", "s1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert not has_static_branching(sdft, "trig")
        assert has_static_joins(sdft, "trig")

    def test_proper_voting_over_statics_is_not_general(self):
        """A 2-of-3 over static events constrains nothing dynamic, so
        neither structural condition is violated."""
        b = _builder()
        b.static_event("s3", 0.01)
        b.atleast("vote", 2, "s1", "s2", "s3")
        b.or_("trig", "vote", "d1")
        b.and_("top", "trig", "t1", "d2")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert has_static_branching(sdft, "trig")
        assert (
            classify_trigger_gate(sdft, "trig") is TriggerClass.STATIC_BRANCHING
        )

    def test_proper_voting_with_dynamic_child_breaks_both_conditions(self):
        """1 < k < n with any dynamic child routes to the general case
        conservatively — no OR/AND reading of the gate is sound."""
        b = _builder()
        b.atleast("vote", 2, "s1", "s2", "d1")
        b.or_("trig", "vote", "d2")
        b.or_("top", "trig", "t1")
        b.trigger("trig", "t1")
        sdft = b.build("top")
        assert not has_static_branching(sdft, "trig")
        assert not has_static_joins(sdft, "trig")
        assert classify_trigger_gate(sdft, "trig") is TriggerClass.GENERAL


class TestReport:
    def test_report_contents(self, cooling_sdft):
        report = classification_report(cooling_sdft)
        assert report.by_gate == {"pump1": TriggerClass.STATIC_BRANCHING}
        assert report.all_efficient
        assert not report.any_general
        assert report.count(TriggerClass.STATIC_BRANCHING) == 1
