"""Tests of the lumped quantification option."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.quantify import quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable


def _symmetric_triple():
    """Three identical repairable components under an AND: the product
    chain has 2^3 = 8 states, the lumped counter only 4."""
    b = SdFaultTreeBuilder("triple")
    names = []
    for i in range(3):
        name = f"d{i}"
        b.dynamic_event(name, repairable(0.02, 0.3))
        names.append(name)
    b.and_("top", *names)
    return b.build("top"), frozenset(names)


class TestLumpedQuantification:
    def test_same_probability(self):
        sdft, cutset = _symmetric_triple()
        plain = quantify_cutset(sdft, cutset, 24.0)
        lumped = quantify_cutset(sdft, cutset, 24.0, lump_chains=True)
        assert lumped.probability == pytest.approx(plain.probability, rel=1e-9)

    def test_fewer_states_solved(self):
        sdft, cutset = _symmetric_triple()
        plain = quantify_cutset(sdft, cutset, 24.0)
        lumped = quantify_cutset(sdft, cutset, 24.0, lump_chains=True)
        assert plain.chain_states == 8
        assert lumped.chain_states < plain.chain_states

    def test_analyzer_option_matches(self, cooling_sdft):
        base = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        lumped = analyze(
            cooling_sdft, AnalysisOptions(horizon=24.0, lump_chains=True)
        )
        assert lumped.failure_probability == pytest.approx(
            base.failure_probability, rel=1e-9
        )

    def test_shared_chains_lump_identically(self):
        """Identical components share one chain object; the symmetric
        product of n copies lumps to n+1 counter states."""
        sdft, cutset = _symmetric_triple()
        lumped = quantify_cutset(sdft, cutset, 24.0, lump_chains=True)
        # Absorbing at the all-failed state: w-count 0..3 minus merged
        # absorbing states; at most 4 blocks.
        assert lumped.chain_states <= 4
