"""Tests of the SD fault-tree model and its structural invariants."""

import pytest

from repro.core.sdft import SdFaultTree, SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.errors import (
    CyclicModelError,
    DuplicateNameError,
    ModelError,
    TriggerError,
    UnknownNodeError,
)
from repro.ft.tree import BasicEvent, Gate, GateType


class TestBuilder:
    def test_running_example(self, cooling_sdft):
        assert cooling_sdft.is_static("a")
        assert cooling_sdft.is_dynamic("b")
        assert cooling_sdft.trigger_of == {"d": "pump1"}
        assert cooling_sdft.triggers == {"pump1": ("d",)}
        assert cooling_sdft.all_event_names == {"a", "b", "c", "d", "e"}

    def test_duplicate_names_rejected(self):
        b = SdFaultTreeBuilder()
        b.static_event("x", 0.1)
        with pytest.raises(DuplicateNameError):
            b.dynamic_event("x", repairable(0.1, 0.5))
        with pytest.raises(DuplicateNameError):
            b.or_("x", "x")

    def test_trigger_requires_events(self):
        b = SdFaultTreeBuilder()
        with pytest.raises(ModelError):
            b.trigger("gate")

    def test_has_node(self):
        b = SdFaultTreeBuilder().static_event("s", 0.1)
        b.dynamic_event("d", repairable(0.1, 0.5))
        b.or_("g", "s", "d")
        assert b.has_node("s") and b.has_node("d") and b.has_node("g")
        assert not b.has_node("ghost")


class TestTriggerValidation:
    def _base(self):
        b = SdFaultTreeBuilder()
        b.static_event("s", 0.1)
        b.dynamic_event("d", triggered_repairable(0.1, 0.5))
        b.or_("g1", "s")
        b.or_("top", "g1", "d")
        return b

    def test_valid_trigger(self):
        b = self._base()
        b.trigger("g1", "d")
        sdft = b.build("top")
        assert sdft.triggered_events() == {"d"}

    def test_double_trigger_rejected(self):
        b = self._base()
        b.or_("g2", "s", "d")
        b.trigger("g1", "d").trigger("g2", "d")
        with pytest.raises(TriggerError):
            b.build("top")

    def test_trigger_source_must_be_gate(self):
        b = self._base()
        b.trigger("s", "d")
        with pytest.raises(UnknownNodeError):
            b.build("top")

    def test_trigger_target_must_be_dynamic(self):
        b = self._base()
        b.trigger("g1", "s")
        with pytest.raises(TriggerError):
            b.build("top")

    def test_triggered_event_needs_triggered_chain(self):
        b = SdFaultTreeBuilder()
        b.static_event("s", 0.1)
        b.dynamic_event("d", repairable(0.1, 0.5))  # no on/off structure
        b.or_("g1", "s")
        b.or_("top", "g1", "d")
        b.trigger("g1", "d")
        with pytest.raises(TriggerError):
            b.build("top")

    def test_triggerable_chain_needs_a_trigger(self):
        b = SdFaultTreeBuilder()
        b.static_event("s", 0.1)
        b.dynamic_event("d", triggered_repairable(0.1, 0.5))
        b.or_("top", "s", "d")
        with pytest.raises(TriggerError):
            b.build("top")

    def test_cyclic_triggering_rejected(self):
        """Two events triggering each other through their gates is the
        deadlock the paper's acyclicity requirement excludes."""
        b = SdFaultTreeBuilder()
        b.dynamic_event("d1", triggered_repairable(0.1, 0.5))
        b.dynamic_event("d2", triggered_repairable(0.1, 0.5))
        b.or_("g1", "d1")
        b.or_("g2", "d2")
        b.and_("top", "g1", "g2")
        b.trigger("g1", "d2").trigger("g2", "d1")
        with pytest.raises(CyclicModelError):
            b.build("top")

    def test_self_triggering_rejected(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("d", triggered_repairable(0.1, 0.5))
        b.or_("g", "d")
        b.or_("top", "g")
        b.trigger("g", "d")
        with pytest.raises(CyclicModelError):
            b.build("top")

    def test_trigger_chain_is_acyclic_and_valid(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("d1", repairable(0.1, 0.5))
        b.dynamic_event("d2", triggered_repairable(0.1, 0.5))
        b.dynamic_event("d3", triggered_repairable(0.1, 0.5))
        b.or_("g1", "d1").or_("g2", "d2")
        b.and_("top", "g1", "g2", "d3")
        b.trigger("g1", "d2").trigger("g2", "d3")
        sdft = b.build("top")
        assert sdft.trigger_of == {"d2": "g1", "d3": "g2"}


class TestQueries:
    def test_dynamic_and_static_under(self, cooling_sdft):
        assert cooling_sdft.dynamic_under("pump1") == {"b"}
        assert cooling_sdft.static_under("pump1") == {"a"}
        assert cooling_sdft.dynamic_under("cooling") == {"b", "d"}
        assert cooling_sdft.static_under("cooling") == {"a", "c", "e"}

    def test_dynamic_under_node_for_events(self, cooling_sdft):
        assert cooling_sdft.dynamic_under_node("b")
        assert not cooling_sdft.dynamic_under_node("a")
        assert cooling_sdft.dynamic_under_node("pumps")

    def test_chain_of(self, cooling_sdft):
        assert cooling_sdft.chain_of("b").n_states == 2
        with pytest.raises(UnknownNodeError):
            cooling_sdft.chain_of("a")

    def test_structure_is_static_view(self, cooling_sdft):
        structure = cooling_sdft.structure
        assert structure.probability("b") == 0.0  # placeholder only
        assert structure.probability("a") == 3e-3


class TestDirectConstruction:
    def test_constructor_matches_builder(self, cooling_sdft):
        rebuilt = SdFaultTree(
            "cooling",
            [BasicEvent("a", 3e-3), BasicEvent("c", 3e-3), BasicEvent("e", 3e-6)],
            list(cooling_sdft.dynamic_events.values()),
            [
                Gate("pump1", GateType.OR, ("a", "b")),
                Gate("pump2", GateType.OR, ("c", "d")),
                Gate("pumps", GateType.AND, ("pump1", "pump2")),
                Gate("cooling", GateType.OR, ("pumps", "e")),
            ],
            {"pump1": ["d"]},
        )
        assert rebuilt.trigger_of == cooling_sdft.trigger_of
