"""The ``AnalysisOptions(simplify=...)`` preprocessing stage."""

from __future__ import annotations

import pytest

from repro.core.analyzer import AnalysisOptions, analyze


@pytest.fixture
def fat_sdft():
    """An SD model with wrapper gates the verified diet removes."""
    from repro.core.sdft import SdFaultTreeBuilder
    from repro.ctmc.builders import repairable, triggered_repairable

    b = SdFaultTreeBuilder("fat-sd")
    b.static_event("a", 3e-3).static_event("c", 3e-3)
    b.dynamic_event("b", repairable(0.001, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("wrap", "pumps")
    b.or_("top", "wrap")
    b.trigger("pump1", "d")
    return b.build("top")


class TestSimplifyOption:
    def test_answer_is_unchanged(self, fat_sdft):
        plain = analyze(fat_sdft, AnalysisOptions())
        dieted = analyze(fat_sdft, AnalysisOptions(simplify=True))
        assert dieted.failure_probability == pytest.approx(
            plain.failure_probability, rel=1e-12
        )

    def test_health_notes_the_diet(self, fat_sdft):
        result = analyze(fat_sdft, AnalysisOptions(simplify=True))
        notes = [e.message for e in result.health.events if e.stage == "simplify"]
        assert any("verified diet" in note for note in notes)

    def test_sem_metrics_are_collected(self, fat_sdft):
        result = analyze(
            fat_sdft, AnalysisOptions(simplify=True, collect_metrics=True)
        )
        counters = result.metrics["counters"]
        assert counters.get("sem.rewrites", 0) > 0
        assert counters.get("sem.removed_gates", 0) >= 1  # the wrapper
        assert counters.get("sem.verified_scopes", 0) >= 1

    def test_default_is_off(self, fat_sdft):
        result = analyze(fat_sdft, AnalysisOptions(collect_metrics=True))
        assert "sem.rewrites" not in result.metrics["counters"]

    def test_composes_with_preflight_lint(self, fat_sdft):
        result = analyze(fat_sdft, AnalysisOptions(simplify=True, lint=True))
        assert result.lint is not None
        # Lint ran on the original model: the wrapper gates are visible
        # to it (SD103 single-parent chain) even though the analysis
        # itself never saw them.
        assert result.failure_probability > 0.0
