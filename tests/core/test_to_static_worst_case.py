"""Tests of the static translation FT-bar and worst-case probabilities."""

import math

import pytest

from repro.core.sdft import SdFaultTreeBuilder
from repro.core.to_static import to_static
from repro.core.worst_case import worst_case_probabilities, worst_case_probability
from repro.ctmc.builders import (
    erlang_failure,
    repairable,
    triggered_erlang,
    triggered_repairable,
)
from repro.ft.mocus import MocusOptions, mocus
from repro.ft.tree import GateType


class TestWorstCase:
    def test_untriggered_is_first_passage(self):
        chain = repairable(0.001, 0.05)
        p = worst_case_probability(chain, 24.0)
        assert p == pytest.approx(1 - math.exp(-0.001 * 24), abs=1e-10)

    def test_triggered_uses_on_view(self):
        """Triggered at time 0 and never untriggered: identical to the
        plain repairable chain, despite the passive states."""
        triggered = triggered_repairable(0.001, 0.05, passive_failure_rate=0.0)
        plain = repairable(0.001, 0.05)
        assert worst_case_probability(triggered, 24.0) == pytest.approx(
            worst_case_probability(plain, 24.0), abs=1e-10
        )

    def test_worst_case_dominates_passive_start(self):
        """Active-from-0 exposure is at least the failure probability
        of any later triggering (passive rates are lower)."""
        from repro.ctmc.transient import failure_probability

        chain = triggered_erlang(1, 1e-3, 0.05)
        worst = worst_case_probability(chain, 24.0)
        passive_only = failure_probability(chain, 24.0)  # never triggered
        assert worst >= passive_only

    def test_shared_chains_computed_once(self, cooling_sdft):
        values = worst_case_probabilities(cooling_sdft, 24.0)
        assert set(values) == {"b", "d"}
        assert values["b"] == pytest.approx(values["d"], abs=1e-12)


class TestTranslationStructure:
    def test_trigger_becomes_and_gate(self, cooling_sdft):
        translation = to_static(cooling_sdft, 24.0)
        tree = translation.tree
        assert "d#triggered" in tree.gates
        gate = tree.gates["d#triggered"]
        assert gate.gate_type is GateType.AND
        assert set(gate.children) == {"d", "pump1"}
        # pump2 now references the AND gate instead of d directly.
        assert "d#triggered" in tree.gates["pump2"].children
        assert "d" not in tree.gates["pump2"].children

    def test_dynamic_events_become_static(self, cooling_sdft):
        translation = to_static(cooling_sdft, 24.0)
        tree = translation.tree
        assert tree.probability("b") == pytest.approx(
            1 - math.exp(-0.001 * 24), abs=1e-10
        )
        assert translation.worst_case["b"] == tree.probability("b")

    def test_untriggered_events_not_redirected(self, cooling_sdft):
        tree = to_static(cooling_sdft, 24.0).tree
        assert "b" in tree.gates["pump1"].children


class TestMcsEquivalence:
    def test_running_example_mcs(self, cooling_sdft):
        """FT-bar has the same minimal cutsets as the static Example 1
        tree (paper Section V-B1)."""
        tree = to_static(cooling_sdft, 24.0).tree
        result = mocus(tree, MocusOptions(cutoff=0.0))
        assert set(result.cutsets.cutsets) == {
            frozenset({"e"}),
            frozenset({"a", "c"}),
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        }

    def test_trigger_forces_companion_events(self):
        """A triggered event can only appear in cutsets together with a
        failure of its triggering gate."""
        b = SdFaultTreeBuilder()
        b.dynamic_event("head", erlang_failure(1, 0.01, 0.1))
        b.dynamic_event("tail", triggered_erlang(1, 0.01, 0.1))
        b.or_("src", "head")
        b.and_("top", "head", "tail")
        b.trigger("src", "tail")
        tree = to_static(b.build("top"), 24.0).tree
        cutsets = mocus(tree, MocusOptions(cutoff=0.0)).cutsets
        for cutset in cutsets:
            if "tail" in cutset:
                assert "head" in cutset

    def test_cutoff_conservative_wrt_dynamic_probability(self, cooling_sdft):
        """Inequality (1): the product of worst-case probabilities of a
        partial cutset bounds the true reach probability of any cutset
        extending it, so quantified values never exceed the static bound
        per cutset."""
        from repro.core.analyzer import AnalysisOptions, analyze

        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        tree = to_static(cooling_sdft, 24.0).tree
        probabilities = {n: e.probability for n, e in tree.events.items()}
        from repro.ft.cutsets import cutset_probability

        for record in result.records:
            static_value = cutset_probability(record.cutset, probabilities)
            assert record.probability <= static_value + 1e-12
