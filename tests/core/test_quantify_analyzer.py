"""Tests of per-cutset quantification and the end-to-end analyzer.

The load-bearing correctness property throughout: on small models the
per-cutset rare-event sum must (a) over-approximate the exact
product-chain probability and (b) be close to it when probabilities are
small — the two halves of the paper's accuracy claim.
"""

import math

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_exact, analyze_static
from repro.core.quantify import QuantificationCache, quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.ctmc.transient import failure_probability


class TestQuantifyCutset:
    def test_static_cutset_is_product(self, cooling_sdft):
        record = quantify_cutset(cooling_sdft, frozenset({"a", "c"}), 24.0)
        assert record.probability == pytest.approx(9e-6)
        assert not record.is_dynamic
        assert record.chain_states == 0

    def test_always_on_cutset(self, cooling_sdft):
        """{a, d}: p = p(a) * first-passage of d's chain."""
        record = quantify_cutset(cooling_sdft, frozenset({"a", "d"}), 24.0)
        expected = 3e-3 * (1 - math.exp(-0.001 * 24))
        assert record.probability == pytest.approx(expected, rel=1e-9)

    def test_untriggered_dynamic_with_static(self, cooling_sdft):
        """{b, c}: p = p(c) * first-passage of b's chain."""
        record = quantify_cutset(cooling_sdft, frozenset({"b", "c"}), 24.0)
        expected = 3e-3 * (1 - math.exp(-0.001 * 24))
        assert record.probability == pytest.approx(expected, rel=1e-9)

    def test_triggered_pair_less_than_independent(self, cooling_sdft):
        """{b, d}: d only degrades while b is failed, so the joint
        failure probability is far below the independent product."""
        record = quantify_cutset(cooling_sdft, frozenset({"b", "d"}), 24.0)
        independent = (1 - math.exp(-0.001 * 24)) ** 2
        assert 0.0 < record.probability < independent

    def test_cache_hits_on_identical_shapes(self, cooling_sdft):
        cache = QuantificationCache()
        first = quantify_cutset(cooling_sdft, frozenset({"b", "d"}), 24.0, cache=cache)
        second = quantify_cutset(cooling_sdft, frozenset({"b", "d"}), 24.0, cache=cache)
        assert not first.cache_hit and second.cache_hit
        assert first.probability == pytest.approx(second.probability)
        assert cache.hits == 1 and cache.misses == 1

    def test_cache_distinguishes_horizons(self, cooling_sdft):
        cache = QuantificationCache()
        quantify_cutset(cooling_sdft, frozenset({"b", "d"}), 24.0, cache=cache)
        record = quantify_cutset(
            cooling_sdft, frozenset({"b", "d"}), 48.0, cache=cache
        )
        assert not record.cache_hit


class TestAnalyzeRunningExample:
    def test_over_approximates_exact(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        exact = analyze_exact(cooling_sdft, 24.0)
        assert result.failure_probability >= exact - 1e-12
        assert result.failure_probability <= 1.1 * exact

    def test_static_bound_dominates(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        assert result.static_bound >= result.failure_probability
        assert analyze_static(cooling_sdft) == pytest.approx(result.static_bound)

    def test_record_bookkeeping(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        assert result.n_cutsets == 5
        assert result.n_dynamic_cutsets == 3
        assert result.classification.by_gate  # pump1 classified
        assert result.timings.total_seconds > 0.0

    def test_cutoff_drops_quantified_cutsets(self, cooling_sdft):
        # A cutoff above every quantified value yields zero.
        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0, cutoff=1e-2))
        assert result.failure_probability == 0.0

    def test_longer_horizon_increases_probability(self, cooling_sdft):
        p24 = analyze(cooling_sdft, AnalysisOptions(horizon=24.0)).failure_probability
        p96 = analyze(cooling_sdft, AnalysisOptions(horizon=96.0)).failure_probability
        assert p96 > p24


class TestStaticCutoffOverrides:
    def test_overrides_restore_cut_cutsets(self, cooling_sdft):
        """With a cutoff that would drop the dynamic cutsets under their
        worst-case probabilities, the paper's static-cutoff override
        keeps them in the list (and they still quantify dynamically)."""
        # Worst-case p(b) = p(d) ~ 0.0237; {b,d} static value ~ 5.6e-4.
        # A cutoff of 1e-3 drops every cutset.
        options = AnalysisOptions(horizon=24.0, cutoff=1e-3)
        plain = analyze(cooling_sdft, options)
        assert plain.n_cutsets == 0
        # Pretend the legacy static study had p=0.05 for both events.
        overridden = analyze(
            cooling_sdft,
            AnalysisOptions(
                horizon=24.0,
                cutoff=1e-3,
                mocus_probability_overrides={"b": 0.05, "d": 0.05},
            ),
        )
        assert overridden.n_cutsets >= 1
        assert any(r.is_dynamic for r in overridden.records)

    def test_overrides_do_not_change_quantification(self, cooling_sdft):
        base = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        overridden = analyze(
            cooling_sdft,
            AnalysisOptions(
                horizon=24.0,
                mocus_probability_overrides={"b": 0.5, "d": 0.5},
            ),
        )
        # Same cutsets survive (everything is far above the cutoff
        # either way), and each quantified value is identical.
        base_map = {r.cutset: r.probability for r in base.records}
        over_map = {r.cutset: r.probability for r in overridden.records}
        assert base_map == over_map


class TestTriggerClassAccuracy:
    """Each trigger class' quantification vs the exact product chain."""

    def _check(self, sdft, tolerance=1.5):
        result = analyze(sdft, AnalysisOptions(horizon=24.0))
        exact = analyze_exact(sdft, 24.0)
        assert result.failure_probability >= exact - 1e-12
        assert result.failure_probability <= tolerance * exact
        return result

    def test_static_joins(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("e", repairable(0.02, 0.5))
        b.dynamic_event("f", repairable(0.03, 0.5))
        b.dynamic_event("g", triggered_repairable(0.05, 0.2))
        b.static_event("s", 0.01)
        b.or_("trigger_sys", "e", "f")
        b.and_("top", "trigger_sys", "g", "s")
        b.trigger("trigger_sys", "g")
        self._check(b.build("top"))

    def test_general_case(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("p", repairable(0.02, 0.5))
        b.dynamic_event("q1", repairable(0.04, 0.5))
        b.dynamic_event("q2", repairable(0.03, 0.4))
        b.static_event("d", 0.15)
        b.dynamic_event("r", triggered_repairable(0.05, 0.2))
        b.or_("guard", "d", "q1", "q2")
        b.and_("trig_gate", "p", "guard")
        b.and_("aux", "trig_gate", "r")
        b.or_("top", "aux")
        b.trigger("trig_gate", "r")
        result = self._check(b.build("top"))
        assert result.classification.any_general

    def test_chained_uniform_triggering(self):
        b = SdFaultTreeBuilder()
        b.dynamic_event("a1", repairable(0.03, 0.3))
        b.dynamic_event("a2", repairable(0.02, 0.3))
        b.dynamic_event("b1", triggered_repairable(0.04, 0.3))
        b.dynamic_event("b2", triggered_repairable(0.05, 0.3))
        b.dynamic_event("c1", triggered_repairable(0.06, 0.3))
        b.or_("sysA", "a1", "a2")
        b.or_("sysB", "b1", "b2")
        b.and_("top", "sysA", "sysB", "c1")
        b.trigger("sysA", "b1", "b2")
        b.trigger("sysB", "c1")
        self._check(b.build("top"))


class TestTimingRealism:
    def test_trigger_reduces_failure_probability(self):
        """A spare that is only exposed after the primary fails must be
        less likely to fail than one running from the start — the core
        realism claim of the paper's introduction."""
        def build(triggered: bool):
            b = SdFaultTreeBuilder()
            b.dynamic_event("primary", repairable(0.01, 0.2))
            if triggered:
                b.dynamic_event("spare", triggered_repairable(0.01, 0.2))
            else:
                b.dynamic_event("spare", repairable(0.01, 0.2))
            b.or_("src", "primary")
            b.and_("top", "primary", "spare")
            if triggered:
                b.trigger("src", "spare")
            return b.build("top")

        with_trigger = analyze(build(True), AnalysisOptions(horizon=24.0))
        without = analyze(build(False), AnalysisOptions(horizon=24.0))
        assert with_trigger.failure_probability < without.failure_probability

    def test_faster_repair_reduces_failure_probability(self):
        def build(repair_rate: float):
            b = SdFaultTreeBuilder()
            b.dynamic_event("x", repairable(0.05, repair_rate))
            b.dynamic_event("y", repairable(0.05, repair_rate))
            b.and_("top", "x", "y")
            return b.build("top")

        slow = analyze(build(0.01), AnalysisOptions(horizon=48.0))
        fast = analyze(build(1.0), AnalysisOptions(horizon=48.0))
        assert fast.failure_probability < slow.failure_probability
