"""Tests of the analysis result containers."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze


@pytest.fixture
def result(cooling_sdft):
    return analyze(cooling_sdft, AnalysisOptions(horizon=24.0))


class TestAnalysisResult:
    def test_histogram_counts_dynamic_cutsets(self, result):
        histogram = result.dynamic_event_histogram()
        assert sum(histogram.values()) == result.n_dynamic_cutsets
        # {a,d} and {b,c} have one dynamic event; {b,d} has two.
        assert histogram == {1: 2, 2: 1}

    def test_mean_dynamic_events(self, result):
        mean_total, mean_added = result.mean_dynamic_events()
        assert mean_total == pytest.approx(4 / 3)
        assert mean_added == 0.0

    def test_top_contributors_sorted(self, result):
        top = result.top_contributors(3)
        assert len(top) == 3
        values = [r.probability for r in top]
        assert values == sorted(values, reverse=True)

    def test_summary_mentions_key_numbers(self, result):
        text = result.summary()
        assert "failure probability" in text
        assert "cutsets: 5 total" in text
        assert "3 dynamic" in text

    def test_timings_sum(self, result):
        timings = result.timings
        assert timings.total_seconds == pytest.approx(
            timings.translation_seconds
            + timings.mcs_generation_seconds
            + timings.quantification_seconds
        )

    def test_mean_dynamic_events_empty_when_all_static(self):
        from repro.core.sdft import SdFaultTreeBuilder

        b = SdFaultTreeBuilder()
        b.static_event("a", 0.1).static_event("b", 0.1)
        b.and_("top", "a", "b")
        static_result = analyze(b.build("top"))
        assert static_result.mean_dynamic_events() == (0.0, 0.0)
        assert static_result.dynamic_event_histogram() == {}
        assert static_result.n_dynamic_cutsets == 0
