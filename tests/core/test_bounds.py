"""Tests of the interval fallback for oversized cutset chains."""

import math

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_exact
from repro.core.bounds import ProbabilityInterval, bound_cutset
from repro.core.cutset_model import build_cutset_model
from repro.core.quantify import quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.errors import AnalysisError


class TestProbabilityInterval:
    def test_width_and_midpoint(self):
        interval = ProbabilityInterval(0.2, 0.6)
        assert interval.width == pytest.approx(0.4)
        assert interval.midpoint() == pytest.approx(0.4)


class TestBoundCutset:
    def test_static_cutset_is_tight(self, cooling_sdft):
        model = build_cutset_model(cooling_sdft, frozenset({"a", "c"}))
        interval = bound_cutset(model, 24.0)
        assert interval.lower == interval.upper == pytest.approx(9e-6)

    def test_untriggered_dynamic_is_tight(self, cooling_sdft):
        """Untriggered events are genuinely independent: both ends agree
        and equal the exact quantification."""
        model = build_cutset_model(cooling_sdft, frozenset({"b", "c"}))
        interval = bound_cutset(model, 24.0)
        exact = quantify_cutset(cooling_sdft, frozenset({"b", "c"}), 24.0)
        assert interval.width == pytest.approx(0.0, abs=1e-15)
        assert interval.upper == pytest.approx(exact.probability, rel=1e-9)

    def test_triggered_cutset_brackets_exact(self, cooling_sdft):
        model = build_cutset_model(cooling_sdft, frozenset({"b", "d"}))
        interval = bound_cutset(model, 24.0)
        exact = quantify_cutset(cooling_sdft, frozenset({"b", "d"}), 24.0)
        assert interval.lower <= exact.probability <= interval.upper
        # The upper end is the independent worst-case product.
        p_single = 1 - math.exp(-0.001 * 24)
        assert interval.upper == pytest.approx(p_single**2, rel=1e-9)
        assert interval.lower == 0.0


class TestOversizeFallback:
    def _wide_model(self):
        """Enough coupled dynamic events that the chain exceeds a tiny cap."""
        b = SdFaultTreeBuilder("wide")
        names = []
        for i in range(4):
            name = f"d{i}"
            b.dynamic_event(name, repairable(0.01, 0.1))
            names.append(name)
        b.dynamic_event("t", triggered_repairable(0.02, 0.1))
        b.or_("src", *names)
        b.and_("top", *names, "t")
        b.trigger("src", "t")
        return b.build("top"), frozenset([*names, "t"])

    def test_raise_mode_propagates(self):
        sdft, cutset = self._wide_model()
        with pytest.raises(AnalysisError):
            quantify_cutset(sdft, cutset, 24.0, max_chain_states=4)

    def test_bounds_mode_returns_interval(self):
        sdft, cutset = self._wide_model()
        record = quantify_cutset(
            sdft, cutset, 24.0, max_chain_states=4, on_oversize="bounds"
        )
        assert record.bounded
        assert record.lower_bound is not None
        assert record.lower_bound <= record.probability
        # The conservative value brackets the exact quantification.
        exact = quantify_cutset(sdft, cutset, 24.0)
        assert record.lower_bound <= exact.probability <= record.probability

    def test_unknown_mode_rejected(self, cooling_sdft):
        with pytest.raises(ValueError):
            quantify_cutset(
                cooling_sdft, frozenset({"b", "d"}), 24.0, on_oversize="guess"
            )

    def test_analyzer_interval(self, cooling_sdft):
        """With a tiny chain budget the analyzer still completes and
        reports a bracketing interval."""
        options = AnalysisOptions(
            horizon=24.0, max_chain_states=3, on_oversize="bounds"
        )
        result = analyze(cooling_sdft, options)
        assert result.n_bounded_cutsets >= 1
        lower, upper = result.failure_probability_interval()
        exact = analyze_exact(cooling_sdft, 24.0)
        assert lower <= exact <= upper + 1e-12
        assert upper == pytest.approx(result.failure_probability)

    def test_analyzer_interval_degenerate_without_bounds(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        lower, upper = result.failure_probability_interval()
        assert lower == pytest.approx(upper)
        assert result.n_bounded_cutsets == 0


class TestDynamicFussellVesely:
    def test_fractions_sum_sensibly(self, cooling_sdft):
        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        fv = result.fussell_vesely()
        assert set(fv) <= cooling_sdft.all_event_names
        for value in fv.values():
            assert 0.0 <= value <= 1.0
        # a appears in {a,c} and {a,d}; its FV must be positive.
        assert fv["a"] > 0.0

    def test_timing_lowers_the_dynamic_events_share(self, cooling_sdft):
        """Time-aware FV of the in-operation failures is lower than
        their static FV: the {b, d} cutset needs both pumps failed
        *simultaneously*, which repairs and trigger timing suppress."""
        from repro.core.to_static import to_static
        from repro.ft.importance import importance
        from repro.ft.mocus import mocus

        result = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        dynamic_fv = result.fussell_vesely()
        static_cutsets = mocus(to_static(cooling_sdft, 24.0).tree).cutsets
        static_fv = importance(static_cutsets)
        assert dynamic_fv["d"] < static_fv["d"].fussell_vesely
        assert dynamic_fv["b"] < static_fv["b"].fussell_vesely

    def test_empty_when_probability_zero(self):
        b = SdFaultTreeBuilder()
        b.static_event("z", 0.0)
        b.or_("top", "z")
        result = analyze(b.build("top"))
        assert result.fussell_vesely() == {}
