"""Test suite of the repro package.

The directory is a package so that shared helpers
(:mod:`tests.strategies`) import identically under both ``pytest``
invocation styles (``pytest tests/`` and ``python -m pytest``).
"""
