"""CLI smoke tests: full subcommand flows in a temp dir, exit codes and
artifacts checked — including the observability flags and the ``trace``
subcommand over a real traced analysis.
"""

import json

import pytest

from repro.cli import main
from repro.models.formats import save_model
from repro.obs.export import TRACE_SCHEMA, validate_trace_file


@pytest.fixture
def sd_model_file(cooling_sdft, tmp_path):
    path = tmp_path / "cooling.json"
    save_model(cooling_sdft, path)
    return str(path)


class TestAnalyzeSmoke:
    def test_plain_analyze(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "metrics:" not in out  # observability off by default

    def test_analyze_with_metrics(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "mocus:" in out
        assert "dedup:" in out

    def test_analyze_with_trace_writes_valid_jsonl(
        self, sd_model_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        assert main(["analyze", sd_model_file, "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        counts = validate_trace_file(trace)
        assert counts["spans"] >= 4
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["attrs"]["model"] == "cooling-sd"
        assert header["attrs"]["jobs"] == "1"

    def test_traced_parallel_analyze(self, sd_model_file, tmp_path, capsys):
        trace = tmp_path / "run2.jsonl"
        assert main(
            ["analyze", sd_model_file, "--jobs", "2",
             "--trace", str(trace), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "pool:" in out  # pool metrics rendered for parallel runs
        validate_trace_file(trace)

    def test_missing_model_is_an_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDemoSmoke:
    def test_demo_save_then_analyze_then_trace(self, tmp_path, capsys):
        """The full documented flow: build, save, analyse with a trace,
        summarise the trace."""
        model = tmp_path / "bwr.json"
        trace = tmp_path / "bwr.jsonl"
        assert main(["demo-bwr", "--save", str(model)]) == 0
        assert model.exists()
        assert main(
            ["analyze", str(model), "--cutoff", "1e-10",
             "--trace", str(trace), "--metrics"]
        ) == 0
        counts = validate_trace_file(trace)
        assert counts["spans"] >= 4
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "analyze" in report
        assert "quantify" in report

    def test_demo_inline_analysis_with_metrics(self, capsys):
        assert main(["demo-bwr", "--cutoff", "1e-8", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "metrics:" in out


class TestLintSmoke:
    def test_clean_model_exits_zero(self, sd_model_file, capsys):
        assert main(["lint", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "no diagnostics" in out

    def test_json_format(self, sd_model_file, capsys):
        assert main(["lint", sd_model_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "cooling-sd"
        assert payload["counts"] == {"error": 0, "warning": 0, "info": 0}

    def test_bundled_bwr_demo_lints_clean(self, tmp_path, capsys):
        model = tmp_path / "bwr.json"
        assert main(["demo-bwr", "--save", str(model)]) == 0
        capsys.readouterr()
        assert main(["lint", str(model)]) == 0

    @pytest.fixture
    def warned_model_file(self, tmp_path):
        """A model with a warning (SD201: probability 0.5) but no error."""
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("warned")
        b.event("a", 0.5).event("b", 1e-3)
        b.or_("top", "a", "b")
        path = tmp_path / "warned.json"
        save_model(b.build("top"), path)
        return str(path)

    def test_fail_on_threshold_controls_exit_code(self, warned_model_file, capsys):
        assert main(["lint", warned_model_file]) == 0  # default: --fail-on error
        assert main(["lint", warned_model_file, "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "SD201" in out

    def test_error_model_exits_one(self, tmp_path, capsys):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("vacuous")
        b.event("a", 0.0).event("b", 1e-3)
        b.and_("top", "a", "b")
        path = tmp_path / "vacuous.json"
        save_model(b.build("top"), path)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "SD107" in out

    def test_disable_suppresses_codes(self, warned_model_file, capsys):
        assert main(
            ["lint", warned_model_file, "--fail-on", "warning",
             "--disable", "SD201"]
        ) == 0

    def test_severity_override_promotes_to_error(self, warned_model_file, capsys):
        assert main(
            ["lint", warned_model_file, "--severity", "SD201=error"]
        ) == 1
        assert "error" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SD101" in out and "SD401" in out

    def test_usage_errors_exit_two(self, sd_model_file, capsys):
        assert main(["lint"]) == 2
        assert main(["lint", sd_model_file, "--severity", "SD201"]) == 2
        assert main(["lint", sd_model_file, "--severity", "SD201=fatal"]) == 2

    def test_analyze_lint_gate_rejects_error_model(self, tmp_path, capsys):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder("vacuous")
        b.event("a", 0.0).event("b", 1e-3)
        b.and_("top", "a", "b")
        path = tmp_path / "vacuous.json"
        save_model(b.build("top"), path)
        assert main(["analyze", str(path), "--lint"]) == 1
        err = capsys.readouterr().err
        assert "SD107" in err
        # Without the gate the same model analyzes (to zero).
        assert main(["analyze", str(path)]) == 0


class TestVerifySmoke:
    def test_analyze_with_verify_cheap(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--verify", "cheap"]) == 0
        assert "failure probability" in capsys.readouterr().out

    def test_analyze_with_verify_full(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--verify", "full"]) == 0
        assert "failure probability" in capsys.readouterr().out

    def test_verify_modes_agree_with_off(self, sd_model_file, capsys):
        outputs = []
        for mode in ("off", "cheap", "full"):
            assert main(["analyze", sd_model_file, "--verify", mode]) == 0
            summary = capsys.readouterr().out
            outputs.append(
                next(
                    line
                    for line in summary.splitlines()
                    if "failure probability" in line
                )
            )
        assert outputs[0] == outputs[1] == outputs[2]


class TestChaosSmoke:
    def test_campaign_on_model_file(self, sd_model_file, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        assert main(
            ["chaos", sd_model_file, "--runs", "5", "--seed", "7",
             "--report", str(report)]
        ) == 0
        out = capsys.readouterr().out
        assert "5 runs" in out
        assert "no silent corruption" in out
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["seed"] == 7
        assert len(payload["outcomes"]) == 5

    def test_campaign_defaults_to_the_bwr_demo(self, capsys):
        assert main(["chaos", "--runs", "2", "--cutoff", "1e-8"]) == 0
        out = capsys.readouterr().out
        assert "bwr" in out

    def test_full_verify_campaign(self, sd_model_file, capsys):
        assert main(
            ["chaos", sd_model_file, "--runs", "3", "--verify", "full"]
        ) == 0
        assert "verify full" in capsys.readouterr().out


class TestServeSmoke:
    def test_stdio_round_trip(self, sd_model_file, tmp_path, monkeypatch, capsys):
        import io

        model = json.loads(open(sd_model_file).read())
        requests = [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "load", "model": model},
            {"id": 3, "op": "stats"},
            {"id": 4, "op": "shutdown"},
        ]
        stdin = io.StringIO("".join(json.dumps(r) + "\n" for r in requests))
        monkeypatch.setattr("sys.stdin", stdin)
        assert main(["serve", "--no-cache", "--journal", str(tmp_path / "j")]) == 0
        responses = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        by_id = {r["id"]: r for r in responses}
        assert all(by_id[i]["ok"] for i in (1, 2, 3, 4))
        assert by_id[2]["session"]

    def test_service_chaos_catalog(self, sd_model_file, tmp_path, capsys):
        report = tmp_path / "service.json"
        assert (
            main(
                [
                    "chaos",
                    sd_model_file,
                    "--catalog",
                    "service",
                    "--report",
                    str(report),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no silent corruption" in out
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["runs"] == 4


class TestImportanceSmoke:
    def test_importance_table(self, sd_model_file, capsys):
        assert main(["importance", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "FV" in out and "RRW" in out


class TestTraceSubcommand:
    def test_renders_cost_table_and_metrics(self, sd_model_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["analyze", sd_model_file, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        report = capsys.readouterr().out
        assert TRACE_SCHEMA in report
        assert "span" in report and "share" in report
        for phase in ("analyze", "translate", "mocus", "quantify"):
            assert phase in report
        assert "mocus.partials_expanded" in report

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
