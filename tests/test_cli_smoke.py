"""CLI smoke tests: full subcommand flows in a temp dir, exit codes and
artifacts checked — including the observability flags and the ``trace``
subcommand over a real traced analysis.
"""

import json

import pytest

from repro.cli import main
from repro.models.formats import save_model
from repro.obs.export import TRACE_SCHEMA, validate_trace_file


@pytest.fixture
def sd_model_file(cooling_sdft, tmp_path):
    path = tmp_path / "cooling.json"
    save_model(cooling_sdft, path)
    return str(path)


class TestAnalyzeSmoke:
    def test_plain_analyze(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "metrics:" not in out  # observability off by default

    def test_analyze_with_metrics(self, sd_model_file, capsys):
        assert main(["analyze", sd_model_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "mocus:" in out
        assert "dedup:" in out

    def test_analyze_with_trace_writes_valid_jsonl(
        self, sd_model_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        assert main(["analyze", sd_model_file, "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        counts = validate_trace_file(trace)
        assert counts["spans"] >= 4
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["attrs"]["model"] == "cooling-sd"
        assert header["attrs"]["jobs"] == "1"

    def test_traced_parallel_analyze(self, sd_model_file, tmp_path, capsys):
        trace = tmp_path / "run2.jsonl"
        assert main(
            ["analyze", sd_model_file, "--jobs", "2",
             "--trace", str(trace), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "pool:" in out  # pool metrics rendered for parallel runs
        validate_trace_file(trace)

    def test_missing_model_is_an_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDemoSmoke:
    def test_demo_save_then_analyze_then_trace(self, tmp_path, capsys):
        """The full documented flow: build, save, analyse with a trace,
        summarise the trace."""
        model = tmp_path / "bwr.json"
        trace = tmp_path / "bwr.jsonl"
        assert main(["demo-bwr", "--save", str(model)]) == 0
        assert model.exists()
        assert main(
            ["analyze", str(model), "--cutoff", "1e-10",
             "--trace", str(trace), "--metrics"]
        ) == 0
        counts = validate_trace_file(trace)
        assert counts["spans"] >= 4
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "analyze" in report
        assert "quantify" in report

    def test_demo_inline_analysis_with_metrics(self, capsys):
        assert main(["demo-bwr", "--cutoff", "1e-8", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "failure probability" in out
        assert "metrics:" in out


class TestImportanceSmoke:
    def test_importance_table(self, sd_model_file, capsys):
        assert main(["importance", sd_model_file]) == 0
        out = capsys.readouterr().out
        assert "FV" in out and "RRW" in out


class TestTraceSubcommand:
    def test_renders_cost_table_and_metrics(self, sd_model_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["analyze", sd_model_file, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        report = capsys.readouterr().out
        assert TRACE_SCHEMA in report
        assert "span" in report and "share" in report
        for phase in ("analyze", "translate", "mocus", "quantify"):
            assert phase in report
        assert "mocus.partials_expanded" in report

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
