"""Tests of the synthetic PSA generator."""

from repro.ft.mocus import MocusOptions, mocus
from repro.ft.validate import tree_stats, validate
from repro.models.synthetic import SyntheticConfig, build_synthetic

SMALL = SyntheticConfig(
    seed=7,
    n_initiators=2,
    n_frontline=3,
    n_support=2,
    components_per_train=3,
    sequences_per_initiator=2,
    probability_range=(1e-4, 1e-2),
)


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = build_synthetic(SMALL)
        b = build_synthetic(SMALL)
        assert sorted(a.events) == sorted(b.events)
        assert all(
            a.events[n].probability == b.events[n].probability for n in a.events
        )
        assert sorted(a.gates) == sorted(b.gates)

    def test_different_seed_different_probabilities(self):
        a = build_synthetic(SMALL)
        from dataclasses import replace

        b = build_synthetic(replace(SMALL, seed=8))
        assert any(
            a.events[n].probability != b.events[n].probability
            for n in a.events
            if n in b.events
        )


class TestStructure:
    def test_valid_and_fully_reachable(self):
        tree = build_synthetic(SMALL)
        report = validate(tree)
        assert not report.warnings, report.warnings

    def test_redundant_trains_are_symmetric(self):
        tree = build_synthetic(SMALL)
        for c in range(SMALL.components_per_train):
            a = tree.events[f"FL-0-A-C{c}"].probability
            b = tree.events[f"FL-0-B-C{c}"].probability
            assert a == b

    def test_support_chaining(self):
        tree = build_synthetic(SMALL)
        # SUP-0 trains reference SUP-1 trains (chain depth >= 1).
        children = tree.gates["SUP-0-TRAIN-A"].children
        assert "SUP-1-TRAIN-A" in children

    def test_scaled_config_grows(self):
        big = SMALL.scaled(2.0)
        assert big.n_frontline == 6
        assert big.components_per_train == 6
        small_stats = tree_stats(build_synthetic(SMALL))
        big_stats = tree_stats(build_synthetic(big))
        assert big_stats.n_events > small_stats.n_events

    def test_ccf_events_present(self):
        tree = build_synthetic(SMALL)
        assert "FL-0-CCF" in tree.events

    def test_no_ccf_option(self):
        from dataclasses import replace

        tree = build_synthetic(replace(SMALL, include_ccf=False))
        assert "FL-0-CCF" not in tree.events


class TestAnalysability:
    def test_mocus_terminates_with_cutoff(self):
        tree = build_synthetic(SMALL)
        result = mocus(tree, MocusOptions(cutoff=1e-12))
        assert len(result.cutsets) > 10
        assert result.cutsets.rare_event() > 0.0

    def test_ccf_cutsets_are_small(self):
        """CCF events short-circuit the train redundancy: some cutset
        consists of an initiating event plus CCF events only."""
        tree = build_synthetic(SMALL)
        cutsets = mocus(tree, MocusOptions(cutoff=1e-12)).cutsets
        assert any(
            len(c) <= 1 + SMALL.systems_per_sequence
            and sum(1 for name in c if "CCF" in name) >= 1
            for c in cutsets
        )
