"""Round-trip tests of the JSON model format."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.errors import ModelError
from repro.models.formats import (
    load_model,
    save_model,
    sdft_from_dict,
    sdft_to_dict,
    tree_from_dict,
    tree_to_dict,
)


class TestStaticRoundTrip:
    def test_dict_round_trip(self, cooling_tree):
        data = tree_to_dict(cooling_tree)
        rebuilt = tree_from_dict(data)
        assert sorted(rebuilt.events) == sorted(cooling_tree.events)
        assert all(
            rebuilt.events[n].probability == cooling_tree.events[n].probability
            for n in rebuilt.events
        )
        assert rebuilt.top == cooling_tree.top
        for name, gate in cooling_tree.gates.items():
            assert rebuilt.gates[name].children == gate.children
            assert rebuilt.gates[name].gate_type == gate.gate_type

    def test_file_round_trip(self, cooling_tree, tmp_path):
        path = tmp_path / "model.json"
        save_model(cooling_tree, path)
        loaded = load_model(path)
        assert sorted(loaded.events) == sorted(cooling_tree.events)

    def test_atleast_gate_preserved(self, tmp_path):
        from repro.ft.builder import FaultTreeBuilder

        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        tree = b.atleast("top", 2, "a", "b", "c").build("top")
        path = tmp_path / "vote.json"
        save_model(tree, path)
        loaded = load_model(path)
        assert loaded.gates["top"].k == 2


class TestSdRoundTrip:
    def test_dict_round_trip(self, cooling_sdft):
        rebuilt = sdft_from_dict(sdft_to_dict(cooling_sdft))
        assert sorted(rebuilt.static_events) == sorted(cooling_sdft.static_events)
        assert sorted(rebuilt.dynamic_events) == sorted(cooling_sdft.dynamic_events)
        assert rebuilt.trigger_of == cooling_sdft.trigger_of

    def test_chains_preserved(self, cooling_sdft):
        rebuilt = sdft_from_dict(sdft_to_dict(cooling_sdft))
        original_chain = cooling_sdft.chain_of("d")
        loaded_chain = rebuilt.chain_of("d")
        assert set(loaded_chain.states) == set(original_chain.states)
        assert loaded_chain.rates == original_chain.rates
        assert loaded_chain.failed == original_chain.failed
        # Triggered structure survives.
        assert loaded_chain.switch_on == original_chain.switch_on

    def test_analysis_equivalence(self, cooling_sdft, tmp_path):
        """The loaded model analyses to the same probability."""
        path = tmp_path / "sd.json"
        save_model(cooling_sdft, path)
        loaded = load_model(path)
        original = analyze(cooling_sdft, AnalysisOptions(horizon=24.0))
        reloaded = analyze(loaded, AnalysisOptions(horizon=24.0))
        assert reloaded.failure_probability == pytest.approx(
            original.failure_probability, rel=1e-12
        )

    def test_tuple_states_round_trip(self, cooling_sdft):
        data = sdft_to_dict(cooling_sdft)
        rebuilt = sdft_from_dict(data)
        assert ("on", 0) in rebuilt.chain_of("d").index


class TestErrors:
    def test_wrong_kind_rejected(self):
        with pytest.raises(ModelError):
            tree_from_dict({"kind": "sd-fault-tree"})
        with pytest.raises(ModelError):
            sdft_from_dict({"kind": "fault-tree"})

    def test_unknown_file_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery"}')
        with pytest.raises(ModelError):
            load_model(path)

    def test_unserialisable_object(self, tmp_path):
        with pytest.raises(ModelError):
            save_model(object(), tmp_path / "x.json")
