"""Tests of the fictive BWR study (Section VI-A model)."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_static
from repro.core.classify import TriggerClass, classification_report
from repro.errors import ModelError
from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

FAST = AnalysisOptions(horizon=24.0, cutoff=1e-10)  # keep tests quick


class TestModelShape:
    def test_static_variant_has_no_dynamics(self):
        sdft = build_bwr(BwrConfig(dynamic=False))
        assert not sdft.dynamic_events
        assert not sdft.triggers

    def test_size_matches_paper_scale(self):
        sdft = build_bwr(BwrConfig(triggers=TRIGGER_STAGES))
        n_events = len(sdft.all_event_names)
        assert 60 <= n_events <= 90  # paper: 68 basic events
        assert len(sdft.dynamic_events) == 11  # 10 train pumps + F&B pump

    def test_trigger_stages(self):
        sdft = build_bwr(BwrConfig(triggers=TRIGGER_STAGES))
        assert len(sdft.trigger_of) == 6
        assert sdft.trigger_of["FB-PUMP-FTR"] == "RHR"
        assert sdft.trigger_of["ECC-B-PUMP-FTR"] == "ECC-TRAIN-A"

    def test_partial_stages(self):
        sdft = build_bwr(BwrConfig(triggers=("FEEDBLEED", "RHR")))
        assert set(sdft.trigger_of) == {"FB-PUMP-FTR", "RHR-B-PUMP-FTR"}

    def test_unknown_stage_rejected(self):
        with pytest.raises(ModelError):
            BwrConfig(triggers=("REACTOR-SCRAM",))

    def test_classification_is_efficient(self):
        """The BWR triggering structure must avoid the general case
        (the paper designed VI-A around static joins / branching)."""
        sdft = build_bwr(BwrConfig(triggers=TRIGGER_STAGES))
        report = classification_report(sdft)
        assert not report.any_general
        assert TriggerClass.STATIC_BRANCHING in report.by_gate.values()
        assert (
            TriggerClass.STATIC_JOINS in report.by_gate.values()
            or TriggerClass.STATIC_JOINS_UNIFORM in report.by_gate.values()
        )


class TestFrequencies:
    def test_dynamic_below_static_baseline(self):
        static_frequency = analyze_static(build_bwr(BwrConfig(dynamic=False)), FAST)
        dynamic = analyze(build_bwr(BwrConfig(repair_rate=0.05)), FAST)
        assert dynamic.failure_probability < static_frequency

    def test_triggers_reduce_frequency(self):
        no_triggers = analyze(build_bwr(BwrConfig(repair_rate=0.05)), FAST)
        all_triggers = analyze(
            build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES)), FAST
        )
        assert (
            all_triggers.failure_probability < no_triggers.failure_probability
        )

    def test_faster_repair_reduces_frequency(self):
        slow = analyze(build_bwr(BwrConfig(repair_rate=1e-3)), FAST)
        fast = analyze(build_bwr(BwrConfig(repair_rate=5e-2)), FAST)
        assert fast.failure_probability < slow.failure_probability

    def test_no_repair_close_to_static(self):
        """Without repairs or triggers, every dynamic event's worst case
        equals its exponential failure probability: the dynamic result
        collapses onto the static one."""
        static_frequency = analyze_static(build_bwr(BwrConfig(dynamic=False)), FAST)
        no_repair = analyze(build_bwr(BwrConfig(repair_rate=None)), FAST)
        # Tolerance: cutsets sitting exactly at the cutoff may be kept by
        # one aggregation and dropped by the other (quantified values are
        # a hair below their static counterparts).
        assert no_repair.failure_probability == pytest.approx(
            static_frequency, rel=1e-4
        )
