"""Tests of the importance-driven dynamization (Section VI-B method)."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_static
from repro.errors import ModelError
from repro.ft.mocus import MocusOptions, mocus
from repro.models.enrich import dynamize, plan_dynamization
from repro.models.synthetic import SyntheticConfig, build_synthetic

OPTIONS = AnalysisOptions(horizon=24.0, cutoff=1e-12)


@pytest.fixture(scope="module")
def static_model():
    config = SyntheticConfig(
        seed=7,
        n_initiators=2,
        n_frontline=3,
        n_support=2,
        components_per_train=3,
        sequences_per_initiator=2,
        probability_range=(1e-4, 1e-2),
    )
    tree = build_synthetic(config)
    cutsets = mocus(tree, MocusOptions(cutoff=1e-12)).cutsets
    return tree, cutsets


class TestPlan:
    def test_fraction_selects_count(self, static_model):
        tree, cutsets = static_model
        ranked_count = len(cutsets.events_involved())
        plan = plan_dynamization(cutsets, 0.5, 0.0)
        assert len(plan.dynamic_events) == int(ranked_count * 0.5)
        assert plan.n_triggered == 0

    def test_small_positive_fraction_picks_at_least_one(self, static_model):
        _, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.001, 0.0)
        assert len(plan.dynamic_events) == 1

    def test_zero_fraction(self, static_model):
        _, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.0, 0.0)
        assert plan.dynamic_events == ()

    def test_chains_form_between_symmetric_trains(self, static_model):
        _, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.6, 0.3)
        assert plan.chains, "symmetric trains should yield equal-FV chains"
        for chain in plan.chains:
            assert len(chain) >= 2
            # Chained events differ only in the train letter.
            bases = {name.replace("-A-", "-X-").replace("-B-", "-X-") for name in chain}
            assert len(bases) == 1

    def test_trigger_budget_respected(self, static_model):
        _, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.8, 0.2)
        target = int(len(plan.dynamic_events) * 0.2)
        assert plan.n_triggered <= max(target, 1)

    def test_fraction_bounds(self, static_model):
        _, cutsets = static_model
        with pytest.raises(ModelError):
            plan_dynamization(cutsets, 1.5, 0.0)
        with pytest.raises(ModelError):
            plan_dynamization(cutsets, 0.5, -0.1)


class TestDynamize:
    def test_calibration_preserves_static_result(self, static_model):
        """The Erlang rates are chosen so the worst-case probability over
        the horizon equals the original static probability: the static
        re-analysis of the dynamized model reproduces the original."""
        tree, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.4, 0.0)
        sdft = dynamize(tree, plan, horizon=24.0)
        original = cutsets.rare_event()
        recomputed = analyze_static(sdft, OPTIONS)
        assert recomputed == pytest.approx(original, rel=1e-6)

    def test_dynamic_analysis_reduces_frequency(self, static_model):
        """Repairs make the dynamic result strictly better than static."""
        tree, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.4, 0.2)
        sdft = dynamize(tree, plan, horizon=24.0, repair_rate=0.1)
        result = analyze(sdft, OPTIONS)
        assert result.failure_probability < cutsets.rare_event()

    def test_more_dynamization_reduces_more(self, static_model):
        tree, cutsets = static_model
        values = []
        for fraction in (0.2, 0.8):
            plan = plan_dynamization(cutsets, fraction, 0.1)
            sdft = dynamize(tree, plan, horizon=24.0, repair_rate=0.1)
            values.append(analyze(sdft, OPTIONS).failure_probability)
        assert values[1] < values[0]

    def test_chain_structure(self, static_model):
        tree, cutsets = static_model
        plan = plan_dynamization(cutsets, 0.6, 0.3)
        sdft = dynamize(tree, plan, horizon=24.0)
        assert len(sdft.trigger_of) == plan.n_triggered
        for successor, source_gate in sdft.trigger_of.items():
            # Pass-through OR gate over the predecessor event.
            children = sdft.gates[source_gate].children
            assert len(children) == 1
            assert sdft.is_dynamic(children[0])

    def test_unknown_event_in_plan_rejected(self, static_model):
        tree, _ = static_model
        from repro.models.enrich import DynamizationPlan

        bad = DynamizationPlan(("ghost",), ())
        with pytest.raises(ModelError):
            dynamize(tree, bad, horizon=24.0)

    def test_extreme_probability_rejected(self):
        from repro.ft.builder import FaultTreeBuilder
        from repro.models.enrich import DynamizationPlan

        b = FaultTreeBuilder()
        b.event("certain", 1.0).event("x", 0.1)
        b.or_("top", "certain", "x")
        tree = b.build("top")
        plan = DynamizationPlan(("certain",), ())
        with pytest.raises(ModelError):
            dynamize(tree, plan, horizon=24.0)
