"""Tests of Open-PSA MEF import/export."""

import pytest

from repro.bdd.ft_bdd import exact_probability
from repro.errors import ModelError
from repro.ft.builder import FaultTreeBuilder
from repro.models.openpsa import (
    from_openpsa_xml,
    load_openpsa,
    save_openpsa,
    to_openpsa_xml,
)


class TestRoundTrip:
    def test_structure_survives(self, cooling_tree):
        rebuilt = from_openpsa_xml(to_openpsa_xml(cooling_tree))
        assert rebuilt.top == cooling_tree.top
        assert sorted(rebuilt.events) == sorted(cooling_tree.events)
        for name, gate in cooling_tree.gates.items():
            assert rebuilt.gates[name].gate_type == gate.gate_type
            assert set(rebuilt.gates[name].children) == set(gate.children)

    def test_probabilities_survive_exactly(self, cooling_tree):
        rebuilt = from_openpsa_xml(to_openpsa_xml(cooling_tree))
        for name, event in cooling_tree.events.items():
            assert rebuilt.events[name].probability == event.probability

    def test_quantitative_equivalence(self, cooling_tree):
        rebuilt = from_openpsa_xml(to_openpsa_xml(cooling_tree))
        assert exact_probability(rebuilt) == pytest.approx(
            exact_probability(cooling_tree), rel=1e-12
        )

    def test_atleast_gate(self):
        b = FaultTreeBuilder("vote")
        b.events([("a", 0.1), ("b", 0.2), ("c", 0.3)])
        tree = b.atleast("top", 2, "a", "b", "c").build("top")
        rebuilt = from_openpsa_xml(to_openpsa_xml(tree))
        assert rebuilt.gates["top"].k == 2

    def test_descriptions_survive(self):
        b = FaultTreeBuilder("labelled")
        b.event("a", 0.1, description="pump A fails")
        b.or_("top", "a", description="system fails")
        rebuilt = from_openpsa_xml(to_openpsa_xml(b.build("top")))
        assert rebuilt.events["a"].description == "pump A fails"
        assert rebuilt.gates["top"].description == "system fails"

    def test_file_round_trip(self, cooling_tree, tmp_path):
        path = tmp_path / "model.xml"
        save_openpsa(cooling_tree, path)
        assert path.read_text().startswith("<?xml")
        loaded = load_openpsa(path)
        assert loaded.top == cooling_tree.top


class TestTopInference:
    def test_explicit_top(self, cooling_tree):
        rebuilt = from_openpsa_xml(to_openpsa_xml(cooling_tree), top="pumps")
        assert rebuilt.top == "pumps"

    def test_ambiguous_top_rejected(self):
        text = """<?xml version='1.0'?>
        <opsa-mef>
          <define-fault-tree name="two-roots">
            <define-gate name="g1"><or><basic-event name="a"/></or></define-gate>
            <define-gate name="g2"><or><basic-event name="a"/></or></define-gate>
          </define-fault-tree>
          <model-data>
            <define-basic-event name="a"><float value="0.1"/></define-basic-event>
          </model-data>
        </opsa-mef>"""
        with pytest.raises(ModelError, match="cannot infer"):
            from_openpsa_xml(text)


class TestRejectedInput:
    def test_malformed_xml(self):
        with pytest.raises(ModelError, match="well-formed"):
            from_openpsa_xml("<opsa-mef>")

    def test_wrong_root(self):
        with pytest.raises(ModelError, match="root element"):
            from_openpsa_xml("<something/>")

    def test_undefined_reference(self):
        text = """<opsa-mef>
          <define-fault-tree name="t">
            <define-gate name="g"><or><basic-event name="ghost"/></or></define-gate>
          </define-fault-tree>
        </opsa-mef>"""
        with pytest.raises(ModelError, match="ghost"):
            from_openpsa_xml(text)

    def test_unsupported_formula(self):
        text = """<opsa-mef>
          <define-fault-tree name="t">
            <define-gate name="g"><not><basic-event name="a"/></not></define-gate>
          </define-fault-tree>
          <model-data>
            <define-basic-event name="a"><float value="0.1"/></define-basic-event>
          </model-data>
        </opsa-mef>"""
        with pytest.raises(ModelError, match="formula"):
            from_openpsa_xml(text)

    def test_non_constant_probability(self):
        text = """<opsa-mef>
          <define-fault-tree name="t">
            <define-gate name="g"><or><basic-event name="a"/></or></define-gate>
          </define-fault-tree>
          <model-data>
            <define-basic-event name="a"><exponential/></define-basic-event>
          </model-data>
        </opsa-mef>"""
        with pytest.raises(ModelError, match="float"):
            from_openpsa_xml(text)


class TestBiggerModels:
    def test_bwr_static_round_trip(self):
        from repro.core.to_static import to_static
        from repro.ft.mocus import mocus
        from repro.models.bwr import BwrConfig, build_bwr

        tree = to_static(build_bwr(BwrConfig(dynamic=False)), 24.0).tree
        rebuilt = from_openpsa_xml(to_openpsa_xml(tree), top=tree.top)
        original = mocus(tree).cutsets
        recovered = mocus(rebuilt).cutsets
        assert set(original.cutsets) == set(recovered.cutsets)
