"""Tests of the station-blackout study — full three-way validation."""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_exact, analyze_static
from repro.core.classify import TriggerClass, classification_report
from repro.ctmc.simulate import simulate_failure_probability
from repro.errors import ModelError
from repro.models.sbo import SboConfig, build_sbo, offsite_recovery_chain

OPTIONS = AnalysisOptions(horizon=24.0)


class TestModelShape:
    def test_sizes(self):
        sdft = build_sbo()
        assert len(sdft.static_events) == 3
        assert len(sdft.dynamic_events) == 5
        assert sdft.trigger_of == {"DC-DEPLETED": "SBO"}

    def test_offsite_starts_failed(self):
        chain = offsite_recovery_chain(0.25)
        assert chain.initial == {("on", 1): 1.0}
        assert ("on", 1) in chain.failed

    def test_blackout_trigger_is_static_branching(self):
        report = classification_report(build_sbo())
        assert report.by_gate == {"SBO": TriggerClass.STATIC_BRANCHING}
        assert report.all_efficient

    def test_config_validation(self):
        with pytest.raises(ModelError):
            SboConfig(battery_hours=0.0)
        with pytest.raises(ModelError):
            SboConfig(battery_phases=0)


class TestThreeWayValidation:
    def test_per_cutset_conservative_and_tight(self):
        sdft = build_sbo()
        result = analyze(sdft, OPTIONS)
        exact = analyze_exact(sdft, OPTIONS.horizon)
        assert result.failure_probability >= exact - 1e-12
        assert result.failure_probability <= 1.3 * exact

    def test_simulation_agrees(self):
        sdft = build_sbo()
        exact = analyze_exact(sdft, OPTIONS.horizon)
        simulated = simulate_failure_probability(
            sdft, OPTIONS.horizon, n_runs=40_000, seed=99
        )
        assert simulated.consistent_with(exact)

    def test_static_analysis_overshoots_most(self):
        """The static view cannot see the grid recovering or the
        batteries only draining during blackout: it must be the most
        conservative of the three numbers."""
        sdft = build_sbo()
        static_value = analyze_static(sdft, OPTIONS)
        dynamic_value = analyze(sdft, OPTIONS).failure_probability
        exact = analyze_exact(sdft, OPTIONS.horizon)
        assert static_value > dynamic_value >= exact - 1e-12
        # The gap is large here: static treats the 4 h grid outage as
        # lasting the whole day.
        assert static_value > 3 * exact


class TestPhysicalTrends:
    def test_faster_grid_recovery_helps(self):
        slow = analyze(build_sbo(SboConfig(grid_recovery_rate=0.05)), OPTIONS)
        fast = analyze(build_sbo(SboConfig(grid_recovery_rate=1.0)), OPTIONS)
        assert fast.failure_probability < slow.failure_probability

    def test_bigger_batteries_help(self):
        small = analyze(build_sbo(SboConfig(battery_hours=2.0)), OPTIONS)
        big = analyze(build_sbo(SboConfig(battery_hours=16.0)), OPTIONS)
        assert big.failure_probability < small.failure_probability

    def test_more_phases_sharpen_coping_time(self):
        """With more Erlang phases the depletion concentrates around the
        mean: short blackouts deplete the batteries less often, so the
        frequency drops (for coping time > typical blackout length)."""
        fuzzy = analyze(build_sbo(SboConfig(battery_phases=1)), OPTIONS)
        sharp = analyze(build_sbo(SboConfig(battery_phases=8)), OPTIONS)
        assert sharp.failure_probability < fuzzy.failure_probability

    def test_batteries_never_deplete_without_blackout(self):
        """The depletion chain has no passive progression: in a model
        where SBO is impossible, DC-DEPLETED never fails."""
        from repro.core.quantify import quantify_cutset

        sdft = build_sbo(SboConfig(edg_fail_to_start=0.0))
        # Quantify the depletion-involving cutset directly with the
        # EDGs' dynamic failures excluded from the cutset: the trigger
        # then requires the cutset's own events only.
        record = quantify_cutset(
            sdft,
            frozenset({"OFFSITE", "EDG-A-FTR", "EDG-B-FTR", "DC-DEPLETED"}),
            24.0,
        )
        assert record.probability > 0.0  # blackout via FTR still possible
