"""BDD-verified logical diagnostics: constants, vacuity, dead events."""

from __future__ import annotations

import pytest

from repro.errors import BddBudgetExceeded
from repro.ft.builder import FaultTreeBuilder
from repro.sem import logical_diagnostics


def vacuous_fixture():
    """``top = OR(a, AND(a, b))`` — the AND operand is absorbed by ``a``."""
    b = FaultTreeBuilder("vacuous")
    b.event("a", 0.1).event("b", 0.2)
    b.and_("both", "a", "b")
    b.or_("top", "a", "both")
    return b.build("top")


class TestVacuousOperands:
    def test_absorbed_operand_is_found(self):
        report = logical_diagnostics(vacuous_fixture())
        pairs = {(v.gate, v.operand) for v in report.vacuous}
        assert ("top", "both") in pairs

    def test_tight_gate_has_no_vacuous_operands(self):
        b = FaultTreeBuilder("tight")
        b.event("a", 0.1).event("b", 0.2)
        b.or_("top", "a", "b")
        report = logical_diagnostics(b.build("top"))
        assert report.vacuous == ()

    def test_implied_atleast_operand(self):
        # In 1-of-2 over (a, AND(a, b)) the AND input is again vacuous.
        b = FaultTreeBuilder("vote")
        b.event("a", 0.1).event("b", 0.2)
        b.and_("both", "a", "b")
        b.atleast("top", 1, "a", "both")
        report = logical_diagnostics(b.build("top"))
        assert {(v.gate, v.operand) for v in report.vacuous} == {("top", "both")}


class TestConstantsAndDeadEvents:
    def test_constant_event_makes_constant_gate(self):
        b = FaultTreeBuilder("const")
        b.event("sure", 1.0).event("a", 0.1)
        b.or_("always", "sure", "a")
        b.and_("top", "always", "a")
        report = logical_diagnostics(
            b.build("top"), constants={"sure": True}
        )
        assert report.constant_gates.get("always") is True
        # The top itself is a ∧ (always) = a: not constant.
        assert "top" not in report.constant_gates

    def test_dead_event_outside_top_support(self):
        tree = vacuous_fixture()
        report = logical_diagnostics(tree)
        # f(top) = a: the event b is wired in but cannot matter.
        assert report.dead_events == ("b",)

    def test_no_dead_events_in_tight_tree(self):
        b = FaultTreeBuilder("tight")
        b.event("a", 0.1).event("b", 0.2)
        b.and_("top", "a", "b")
        report = logical_diagnostics(b.build("top"))
        assert report.dead_events == ()


class TestCoherence:
    def test_gate_trees_are_monotone(self):
        report = logical_diagnostics(vacuous_fixture())
        assert report.non_monotone == ()

    def test_node_count_is_positive(self):
        report = logical_diagnostics(vacuous_fixture())
        assert report.node_count > 0


class TestBudget:
    def test_budget_overrun_raises_cleanly(self):
        b = FaultTreeBuilder("wide")
        for i in range(12):
            b.event(f"e{i}", 0.01)
        b.atleast("top", 6, *[f"e{i}" for i in range(12)])
        with pytest.raises(BddBudgetExceeded):
            logical_diagnostics(b.build("top"), node_budget=3)
