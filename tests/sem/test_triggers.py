"""Trigger-graph analysis: cascades, instant failures, order races."""

from __future__ import annotations

import pytest

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.sem import analyze_triggers


def race_fixture():
    """Two triggers that can fire at one instant, with an observable order.

    ``g1`` and ``g2`` share the support event ``x`` (simultaneity);
    ``g1`` switches ``d-spare``, whose chain can already be failed while
    off (positive passive failure rate), and ``d-spare`` feeds ``g2`` —
    so whether ``g2`` sees it failed at the switching instant depends on
    which trigger fires first.
    """
    b = SdFaultTreeBuilder("race-fixture")
    b.static_event("x", 0.01).static_event("a", 0.02).static_event("bb", 0.03)
    b.dynamic_event(
        "d-spare", triggered_repairable(0.01, 0.1, passive_failure_rate=0.005)
    )
    b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
    b.or_("g1", "x", "a")
    b.or_("g2", "x", "d-spare")
    b.or_("top", "g1", "g2", "d2", "bb")
    b.trigger("g1", "d-spare")
    b.trigger("g2", "d2")
    return b.build("top")


class TestRaceDetection:
    def test_seeded_race_is_found(self):
        report = analyze_triggers(race_fixture())
        assert len(report.races) == 1
        race = report.races[0]
        assert (race.first, race.second) == ("g1", "g2")
        assert race.event == "d-spare"
        assert race.shared == ("x",)

    def test_describe_names_both_gates_and_the_event(self):
        (race,) = analyze_triggers(race_fixture()).races
        text = race.describe()
        assert "g1" in text and "g2" in text and "d-spare" in text

    def test_no_race_without_instant_failure(self):
        # Same shape, but the spare cannot fail while off: the firing
        # order is unobservable, so there is no race to report.
        b = SdFaultTreeBuilder("no-race")
        b.static_event("x", 0.01).static_event("a", 0.02)
        b.dynamic_event("d-spare", triggered_repairable(0.01, 0.1))
        b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
        b.or_("g1", "x", "a")
        b.or_("g2", "x", "d-spare")
        b.or_("top", "g1", "g2", "d2")
        b.trigger("g1", "d-spare")
        b.trigger("g2", "d2")
        report = analyze_triggers(b.build("top"))
        assert report.instant_failure_events == ()
        assert report.races == ()

    def test_no_race_without_shared_support(self):
        # Disjoint supports: the triggers cannot fire at one instant.
        b = SdFaultTreeBuilder("disjoint")
        b.static_event("x", 0.01).static_event("y", 0.02)
        b.dynamic_event(
            "d-spare", triggered_repairable(0.01, 0.1, passive_failure_rate=0.005)
        )
        b.dynamic_event("d2", triggered_repairable(0.01, 0.1))
        b.or_("g1", "x")
        b.or_("g2", "y", "d-spare")
        b.or_("top", "g1", "g2", "d2")
        b.trigger("g1", "d-spare")
        b.trigger("g2", "d2")
        report = analyze_triggers(b.build("top"))
        assert report.instant_failure_events == ("d-spare",)
        assert report.races == ()


class TestGraphFacts:
    def test_cascade_edge_and_longest_chain(self):
        report = analyze_triggers(race_fixture())
        assert report.edges["g1"] == frozenset({"g2"})
        assert report.longest_cascade == ("g1", "g2")

    def test_instant_failure_requires_reachable_off_failure(self):
        report = analyze_triggers(race_fixture())
        assert report.instant_failure_events == ("d-spare",)

    def test_untriggered_model_is_trivial(self):
        b = SdFaultTreeBuilder("plain")
        b.static_event("s", 0.1)
        b.dynamic_event("d", repairable(0.01, 0.1))
        b.or_("top", "s", "d")
        report = analyze_triggers(b.build("top"))
        assert report.gates == ()
        assert report.races == ()
        assert report.longest_cascade == ()


class TestBundledModels:
    @pytest.mark.parametrize("builder", ["bwr", "sbo"])
    def test_bundled_models_have_no_races(self, builder):
        if builder == "bwr":
            from repro.models.bwr import build_bwr

            model = build_bwr()
        else:
            from repro.models.sbo import build_sbo

            model = build_sbo()
        report = analyze_triggers(model)
        assert report.races == ()
