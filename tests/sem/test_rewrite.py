"""The equivalence-checked rewrite engine (`sdft simplify`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bdd import exact_probability, trees_equivalent
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import triggered_repairable
from repro.ft.builder import FaultTreeBuilder
from repro.sem import simplify
from tests.strategies import fault_trees


class TestStructuralRewrites:
    def test_single_child_gate_collapses(self):
        b = FaultTreeBuilder("wrap")
        b.event("a", 0.1).event("b", 0.2)
        b.or_("wrap", "a")
        b.and_("top", "wrap", "b")
        result = simplify(b.build("top"))
        assert result.changed
        assert "wrap" not in result.model.gates
        assert result.model.gates["top"].children == ("a", "b")

    def test_same_type_single_parent_chains_flatten(self):
        b = FaultTreeBuilder("chain")
        b.event("a", 0.1).event("b", 0.2).event("c", 0.3)
        b.or_("inner", "b", "c")
        b.or_("top", "a", "inner")
        result = simplify(b.build("top"))
        assert set(result.model.gates) == {"top"}
        assert set(result.model.gates["top"].children) == {"a", "b", "c"}

    def test_duplicate_gates_merge(self):
        b = FaultTreeBuilder("dup")
        b.event("a", 0.1).event("b", 0.2).event("c", 0.3)
        b.and_("left", "a", "b")
        b.and_("right", "b", "a")  # same function, different spelling
        b.or_("top", "left", "right", "c")
        result = simplify(b.build("top"))
        kinds = result.counts_by_kind()
        assert kinds.get("duplicate-gate", 0) >= 1
        assert len(result.model.gates) < 3

    def test_constant_event_propagates(self):
        b = FaultTreeBuilder("const")
        b.event("never", 0.0).event("a", 0.1).event("b", 0.2)
        b.or_("top", "b", "mid")
        b.and_("mid", "never", "a")  # certainly-false subtree
        result = simplify(b.build("top"))
        assert result.model.gates["top"].children == ("b",)
        assert "never" not in result.model.events

    def test_degenerate_votes_rewrite(self):
        b = FaultTreeBuilder("vote")
        b.event("a", 0.1).event("b", 0.2)
        b.atleast("top", 2, "a", "b")  # 2-of-2 is an AND
        result = simplify(b.build("top"))
        assert result.counts_by_kind().get("degenerate-vote", 0) == 1

    def test_tight_tree_is_untouched(self):
        b = FaultTreeBuilder("tight")
        b.event("a", 0.1).event("b", 0.2)
        b.and_("top", "a", "b")
        tree = b.build("top")
        result = simplify(tree)
        assert not result.changed
        assert result.model is tree


class TestVerification:
    def test_every_simplification_is_equivalence_verified(self):
        b = FaultTreeBuilder("vacuous")
        b.event("a", 0.1).event("b", 0.2)
        b.and_("both", "a", "b")
        b.or_("top", "a", "both")
        tree = b.build("top")
        result = simplify(tree)
        assert result.verified_scopes >= 1
        assert not result.budget_hit
        assert trees_equivalent(tree, result.model)

    def test_budget_overrun_keeps_the_original(self):
        b = FaultTreeBuilder("wide")
        for i in range(14):
            b.event(f"e{i}", 0.01)
        b.atleast("inner", 7, *[f"e{i}" for i in range(14)])
        b.or_("wrap", "inner")
        b.or_("top", "wrap")
        result = simplify(b.build("top"), node_budget=3)
        assert result.budget_hit
        assert not result.changed  # the unverifiable round was reverted

    def test_exact_probability_is_preserved(self):
        from repro.models import model_1, model_2

        for tree in (model_1(), model_2()):
            result = simplify(tree)
            assert result.removed_gates > 0
            assert exact_probability(result.model) == pytest.approx(
                exact_probability(tree), rel=1e-12
            )


class TestSdProtections:
    def sd_fixture(self):
        b = SdFaultTreeBuilder("sd")
        b.static_event("x", 0.01).static_event("a", 0.02)
        b.dynamic_event("d", triggered_repairable(0.01, 0.1))
        b.or_("source", "x", "a")
        b.or_("wrap", "source")
        b.or_("top", "wrap", "d")
        b.trigger("source", "d")
        return b.build("top")

    def test_trigger_source_gates_survive_by_name(self):
        result = simplify(self.sd_fixture())
        assert "source" in result.model.gates
        assert result.model.triggers  # wiring intact

    def test_dynamic_events_are_never_pruned(self):
        result = simplify(self.sd_fixture())
        assert "d" in result.model.dynamic_events

    def test_unprotected_wrapper_still_collapses(self):
        result = simplify(self.sd_fixture())
        assert "wrap" not in result.model.gates


class TestAcceptanceBwr:
    def test_bwr_diet_is_measurable_and_verified(self):
        from repro.models.bwr import build_bwr

        model = build_bwr()
        result = simplify(model)
        assert result.gates_after < result.gates_before
        assert result.removed_gates >= 10  # "measurably", not marginally
        assert result.verified_scopes >= 1
        assert not result.budget_hit
        # The top-event scope of the static view is provably equivalent.
        assert trees_equivalent(model.structure, result.model.structure)


class TestPropertyPreservation:
    @given(tree=fault_trees(max_events=6, max_gates=6))
    @settings(max_examples=60, deadline=None)
    def test_simplify_preserves_bdd_exact_probability(self, tree):
        result = simplify(tree)
        assert exact_probability(result.model) == pytest.approx(
            exact_probability(tree), rel=1e-12, abs=1e-15
        )
