"""Interval abstract interpretation: exactness, Fréchet soundness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bdd import exact_probability
from repro.ft.builder import FaultTreeBuilder
from repro.sem import interval_bounds
from tests.strategies import fault_trees

TOLERANCE = 1e-9


class TestIndependentExactness:
    def test_series_parallel_is_exact(self):
        b = FaultTreeBuilder("sp")
        b.event("a", 0.1).event("b", 0.2).event("c", 0.3)
        b.and_("ab", "a", "b")
        b.or_("top", "ab", "c")
        report = interval_bounds(b.build("top"))
        expected = 1.0 - (1.0 - 0.1 * 0.2) * (1.0 - 0.3)
        assert report.top.lo == pytest.approx(expected)
        assert report.top.hi == pytest.approx(expected)
        assert "top" in report.independent_gates

    def test_atleast_is_exact_under_independence(self):
        b = FaultTreeBuilder("vote")
        b.event("a", 0.1).event("b", 0.2).event("c", 0.3)
        b.atleast("top", 2, "a", "b", "c")
        report = interval_bounds(b.build("top"))
        expected = (
            0.1 * 0.2 * (1 - 0.3)
            + 0.1 * (1 - 0.2) * 0.3
            + (1 - 0.1) * 0.2 * 0.3
            + 0.1 * 0.2 * 0.3
        )
        assert report.top.lo == pytest.approx(expected)
        assert report.top.hi == pytest.approx(expected)


class TestFrechetBrackets:
    def test_shared_event_brackets_exact(self):
        # top = AND(OR(x, a), OR(x, b)) — children share x, so the gate
        # falls back to Fréchet; the exact value must stay inside.
        b = FaultTreeBuilder("shared")
        b.event("x", 0.2).event("a", 0.3).event("b", 0.4)
        b.or_("left", "x", "a")
        b.or_("right", "x", "b")
        b.and_("top", "left", "right")
        tree = b.build("top")
        report = interval_bounds(tree)
        exact = exact_probability(tree)
        assert "top" in report.dependent_gates
        assert report.top.lo - TOLERANCE <= exact <= report.top.hi + TOLERANCE
        assert report.top.width > 0.0

    def test_dynamic_events_span_worst_case(self):
        b = FaultTreeBuilder("dyn")
        b.event("s", 0.1).event("d", 0.0)
        b.or_("top", "s", "d")
        report = interval_bounds(
            b.build("top"), dynamic=("d",), worst_case={"d": 0.25}
        )
        assert report.of("d").lo == 0.0
        assert report.of("d").hi == 0.25
        assert report.top.lo == pytest.approx(0.1)
        assert report.top.hi == pytest.approx(1.0 - 0.9 * 0.75)

    def test_unknown_worst_case_spans_unit_interval(self):
        b = FaultTreeBuilder("dyn")
        b.event("s", 0.1).event("d", 0.0)
        b.and_("top", "s", "d")
        report = interval_bounds(b.build("top"), dynamic=("d",))
        assert report.of("d").hi == 1.0
        assert report.top.hi == pytest.approx(0.1)


class TestBracketsBddExactEverywhere:
    @pytest.mark.parametrize("preset", ["model_1", "model_2", "bwr-static"])
    def test_bundled_static_models(self, preset):
        if preset == "bwr-static":
            from repro.models.bwr import BwrConfig, build_bwr

            tree = build_bwr(BwrConfig(dynamic=False)).structure
        else:
            from repro.models import model_1, model_2

            tree = model_1() if preset == "model_1" else model_2()
        report = interval_bounds(tree)
        exact = exact_probability(tree)
        assert report.top.lo - TOLERANCE <= exact <= report.top.hi + TOLERANCE

    @given(tree=fault_trees(max_events=6, max_gates=6))
    @settings(max_examples=60, deadline=None)
    def test_random_static_trees(self, tree):
        report = interval_bounds(tree)
        exact = exact_probability(tree)
        bound = report.top
        assert bound.lo - TOLERANCE <= exact <= bound.hi + TOLERANCE
        # Every per-node interval is a valid probability interval.
        for name, interval in report.per_node.items():
            assert 0.0 <= interval.lo <= interval.hi + TOLERANCE
            assert interval.hi <= 1.0 + TOLERANCE, name
