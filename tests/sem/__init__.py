"""Tests of the semantic static-analysis engine (:mod:`repro.sem`)."""
