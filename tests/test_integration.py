"""Cross-implementation integration tests.

Three independent implementations of the SD semantics exist in this
package — the per-cutset decomposition (the paper's method), the exact
product chain, and the Monte-Carlo simulator.  These tests drive all
three over a battery of models covering every trigger class and assert
the paper's accuracy contract:

* the per-cutset rare-event sum over-approximates the exact value;
* the over-approximation is modest (cutset overlap only);
* the simulator agrees with the exact value within sampling error.
"""

import pytest

from repro.core.analyzer import AnalysisOptions, analyze, analyze_exact
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import (
    erlang_failure,
    repairable,
    triggered_erlang,
    triggered_repairable,
)
from repro.ctmc.simulate import simulate_failure_probability


def _running_example():
    b = SdFaultTreeBuilder("cooling")
    b.static_event("a", 3e-3).static_event("c", 3e-3).static_event("e", 3e-6)
    b.dynamic_event("b", repairable(0.001, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2").or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")
    return b.build("cooling")


def _static_joins():
    b = SdFaultTreeBuilder("joins")
    b.dynamic_event("e", repairable(0.02, 0.5))
    b.dynamic_event("f", repairable(0.03, 0.5))
    b.dynamic_event("g", triggered_repairable(0.05, 0.2))
    b.static_event("s", 0.01)
    b.or_("trigger_sys", "e", "f")
    b.and_("top", "trigger_sys", "g", "s")
    b.trigger("trigger_sys", "g")
    return b.build("top")


def _general_case():
    b = SdFaultTreeBuilder("general")
    b.dynamic_event("p", repairable(0.02, 0.5))
    b.dynamic_event("q1", repairable(0.04, 0.5))
    b.dynamic_event("q2", repairable(0.03, 0.4))
    b.static_event("d", 0.15)
    b.dynamic_event("r", triggered_repairable(0.05, 0.2))
    b.or_("guard", "d", "q1", "q2")
    b.and_("trig_gate", "p", "guard")
    b.and_("aux", "trig_gate", "r")
    b.or_("top", "aux")
    b.trigger("trig_gate", "r")
    return b.build("top")


def _uniform_chain():
    b = SdFaultTreeBuilder("chain")
    b.dynamic_event("a1", repairable(0.03, 0.3))
    b.dynamic_event("a2", repairable(0.02, 0.3))
    b.dynamic_event("b1", triggered_repairable(0.04, 0.3))
    b.dynamic_event("b2", triggered_repairable(0.05, 0.3))
    b.dynamic_event("c1", triggered_repairable(0.06, 0.3))
    b.or_("sysA", "a1", "a2")
    b.or_("sysB", "b1", "b2")
    b.and_("top", "sysA", "sysB", "c1")
    b.trigger("sysA", "b1", "b2")
    b.trigger("sysB", "c1")
    return b.build("top")


def _erlang_phases():
    b = SdFaultTreeBuilder("phases")
    b.dynamic_event("x", erlang_failure(3, 0.02, 0.3))
    b.dynamic_event("y", triggered_erlang(2, 0.05, 0.2))
    b.static_event("s", 0.05)
    b.or_("src", "x", "s")
    b.and_("top", "src", "y")
    b.trigger("src", "y")
    return b.build("top")


MODELS = {
    "running-example": _running_example,
    "static-joins": _static_joins,
    "general-case": _general_case,
    "uniform-chain": _uniform_chain,
    "erlang-phases": _erlang_phases,
}


@pytest.mark.parametrize("name", sorted(MODELS))
class TestThreeWayAgreement:
    def test_per_cutset_over_approximates_exact(self, name):
        sdft = MODELS[name]()
        result = analyze(sdft, AnalysisOptions(horizon=24.0))
        exact = analyze_exact(sdft, 24.0)
        assert result.failure_probability >= exact - 1e-12
        # The over-approximation only comes from cutset overlap.
        assert result.failure_probability <= 1.5 * exact

    def test_simulation_agrees_with_exact(self, name):
        sdft = MODELS[name]()
        exact = analyze_exact(sdft, 24.0)
        simulated = simulate_failure_probability(sdft, 24.0, n_runs=30_000, seed=17)
        assert simulated.consistent_with(exact)


class TestRareEventConvergence:
    def test_over_approximation_vanishes_for_rare_failures(self):
        """Scaling all rates down makes cutset overlap negligible: the
        per-cutset sum converges to the exact probability."""
        ratios = []
        for scale in (1.0, 0.1):
            b = SdFaultTreeBuilder("scaled")
            b.dynamic_event("e", repairable(0.02 * scale, 0.5))
            b.dynamic_event("f", repairable(0.03 * scale, 0.5))
            b.dynamic_event("g", triggered_repairable(0.05 * scale, 0.2))
            b.static_event("s", 0.01 * scale)
            b.or_("trigger_sys", "e", "f")
            b.and_("top", "trigger_sys", "g", "s")
            b.trigger("trigger_sys", "g")
            sdft = b.build("top")
            result = analyze(sdft, AnalysisOptions(horizon=24.0, cutoff=0.0))
            exact = analyze_exact(sdft, 24.0)
            ratios.append(result.failure_probability / exact)
        assert ratios[1] < ratios[0]
        assert ratios[1] < 1.02


class TestRandomModels:
    """Property-based cross-validation over random SD fault trees.

    This is the strongest correctness net in the suite: arbitrary small
    tree shapes, arbitrary trigger placements, every trigger class can
    arise — and the per-cutset method must stay conservative against
    the exact product chain on each of them.
    """

    from hypothesis import given, settings

    from tests.strategies import sd_fault_trees

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(sd_fault_trees())
    def test_per_cutset_conservative_vs_exact(self, sdft):
        options = AnalysisOptions(horizon=12.0, cutoff=0.0)
        result = analyze(sdft, options)
        exact = analyze_exact(sdft, 12.0)
        assert result.failure_probability >= exact - 1e-9
        assert result.static_bound >= result.failure_probability - 1e-12

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(sd_fault_trees(max_static=2, max_dynamic=3, max_gates=4))
    def test_per_cutset_reasonably_tight(self, sdft):
        """The overshoot is bounded: the rare-event sum cannot exceed
        the number-of-cutsets multiple of the exact value."""
        options = AnalysisOptions(horizon=12.0, cutoff=0.0)
        result = analyze(sdft, options)
        exact = analyze_exact(sdft, 12.0)
        if exact > 1e-12:
            assert result.failure_probability <= max(1, result.n_cutsets) * exact + 1e-9


class TestHorizonConsistency:
    @pytest.mark.parametrize("name", ["running-example", "static-joins"])
    def test_monotone_in_horizon_and_matches_exact(self, name):
        sdft = MODELS[name]()
        previous = 0.0
        for horizon in (6.0, 24.0, 96.0):
            value = analyze(
                sdft, AnalysisOptions(horizon=horizon)
            ).failure_probability
            exact = analyze_exact(sdft, horizon)
            assert value >= exact - 1e-12
            assert value >= previous
            previous = value
