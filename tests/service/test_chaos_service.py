"""The deterministic service chaos catalogue (``chaos --catalog service``)."""

from __future__ import annotations

from repro.core.analyzer import AnalysisOptions
from repro.service.chaos import run_service_campaign


def test_catalogue_on_the_cooling_model(cooling_sdft, options):
    report = run_service_campaign(cooling_sdft, options=options)
    assert report.ok, report.summary()
    by_name = {o.faults[0]: o for o in report.outcomes}
    # Deadline expiry: ok-with-interval, bracketed (or clean when the
    # run beats the deadline on a fast machine) — never an error.
    assert by_name["deadline@quantify"].outcome in ("clean", "bracketed")
    # SIGKILL between journal begin and commit: restart replays, aborts
    # the in-flight request, and re-answers bit-identically.
    assert by_name["sigkill@journal_begin"].outcome == "clean"
    # Interior journal corruption is loud; a torn tail is routine.
    assert by_name["corrupt@journal_record"].outcome == "loud"
    assert by_name["torn@journal_tail"].outcome == "clean"


def test_report_is_json_serialisable(cooling_sdft, options):
    report = run_service_campaign(cooling_sdft, options=options)
    data = report.to_dict()
    assert data["ok"] is True
    assert data["runs"] == 4
    assert set(data["counts"]) <= {"clean", "loud", "bracketed"}
