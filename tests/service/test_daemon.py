"""ServiceDaemon: the request layer, journal recovery, load shedding."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.models.formats import sdft_to_dict
from repro.service.breaker import CircuitBreaker
from repro.service.daemon import ServiceDaemon
from repro.service.edits import SetProbability, apply_edits
from repro.service.journal import Journal


@pytest.fixture
def payload(cooling_sdft):
    return sdft_to_dict(cooling_sdft)


@pytest.fixture
def daemon(options):
    return ServiceDaemon(options)


def _load(daemon, payload):
    response = daemon.handle_request({"op": "load", "model": payload})
    assert response["ok"]
    return response["session"]


# ----------------------------------------------------------------------
# Synchronous request handling
# ----------------------------------------------------------------------


def test_ping_and_unknown_op(daemon):
    assert daemon.handle_request({"op": "ping"})["ok"]
    response = daemon.handle_request({"op": "frobnicate"})
    assert not response["ok"]
    assert response["error"]["kind"] == "service-error"


def test_load_is_fingerprint_addressed(daemon, payload):
    first = _load(daemon, payload)
    second = _load(daemon, payload)
    assert first == second  # same content converges on one session
    assert len(daemon.store) == 1


def test_static_model_rejected(daemon, cooling_tree):
    from repro.models.formats import tree_to_dict

    response = daemon.handle_request(
        {"op": "load", "model": tree_to_dict(cooling_tree)}
    )
    assert not response["ok"]
    assert "SD fault trees" in response["error"]["message"]


def test_analysis_response_shape(daemon, payload, cooling_sdft, options):
    session = _load(daemon, payload)
    response = daemon.handle_request({"op": "analyze", "session": session})
    reference = analyze(cooling_sdft, options)
    assert response["ok"]
    assert response["probability"] == reference.failure_probability
    assert response["method"] == reference.method
    lower, upper = response["interval"]
    assert lower <= response["probability"] <= upper
    assert response["mode"] == "full"
    assert not response["deadline_expired"]


def test_edit_then_reanalyze_matches_cold(
    daemon, payload, cooling_sdft, options
):
    session = _load(daemon, payload)
    daemon.handle_request({"op": "analyze", "session": session})
    edited = daemon.handle_request(
        {
            "op": "edit",
            "session": session,
            "edits": [
                {"kind": "set-probability", "event": "e", "probability": 5e-6}
            ],
        }
    )
    assert edited["ok"] and edited["changed"]
    response = daemon.handle_request(
        {"op": "reanalyze", "session": session, "crosscheck": True}
    )
    assert response["ok"]
    cold = analyze(
        apply_edits(cooling_sdft, [SetProbability("e", 5e-6)]), options
    )
    assert response["probability"] == cold.failure_probability


def test_unknown_session_is_an_error_response(daemon):
    response = daemon.handle_request({"op": "analyze", "session": "nope"})
    assert not response["ok"]
    assert "unknown session" in response["error"]["message"]


def test_deadline_expiry_returns_partial_not_error(daemon, payload):
    session = _load(daemon, payload)
    response = daemon.handle_request(
        {"op": "analyze", "session": session, "deadline_seconds": 1e-9}
    )
    assert response["ok"]
    assert response["deadline_expired"]
    assert "method" in response and "interval" in response
    assert daemon.counters["deadline_partials"] == 1


def test_open_breaker_forces_serial_with_note(options, payload):
    breaker = CircuitBreaker(failure_threshold=1, cooldown_requests=3)
    daemon = ServiceDaemon(options, breaker=breaker)
    session = _load(daemon, payload)
    breaker.record_failure()
    response = daemon.handle_request({"op": "analyze", "session": session})
    assert response["ok"]
    assert any("circuit breaker open" in note for note in response["notes"])
    assert response["breaker"] in ("open", "half-open")


def test_stats_response(daemon, payload):
    session = _load(daemon, payload)
    daemon.handle_request({"op": "analyze", "session": session})
    stats = daemon.handle_request({"op": "stats"})
    assert stats["ok"]
    assert stats["counters"]["served"] >= 2
    assert stats["sessions"][session]["runs"] == 1
    assert stats["breaker"]["state"] == "closed"


def test_request_trace_is_written(options, payload, tmp_path):
    trace = tmp_path / "trace.jsonl"
    daemon = ServiceDaemon(options, trace_path=str(trace))
    session = _load(daemon, payload)
    daemon.handle_request({"op": "analyze", "session": session, "id": 7})
    entries = [
        json.loads(line) for line in trace.read_text().splitlines()
    ]
    assert [e["op"] for e in entries] == ["load", "analyze"]
    assert entries[1]["id"] == 7
    assert entries[1]["ok"]
    assert entries[1]["probability"] is not None


# ----------------------------------------------------------------------
# Journal recovery
# ----------------------------------------------------------------------


def test_restart_replays_loads_and_edits(options, payload, tmp_path):
    journal = str(tmp_path / "daemon.journal")
    first = ServiceDaemon(options, journal_path=journal)
    session = _load(first, payload)
    first.handle_request(
        {
            "op": "edit",
            "session": session,
            "edits": [
                {"kind": "set-probability", "event": "e", "probability": 5e-6}
            ],
        }
    )
    fingerprint = first.store.get(session).fingerprint
    first.journal.close()

    second = ServiceDaemon(options, journal_path=journal)
    assert second.counters["replayed"] == 2
    assert second.store.get(session).fingerprint == fingerprint


def test_restart_aborts_in_flight_work(options, payload, tmp_path):
    journal_path = str(tmp_path / "daemon.journal")
    first = ServiceDaemon(options, journal_path=journal_path)
    session = _load(first, payload)
    first.journal.close()
    # Simulate a crash mid-request: a 'begin' with no 'done'.
    orphan = Journal(journal_path)
    orphan.begin(99, {"op": "reanalyze", "session": session})
    orphan.close()

    second = ServiceDaemon(options, journal_path=journal_path)
    assert second.counters["aborted_in_flight"] == 1
    assert any("in flight" in note for note in second.recovery_notes)
    # Sequence numbering continues past the aborted record.
    assert second.journal.next_seq() == 100


def test_failed_requests_are_not_journalled_done(options, tmp_path):
    journal_path = str(tmp_path / "daemon.journal")
    daemon = ServiceDaemon(options, journal_path=journal_path)
    response = daemon.handle_request({"op": "load"})  # missing payload
    assert not response["ok"]
    daemon.journal.close()
    second = ServiceDaemon(options, journal_path=journal_path)
    # The failed load is in-flight (begin, no done) — aborted, not replayed.
    assert second.counters["replayed"] == 0
    assert second.counters["aborted_in_flight"] == 1


# ----------------------------------------------------------------------
# The serve loop
# ----------------------------------------------------------------------


def _serve(daemon, requests):
    stdin = io.StringIO(
        "".join(json.dumps(r) + "\n" for r in requests)
    )
    stdout = io.StringIO()
    daemon.serve(stdin, stdout)
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


def test_serve_round_trip(options, payload):
    daemon = ServiceDaemon(options)
    responses = _serve(
        daemon,
        [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "load", "model": payload},
            {"id": 3, "op": "shutdown"},
        ],
    )
    by_id = {r["id"]: r for r in responses}
    assert by_id[1]["ok"] and by_id[2]["ok"] and by_id[3]["ok"]
    assert by_id[2]["session"]


def test_serve_sheds_excess_load(options, payload):
    daemon = ServiceDaemon(options, max_queue=1, workers=1)
    with_session = ServiceDaemon(options)
    session = _load(with_session, payload)
    _load(daemon, payload)  # install the session synchronously
    analyze_req = {"op": "analyze", "session": session}
    responses = _serve(
        daemon,
        [dict(analyze_req, id=i) for i in range(8)],
    )
    outcomes = {r["id"]: r for r in responses}
    shed = [
        r
        for r in outcomes.values()
        if not r["ok"] and r["error"]["kind"] == "load-shed"
    ]
    served = [r for r in outcomes.values() if r.get("ok")]
    # The worker drains at most a few while stdin floods 8 instantly:
    # at least one is shed, every shed response is explicit, and
    # everything else is served correctly.
    assert shed, "expected the bounded queue to shed load"
    assert len(shed) + len(served) == 8
    assert daemon.counters["shed"] == len(shed)


def test_serve_answers_ping_under_load(options, payload):
    daemon = ServiceDaemon(options, max_queue=1, workers=1)
    _load(daemon, payload)
    session = next(iter(daemon.store.ids()))
    requests = [dict({"op": "analyze", "session": session}, id=i) for i in range(6)]
    requests.insert(4, {"op": "ping", "id": 99})
    responses = _serve(daemon, requests)
    ping = [r for r in responses if r.get("id") == 99]
    assert ping and ping[0]["ok"]


def test_serve_rejects_garbage_lines(options):
    daemon = ServiceDaemon(options)
    stdin = io.StringIO('this is not json\n[1,2,3]\n{"op":"shutdown"}\n')
    stdout = io.StringIO()
    daemon.serve(stdin, stdout)
    responses = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert [r["ok"] for r in responses] == [False, False, True]
    assert all(
        r["error"]["kind"] == "bad-request" for r in responses if not r["ok"]
    )
