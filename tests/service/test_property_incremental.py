"""Property: any single edit + reanalyze() is bit-identical to cold.

The acceptance property of the incremental engine, exercised across
the edit vocabulary, serial and parallel quantification, and with the
persistent solve cache on and off: for any supported single edit,

    session.analyze(); session.edit(e); session.reanalyze()

produces exactly the result of ``analyze(apply_edits(model, [e]))`` —
same probability, method, interval, and per-record semantic fields.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analyzer import AnalysisOptions, analyze
from repro.service.edits import ScaleRates, SetProbability, apply_edits
from repro.service.session import AnalysisSession, assert_bit_identical

_EDITS = st.one_of(
    st.builds(
        SetProbability,
        st.sampled_from(["a", "c", "e"]),
        st.sampled_from([1e-6, 1e-4, 5e-3, 0.02, 0.3]),
    ),
    st.builds(
        ScaleRates,
        st.sampled_from(["b", "d"]),
        st.sampled_from([0.25, 0.5, 1.0, 1.7, 4.0]),
    ),
)


@given(
    edit=_EDITS,
    jobs=st.sampled_from([1, 2]),
    cache=st.booleans(),
)
# A cache directory shared across examples is deliberate — warm cache
# hits are part of what the bit-identity contract must survive.
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_single_edit_reanalyze_bit_identical(
    cooling_sdft, tmp_path, edit, jobs, cache
):
    options = AnalysisOptions(
        horizon=24.0,
        cutoff=1e-15,
        jobs=jobs,
        cache_dir=str(tmp_path / "solve-cache") if cache else None,
    )
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    session.edit(edit)
    warm = session.reanalyze()
    cold = analyze(apply_edits(cooling_sdft, [edit]), options)
    assert_bit_identical(warm, cold)
