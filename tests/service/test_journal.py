"""The crash-safe request journal: replay, torn tails, corruption."""

from __future__ import annotations

import pytest

from repro.errors import JournalError
from repro.service.journal import Journal, replay_journal


def _journal_with(path, *ops):
    journal = Journal(str(path))
    for op, complete in ops:
        seq = journal.next_seq()
        journal.begin(seq, {"op": op, "n": seq})
        if complete:
            journal.done(seq)
    journal.close()
    return str(path)


def test_missing_file_replays_empty(tmp_path):
    replay = replay_journal(str(tmp_path / "absent.journal"))
    assert replay.completed == []
    assert replay.in_flight == []
    assert not replay.torn_tail


def test_completed_and_in_flight(tmp_path):
    path = _journal_with(
        tmp_path / "j", ("load", True), ("edit", True), ("reanalyze", False)
    )
    replay = replay_journal(path)
    assert [r.request["op"] for r in replay.completed] == ["load", "edit"]
    assert [r.request["op"] for r in replay.in_flight] == ["reanalyze"]
    assert any("in flight" in note for note in replay.notes)


def test_torn_tail_is_tolerated_with_note(tmp_path):
    path = _journal_with(tmp_path / "j", ("load", True), ("edit", True))
    with open(path, "r+", encoding="utf-8") as handle:
        text = handle.read()
        handle.seek(0)
        handle.truncate()
        handle.write(text[: len(text) - 12])  # tear the last record
    replay = replay_journal(path)
    assert replay.torn_tail
    assert any("torn" in note for note in replay.notes)
    # The intact prefix survives: load completed; edit's 'done' was the
    # torn record, so the edit is reported as in-flight, never lost.
    assert [r.request["op"] for r in replay.completed] == ["load"]
    assert [r.request["op"] for r in replay.in_flight] == ["edit"]


def test_interior_corruption_is_loud(tmp_path):
    path = _journal_with(tmp_path / "j", ("load", True), ("edit", True))
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[0] = lines[0].replace('"op": "load"', '"op": "lo4d"')
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt at line 1"):
        replay_journal(path)


def test_done_without_begin_is_loud(tmp_path):
    journal = Journal(str(tmp_path / "j"))
    journal.done(7)
    journal.close()
    with pytest.raises(JournalError, match="without"):
        replay_journal(str(tmp_path / "j"))


def test_restore_seq_continues_numbering(tmp_path):
    journal = Journal(str(tmp_path / "j"))
    journal.restore_seq(41)
    assert journal.next_seq() == 42
    # restore_seq never moves the counter backwards.
    journal.restore_seq(3)
    assert journal.next_seq() == 43
    journal.close()
