"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.core.analyzer import AnalysisOptions
from repro.robust import faults


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Safety net: no test leaks an armed fault into the next one."""
    yield
    faults.clear()


@pytest.fixture
def options():
    """Plain serial options shared by most service tests."""
    return AnalysisOptions(horizon=24.0, cutoff=1e-15)
