"""AnalysisSession lifecycle: analyze / edit / reanalyze / resume."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.errors import CrosscheckError, InjectedFaultError, ServiceError
from repro.robust import faults
from repro.service.edits import (
    ScaleRates,
    SetGate,
    SetProbability,
    apply_edits,
)
from repro.service.session import (
    AnalysisSession,
    assert_bit_identical,
    session_for,
)


def test_cold_session_matches_one_shot(cooling_sdft, options):
    session = session_for(cooling_sdft, options)
    result = session.analyze()
    reference = analyze(cooling_sdft, options)
    assert_bit_identical(result, reference)
    assert session.runs == 1
    assert session.last_mode == "full"


def test_edit_reports_fingerprint_motion(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    before = session.fingerprint
    report = session.edit(SetProbability("e", 5e-6))
    assert report.changed
    assert report.fingerprint_before == before
    assert report.fingerprint_after == session.fingerprint != before
    with pytest.raises(ServiceError, match="no edits"):
        session.edit()


@pytest.mark.parametrize(
    "edit",
    [
        SetProbability("e", 5e-6),
        SetProbability("a", 9e-3),
        ScaleRates("b", 0.5),
        ScaleRates("d", 2.0),
    ],
)
def test_reanalyze_is_bit_identical_to_cold(cooling_sdft, options, edit):
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    session.edit(edit)
    # crosscheck=True runs the cold analysis internally and raises
    # CrosscheckError on any semantic difference.
    warm = session.reanalyze(crosscheck=True)
    cold = analyze(apply_edits(cooling_sdft, [edit]), options)
    assert_bit_identical(warm, cold)


def test_record_reuse_skips_clean_cutsets(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    session.edit(SetProbability("e", 5e-6))
    reusable = session._reusable_records()
    # {e} is dirty; every other cooling cutset is provably untouched.
    assert reusable is not None
    assert frozenset({"e"}) not in reusable
    assert frozenset({"a", "c"}) in reusable
    assert all("e" not in r.dependencies for r in reusable.values())


def test_structural_edit_disables_record_reuse(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    session.edit(SetGate("pumps", "or", ("pump1", "pump2")))
    assert session._reusable_records() is None
    # ... but the run itself still agrees with cold analysis.
    session.reanalyze(crosscheck=True)


def test_deadline_returns_sound_bracket(cooling_sdft, options):
    clean = analyze(cooling_sdft, options)
    session = AnalysisSession(cooling_sdft, options)
    result = session.analyze(deadline_seconds=1e-9)
    lower, upper = result.failure_probability_interval()
    assert lower <= clean.failure_probability <= upper
    assert any(e.kind == "budget" for e in result.health.events)
    # The session's own options are untouched by the per-request budget.
    assert session.options.wall_seconds is None


def test_crosscheck_raises_on_semantic_difference(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    good = session.analyze()
    bad = replace(good, failure_probability=good.failure_probability * 2)
    with pytest.raises(CrosscheckError, match="probability"):
        assert_bit_identical(bad, good)


def test_resume_needs_checkpoint_config(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    with pytest.raises(ServiceError, match="checkpoint_path"):
        session.resume()


def test_interrupted_session_resumes(cooling_sdft, options, tmp_path):
    clean = analyze(cooling_sdft, options)
    session = AnalysisSession(
        cooling_sdft,
        replace(
            options,
            checkpoint_path=str(tmp_path / "run.ckpt"),
            checkpoint_interval_seconds=0.0,
        ),
    )
    target = frozenset({"b", "c"})
    with faults.inject(
        "transient_solve", when=lambda cutset=None, **_: cutset == target
    ):
        with pytest.raises(InjectedFaultError):
            session.analyze()
    resumed = session.resume()
    assert resumed.failure_probability == pytest.approx(
        clean.failure_probability, rel=1e-12
    )
    assert session.last_mode == "resume"


def test_stats_shape(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    stats = session.stats()
    assert stats["runs"] == 1
    assert stats["last_mode"] == "full"
    assert stats["fingerprint"] == session.fingerprint
    session.close()
    assert session._previous is None
