"""The deterministic circuit breaker around the warm solver farm."""

from __future__ import annotations

import pytest

from repro.service.breaker import CircuitBreaker


def test_closed_until_threshold():
    breaker = CircuitBreaker(failure_threshold=3, cooldown_requests=2)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"
    assert breaker.allows_pool()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 1


def test_success_resets_the_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"


def test_cooldown_counts_requests_to_half_open():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_requests=2)
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allows_pool()  # denied, cooldown ticks
    assert breaker.state == "open"
    assert not breaker.allows_pool()
    assert breaker.state == "half-open"
    # The half-open probe goes through to the pool.
    assert breaker.allows_pool()


def test_half_open_outcome_decides():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_requests=1)
    breaker.record_failure()
    while not breaker.allows_pool():
        pass
    breaker.record_success()
    assert breaker.state == "closed"

    breaker.record_failure()
    while not breaker.allows_pool():
        pass
    breaker.record_failure()  # probe failed: re-open
    assert breaker.state == "open"
    # threshold=1: the initial failure, the post-close failure and the
    # failed probe each tripped the breaker.
    assert breaker.trips == 3


def test_knob_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_requests=0)
