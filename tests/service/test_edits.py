"""What-if edit vocabulary: semantics, immutability, serialisation."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.service.edits import (
    RemoveTrigger,
    ScaleRates,
    SetGate,
    SetProbability,
    SetTrigger,
    apply_edits,
    edit_from_dict,
    edit_to_dict,
)


def test_set_probability(cooling_sdft):
    edited = apply_edits(cooling_sdft, [SetProbability("e", 5e-6)])
    assert edited.static_events["e"].probability == 5e-6
    # Everything else — and the original model — is untouched.
    assert cooling_sdft.static_events["e"].probability == 3e-6
    assert edited.static_events["a"].probability == 3e-3


def test_scale_rates(cooling_sdft):
    edited = apply_edits(cooling_sdft, [ScaleRates("b", 2.0)])
    old = cooling_sdft.dynamic_events["b"].chain
    new = edited.dynamic_events["b"].chain
    assert new.fingerprint() != old.fingerprint()
    for edge, rate in old.rates.items():
        assert new.rates[edge] == rate * 2.0
    # Scaling by 1.0 is content-identical.
    same = apply_edits(cooling_sdft, [ScaleRates("b", 1.0)])
    assert same.dynamic_events["b"].chain.fingerprint() == old.fingerprint()


def test_negative_scale_factor_rejected(cooling_sdft):
    with pytest.raises(ModelError, match="non-negative"):
        apply_edits(cooling_sdft, [ScaleRates("b", -1.0)])


def test_unknown_events_rejected(cooling_sdft):
    with pytest.raises(ModelError, match="unknown static event"):
        apply_edits(cooling_sdft, [SetProbability("nope", 0.5)])
    with pytest.raises(ModelError, match="unknown dynamic event"):
        apply_edits(cooling_sdft, [ScaleRates("nope", 0.5)])


def test_trigger_rewiring(cooling_sdft):
    # Both edits in one application: removal alone would leave the
    # triggered chain of 'd' unowned, which model validation rejects.
    # (Only pump1 can own it here — every other cooling gate contains
    # 'd', and a gate triggering its own child is cyclic.)
    rewired = apply_edits(
        cooling_sdft, [RemoveTrigger("pump1"), SetTrigger("pump1", ("d",))]
    )
    assert rewired.triggers == cooling_sdft.triggers


def test_orphaned_triggered_chain_rejected(cooling_sdft):
    from repro.errors import TriggerError

    with pytest.raises(TriggerError, match="no gate triggers it"):
        apply_edits(cooling_sdft, [RemoveTrigger("pump1")])


def test_set_gate(cooling_sdft):
    edited = apply_edits(
        cooling_sdft, [SetGate("pumps", "or", ("pump1", "pump2"))]
    )
    gate = edited.structure.gates["pumps"]
    assert gate.gate_type.value == "or"
    assert gate.children == ("pump1", "pump2")


@pytest.mark.parametrize(
    "edit",
    [
        SetProbability("e", 0.25),
        ScaleRates("b", 1.5),
        SetGate("pumps", "atleast", ("pump1", "pump2"), k=1),
        SetTrigger("pump1", ("d",)),
        RemoveTrigger("pump1"),
    ],
)
def test_dict_round_trip(edit):
    assert edit_from_dict(edit_to_dict(edit)) == edit


def test_unknown_kind_rejected():
    with pytest.raises(ModelError, match="unknown edit kind"):
        edit_from_dict({"kind": "frobnicate"})
    with pytest.raises(ModelError, match="malformed"):
        edit_from_dict({"kind": "scale-rates", "event": "b"})
