"""Incremental cutset generation and the canonical-cutoff contract."""

from __future__ import annotations

import math

from repro.core.analyzer import AnalysisOptions, analyze
from repro.ft.cutsets import cutset_probability
from repro.service.edits import ScaleRates, SetProbability
from repro.service.session import AnalysisSession


def test_rate_decrease_uses_retruncate(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    session.edit(ScaleRates("b", 0.5))
    session.reanalyze(crosscheck=True)
    assert session.last_mode == "retruncate"
    assert session.incremental_runs == 1


def test_rate_increase_still_bit_identical(cooling_sdft, options):
    # Increasing a probability can admit new cutsets, so the retruncate
    # fast path must refuse; whatever mode serves instead (modular or a
    # cold fallback) has to agree with the cold run bit for bit.
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    session.edit(ScaleRates("b", 4.0))
    session.reanalyze(crosscheck=True)
    assert session.last_mode in ("modular", "full")


def test_repeated_edits_stay_bit_identical(cooling_sdft, options):
    session = AnalysisSession(cooling_sdft, options)
    session.analyze()
    for edit in (
        SetProbability("e", 5e-6),
        ScaleRates("d", 0.25),
        SetProbability("a", 8e-3),
        ScaleRates("d", 4.0),
    ):
        session.edit(edit)
        session.reanalyze(crosscheck=True)


def test_cutset_probability_is_order_independent():
    # frozenset iteration order depends on hash-table construction
    # history, so the rounded product must not follow it: the canonical
    # product iterates the *sorted* cutset.
    names = [f"EV-{i:02d}" for i in range(12)]
    probabilities = {n: 0.1 + 0.001 * i for i, n in enumerate(names)}
    forward = frozenset(names)
    backward = frozenset(reversed(names))
    grown = frozenset()
    for name in names[::2] + names[1::2]:
        grown = grown | {name}
    canonical = math.prod(probabilities[n] for n in sorted(names))
    assert cutset_probability(forward, probabilities) == canonical
    assert cutset_probability(backward, probabilities) == canonical
    assert cutset_probability(grown, probabilities) == canonical


def test_cold_mocus_membership_is_canonical():
    """Regression: boundary cutsets survive search-order rounding.

    Three all-static BWR cutsets have a canonical probability a couple
    of ULPs *above* the 1e-15 cutoff, but the search's running product
    — multiplied in a different order — rounds to exactly 1e-15 and
    used to be pruned mid-search.  The in-search cutoff now carries a
    relative slack and the final strict truncation (canonical product)
    decides membership, so the cold list is a pure function of the
    model.
    """
    from repro.models.bwr import build_bwr

    result = analyze(build_bwr(), AnalysisOptions(horizon=24.0, cutoff=1e-15))
    boundary = frozenset(
        {
            "ECC-A-BREAKER",
            "ECC-B-MOV-FTO",
            "EFW-A-MOV-FTO",
            "EFW-B-DC-BUS",
            "IE-TRANSIENT",
        }
    )
    cutsets = {record.cutset for record in result.records}
    assert boundary in cutsets
