"""MOCUS tests: oracle comparisons, cutoff semantics, work limits."""

import pytest
from hypothesis import given

from repro.errors import CutoffError, UnknownNodeError
from repro.ft.builder import FaultTreeBuilder
from repro.ft.cutsets import cutset_probability
from repro.ft.mocus import MocusOptions, constrained_mcs, mocus
from repro.ft.scenario import minimal_failure_sets

from tests.strategies import fault_trees


class TestAgainstOracle:
    def test_paper_example_7(self, cooling_tree):
        result = mocus(cooling_tree)
        assert set(result.cutsets.cutsets) == {
            frozenset({"e"}),
            frozenset({"a", "c"}),
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        }

    @given(fault_trees(max_events=7, max_gates=6, min_probability=0.01))
    def test_matches_brute_force_without_cutoff(self, tree):
        expected = set(minimal_failure_sets(tree))
        result = mocus(tree, MocusOptions(cutoff=0.0))
        assert set(result.cutsets.cutsets) == expected

    @given(fault_trees(max_events=7, max_gates=6, min_probability=0.05))
    def test_cutoff_keeps_all_above_threshold(self, tree):
        """With probabilities >= 0.05 and cutoff far below any product of
        seven factors, nothing may be lost."""
        cutoff = 1e-12
        expected = {
            c
            for c in minimal_failure_sets(tree)
            if cutset_probability(
                c, {n: e.probability for n, e in tree.events.items()}
            )
            > cutoff
        }
        result = mocus(tree, MocusOptions(cutoff=cutoff))
        assert set(result.cutsets.cutsets) == expected


class TestCutoff:
    def test_cutoff_drops_improbable_cutsets(self, cooling_tree):
        # Probabilities: {a,c} = 9e-6, {a,d} = {b,c} = {e} = 3e-6,
        # {b,d} = 1e-6.  A cutoff of 4e-6 keeps only {a,c}.
        result = mocus(cooling_tree, MocusOptions(cutoff=4e-6))
        assert set(result.cutsets.cutsets) == {frozenset({"a", "c"})}

    def test_cutoff_boundary_is_exclusive(self, cooling_tree):
        # Cutsets exactly at the cutoff are dropped ("above" the cutoff).
        result = mocus(cooling_tree, MocusOptions(cutoff=9e-6))
        assert frozenset({"a", "c"}) not in set(result.cutsets.cutsets)

    def test_stats_populated(self, cooling_tree):
        result = mocus(cooling_tree)
        assert result.stats.completed >= result.stats.minimal
        assert result.stats.partials_expanded > 0


class TestLimits:
    def _wide_tree(self, n: int):
        b = FaultTreeBuilder()
        names = []
        for i in range(n):
            b.event(f"x{i}", 0.5)
            names.append(f"x{i}")
        b.or_("left", *names[: n // 2])
        b.or_("right", *names[n // 2 :])
        b.and_("top", "left", "right")
        return b.build("top")

    def test_max_partials_raises(self):
        tree = self._wide_tree(20)
        with pytest.raises(CutoffError):
            mocus(tree, MocusOptions(cutoff=0.0, max_partials=10))

    def test_max_cutsets_raises(self):
        tree = self._wide_tree(20)
        with pytest.raises(CutoffError):
            mocus(tree, MocusOptions(cutoff=0.0, max_cutsets=5))

    def test_unknown_top_rejected(self, cooling_tree):
        with pytest.raises(UnknownNodeError):
            mocus(cooling_tree, top="ghost")
        with pytest.raises(UnknownNodeError):
            mocus(cooling_tree, top="a")  # events cannot be tops


class TestSubTop:
    def test_mcs_of_inner_gate(self, cooling_tree):
        result = mocus(cooling_tree, top="pumps")
        assert set(result.cutsets.cutsets) == {
            frozenset({"a", "c"}),
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        }


class TestAtleast:
    def test_two_of_three(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        b.atleast("top", 2, "a", "b", "c")
        result = mocus(b.build("top"))
        assert set(result.cutsets.cutsets) == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }


class TestConstrainedMcs:
    def test_assumed_failure_fails_gate(self, cooling_tree):
        # With a assumed failed, pump1 is already failed: True.
        assert (
            constrained_mcs(
                cooling_tree, "pump1", frozenset(), frozenset({"a"})
            )
            is True
        )

    def test_impossible_gate(self, cooling_tree):
        # Universe empty, nothing assumed: pump1 can never fail.
        assert constrained_mcs(cooling_tree, "pump1", frozenset()) is False

    def test_restricted_universe(self, cooling_tree):
        # Only b may fail: pump1's minimal failure sets over {b} are {{b}}.
        result = constrained_mcs(cooling_tree, "pump1", frozenset({"b"}))
        assert result == [frozenset({"b"})]

    def test_combined_universe_and_assumptions(self, cooling_tree):
        # pumps = AND(pump1, pump2); assume a failed (fails pump1),
        # universe {c, d}: minimal sets are {c} and {d}.
        result = constrained_mcs(
            cooling_tree, "pumps", frozenset({"c", "d"}), frozenset({"a"})
        )
        assert set(result) == {frozenset({"c"}), frozenset({"d"})}

    def test_events_outside_universe_are_functional(self, cooling_tree):
        # pumps with universe {c} and nothing assumed: pump1 can never
        # fail (a, b outside universe), so pumps can never fail.
        assert (
            constrained_mcs(cooling_tree, "pumps", frozenset({"c"})) is False
        )
