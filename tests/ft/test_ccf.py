"""Tests of common-cause-failure models and expansion."""

import math

import pytest

from repro.errors import InvalidProbabilityError, ModelError, UnknownNodeError
from repro.ft.builder import FaultTreeBuilder
from repro.ft.ccf import alpha_factor_group, apply_ccf, beta_factor_group
from repro.ft.mocus import MocusOptions, mocus
from repro.ft.probability import exact_probability


def _two_pump_tree():
    b = FaultTreeBuilder()
    b.event("p1", 1e-3).event("p2", 1e-3)
    b.and_("top", "p1", "p2")
    return b.build("top")


class TestBetaFactor:
    def test_probability_split(self):
        group = beta_factor_group("G", ["p1", "p2"], 1e-3, beta=0.1)
        assert math.isclose(group.independent["p1"], 0.9e-3)
        assert len(group.common) == 1
        covered, probability = group.common[0]
        assert covered == {"p1", "p2"}
        assert math.isclose(probability, 1e-4)

    def test_validation(self):
        with pytest.raises(InvalidProbabilityError):
            beta_factor_group("G", ["p1", "p2"], 1e-3, beta=1.5)
        with pytest.raises(ModelError):
            beta_factor_group("G", ["p1"], 1e-3, beta=0.1)


class TestAlphaFactor:
    def test_two_member_group(self):
        group = alpha_factor_group("G", ["p1", "p2"], 1e-3, [0.95, 0.05])
        # alpha_t = 1*0.95 + 2*0.05 = 1.05.
        assert math.isclose(group.independent["p1"], 0.95 / 1.05 * 1e-3)
        assert len(group.common) == 1
        _, q2 = group.common[0]
        assert math.isclose(q2, 0.05 / 1.05 * 1e-3)

    def test_three_member_group_subsets(self):
        group = alpha_factor_group(
            "G", ["a", "b", "c"], 1e-3, [0.9, 0.07, 0.03]
        )
        sizes = sorted(len(covered) for covered, _ in group.common)
        assert sizes == [2, 2, 2, 3]

    def test_alphas_must_sum_to_one(self):
        with pytest.raises(InvalidProbabilityError):
            alpha_factor_group("G", ["a", "b"], 1e-3, [0.5, 0.4])

    def test_alpha_count_must_match(self):
        with pytest.raises(ModelError):
            alpha_factor_group("G", ["a", "b"], 1e-3, [1.0])


class TestApplyCcf:
    def test_structure(self):
        tree = _two_pump_tree()
        group = beta_factor_group("G", ["p1", "p2"], 1e-3, beta=0.1)
        expanded = apply_ccf(tree, [group])
        # Members became OR gates over the independent part and the CC event.
        assert expanded.is_gate("p1")
        assert "p1#ind" in expanded.events
        assert "G#cc0" in expanded.events
        # The original top logic still references the same names.
        assert expanded.gates["top"].children == ("p1", "p2")

    def test_ccf_dominates_double_failure(self):
        tree = _two_pump_tree()
        without = exact_probability(tree).value  # 1e-6
        group = beta_factor_group("G", ["p1", "p2"], 1e-3, beta=0.1)
        with_ccf = exact_probability(apply_ccf(tree, [group])).value
        # The common-cause term contributes ~1e-4, dwarfing 1e-6.
        assert with_ccf > 50 * without
        assert math.isclose(with_ccf, 1e-4, rel_tol=0.05)

    def test_ccf_cutsets(self):
        tree = _two_pump_tree()
        group = beta_factor_group("G", ["p1", "p2"], 1e-3, beta=0.1)
        cutsets = mocus(apply_ccf(tree, [group]), MocusOptions(cutoff=0.0)).cutsets
        assert frozenset({"G#cc0"}) in set(cutsets.cutsets)
        assert frozenset({"p1#ind", "p2#ind"}) in set(cutsets.cutsets)
        # Mixed cutsets (one independent + the CC event) are non-minimal.
        assert len(cutsets) == 2

    def test_unknown_member_rejected(self):
        tree = _two_pump_tree()
        group = beta_factor_group("G", ["p1", "ghost"], 1e-3, beta=0.1)
        with pytest.raises(UnknownNodeError):
            apply_ccf(tree, [group])

    def test_overlapping_groups_rejected(self):
        tree = _two_pump_tree()
        g1 = beta_factor_group("G1", ["p1", "p2"], 1e-3, beta=0.1)
        g2 = beta_factor_group("G2", ["p2", "p1"], 1e-3, beta=0.1)
        with pytest.raises(ModelError):
            apply_ccf(tree, [g1, g2])
