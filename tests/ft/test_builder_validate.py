"""Tests of the fluent builder and the validation/lint layer."""

import pytest

from repro.errors import DuplicateNameError, ModelError, UnknownNodeError
from repro.ft.builder import FaultTreeBuilder
from repro.ft.tree import GateType
from repro.ft.validate import tree_stats, validate


class TestBuilder:
    def test_chaining(self):
        tree = (
            FaultTreeBuilder("t")
            .event("a", 0.1)
            .event("b", 0.2)
            .or_("top", "a", "b")
            .build("top")
        )
        assert set(tree.events) == {"a", "b"}
        assert tree.gates["top"].gate_type is GateType.OR

    def test_events_bulk(self):
        b = FaultTreeBuilder().events([("a", 0.1), ("b", 0.2)])
        assert b.has_node("a") and b.has_node("b")

    def test_forward_references_allowed(self):
        b = FaultTreeBuilder()
        b.or_("top", "a", "b")  # children declared later
        b.event("a", 0.1).event("b", 0.2)
        tree = b.build("top")
        assert tree.children("top") == ("a", "b")

    def test_duplicate_rejected(self):
        b = FaultTreeBuilder().event("a", 0.1)
        with pytest.raises(DuplicateNameError):
            b.event("a", 0.2)
        with pytest.raises(DuplicateNameError):
            b.or_("a", "a")

    def test_top_must_be_declared_gate(self):
        b = FaultTreeBuilder().event("a", 0.1)
        with pytest.raises(ModelError):
            b.build("a")
        with pytest.raises(ModelError):
            b.build("ghost")

    def test_atleast(self):
        b = FaultTreeBuilder().events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        tree = b.atleast("top", 2, "a", "b", "c").build("top")
        assert tree.gates["top"].k == 2

    def test_duplicate_gate_name_rejected(self):
        b = FaultTreeBuilder().events([("a", 0.1), ("b", 0.1)])
        b.or_("g", "a", "b")
        with pytest.raises(DuplicateNameError):
            b.and_("g", "a", "b")
        with pytest.raises(DuplicateNameError):
            b.event("g", 0.1)

    def test_unknown_child_rejected_at_build(self):
        b = FaultTreeBuilder().event("a", 0.1)
        b.or_("top", "a", "ghost")
        with pytest.raises(UnknownNodeError):
            b.build("top")


class TestValidate:
    def test_clean_tree_has_no_warnings(self, cooling_tree):
        report = validate(cooling_tree)
        assert bool(report)
        assert report.warnings == ()

    def test_unreachable_nodes_warn(self):
        b = FaultTreeBuilder()
        b.event("a", 0.1).event("orphan", 0.2)
        b.or_("top", "a").or_("dead", "orphan")
        report = validate(b.build("top"))
        warned_nodes = {i.node for i in report.warnings}
        assert "orphan" in warned_nodes
        assert "dead" in warned_nodes
        assert not report

    def test_extreme_probabilities_flagged(self):
        b = FaultTreeBuilder()
        b.event("certain", 1.0).event("never", 0.0).event("big", 0.5)
        b.or_("top", "certain", "never", "big")
        report = validate(b.build("top"))
        severities = {i.node: i.severity for i in report.issues}
        assert severities["certain"] == "warning"
        assert severities["never"] == "info"
        assert severities["big"] == "info"

    def test_single_input_atleast_is_not_a_pass_through(self):
        """ATLEAST keeps its ``k`` semantics even with one child, so the
        single-input info does not apply to it."""
        b = FaultTreeBuilder().event("a", 0.01)
        b.atleast("vote", 1, "a").or_("top", "vote", "a")
        report = validate(b.build("top"))
        assert not any(
            i.node == "vote" and "single-input" in i.message
            for i in report.issues
        )

    def test_boundary_probability_is_not_flagged_as_large(self):
        """Exactly 0.1 sits on the rare-event boundary — not above it."""
        b = FaultTreeBuilder().event("edge", 0.1).event("a", 0.01)
        b.or_("top", "edge", "a")
        report = validate(b.build("top"))
        assert not any(i.node == "edge" for i in report.issues)
        assert bool(report)

    def test_single_input_gate_is_info(self):
        b = FaultTreeBuilder().event("a", 0.1)
        b.or_("wrap", "a").or_("top", "wrap")
        report = validate(b.build("top"))
        assert any(
            i.node in ("wrap", "top") and "single-input" in i.message
            for i in report.issues
        )
        assert bool(report)  # infos don't fail validation


class TestTreeStats:
    def test_counts(self, cooling_tree):
        stats = tree_stats(cooling_tree)
        assert stats.n_events == 5
        assert stats.n_gates == 4
        assert stats.n_and == 1
        assert stats.n_or == 3
        assert stats.n_atleast == 0
        assert stats.max_depth == 4  # event -> pump -> pumps -> cooling
        assert stats.mean_fan_in == pytest.approx((2 + 2 + 2 + 2) / 4)
