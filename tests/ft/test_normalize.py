"""Tests of tree transformations: ATLEAST expansion, restriction, pruning."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnknownNodeError
from repro.ft.builder import FaultTreeBuilder
from repro.ft.normalize import expand_atleast, prune, restrict
from repro.ft.scenario import fails, fails_top
from repro.ft.tree import GateType

from tests.strategies import fault_trees


def _vote_tree():
    b = FaultTreeBuilder()
    b.events([("a", 0.1), ("b", 0.1), ("c", 0.1), ("d", 0.1)])
    b.atleast("vote", 2, "a", "b", "c")
    b.or_("top", "vote", "d")
    return b.build("top")


class TestExpandAtleast:
    def test_structure_is_and_or_only(self):
        expanded = expand_atleast(_vote_tree())
        assert all(
            g.gate_type in (GateType.AND, GateType.OR)
            for g in expanded.gates.values()
        )

    def test_degenerate_thresholds(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1)])
        b.atleast("all", 2, "a", "b")
        b.atleast("any", 1, "a", "b")
        b.and_("top", "all", "any")
        expanded = expand_atleast(b.build("top"))
        assert expanded.gates["all"].gate_type is GateType.AND
        assert expanded.gates["any"].gate_type is GateType.OR

    @given(fault_trees(max_events=6, max_gates=5))
    def test_equivalent_on_all_scenarios(self, tree):
        expanded = expand_atleast(tree)
        names = sorted(tree.events)
        for r in range(len(names) + 1):
            for combo in itertools.combinations(names, r):
                scenario = frozenset(combo)
                assert fails_top(tree, scenario) == fails_top(expanded, scenario)


class TestRestrict:
    def test_forcing_or_child_true_collapses(self, cooling_tree):
        restriction = restrict(cooling_tree, "pump1", {"a": True})
        assert restriction.is_constant and restriction.constant is True

    def test_forcing_all_or_children_false_collapses(self, cooling_tree):
        restriction = restrict(cooling_tree, "pump1", {"a": False, "b": False})
        assert restriction.is_constant and restriction.constant is False

    def test_residual_tree_drops_fixed_events(self, cooling_tree):
        restriction = restrict(cooling_tree, "pumps", {"a": True})
        residual = restriction.tree
        assert residual is not None
        assert "a" not in residual.events
        assert set(residual.events) == {"c", "d"}

    def test_event_root(self, cooling_tree):
        restriction = restrict(cooling_tree, "a", {})
        assert not restriction.is_constant
        assert fails_top(restriction.tree, {"a"})
        assert restrict(cooling_tree, "a", {"a": True}).constant is True

    def test_unknown_names_rejected(self, cooling_tree):
        with pytest.raises(UnknownNodeError):
            restrict(cooling_tree, "pump1", {"ghost": True})
        with pytest.raises(UnknownNodeError):
            restrict(cooling_tree, "ghost", {})

    def test_atleast_threshold_reduction(self):
        tree = _vote_tree()
        # Fixing a failed reduces 2-of-3 over {b, c} to 1-of-2 (an OR).
        restriction = restrict(tree, "vote", {"a": True})
        residual = restriction.tree
        assert residual is not None
        assert fails(residual, {"b"}, "vote")
        assert fails(residual, {"c"}, "vote")
        # Fixing a functional leaves 2-of-2 (an AND).
        restriction = restrict(tree, "vote", {"a": False})
        residual = restriction.tree
        assert not fails(residual, {"b"}, "vote")
        assert fails(residual, {"b", "c"}, "vote")

    @given(
        fault_trees(max_events=6, max_gates=5),
        st.dictionaries(st.integers(0, 5), st.booleans(), max_size=4),
    )
    def test_restriction_semantics(self, tree, raw_assignment):
        """The residual agrees with the original under every completion.

        Free events may disappear from the residual tree when they only
        occur under gates the assignment collapsed; the property then
        says they are *irrelevant*: dropping them from the scenario must
        not change the outcome.
        """
        names = sorted(tree.events)
        assignment = {
            names[i]: value for i, value in raw_assignment.items() if i < len(names)
        }
        restriction = restrict(tree, tree.top, assignment)
        free = [n for n in names if n not in assignment]
        fixed_failed = {n for n, v in assignment.items() if v}
        residual_events = (
            frozenset() if restriction.is_constant else frozenset(restriction.tree.events)
        )
        for r in range(len(free) + 1):
            for combo in itertools.combinations(free, r):
                scenario = frozenset(combo) | fixed_failed
                expected = fails_top(tree, scenario)
                if restriction.is_constant:
                    assert restriction.constant == expected
                else:
                    kept = frozenset(combo) & residual_events
                    assert fails_top(restriction.tree, kept) == expected


class TestPrune:
    def test_unreachable_nodes_removed(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("orphan", 0.2)])
        b.or_("top", "a")
        b.or_("dead", "orphan")
        tree = b.build("top")
        pruned = prune(tree)
        assert set(pruned.events) == {"a"}
        assert set(pruned.gates) == {"top"}
