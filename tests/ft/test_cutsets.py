"""Unit and property tests of the cutset algebra."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ft.cutsets import (
    CutSetList,
    cutset_probability,
    minimize,
    verify_minimal,
)

PROBS = {"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.4, "e": 0.5}


def _family(*sets):
    return [frozenset(s) for s in sets]


class TestMinimize:
    def test_removes_supersets(self):
        family = _family({"a"}, {"a", "b"}, {"b", "c"})
        assert set(minimize(family)) == {frozenset({"a"}), frozenset({"b", "c"})}

    def test_removes_duplicates(self):
        family = _family({"a", "b"}, {"b", "a"})
        assert minimize(family) == [frozenset({"a", "b"})]

    def test_empty_set_dominates_all(self):
        family = _family({"a"}, set(), {"b", "c"})
        assert minimize(family) == [frozenset()]

    def test_empty_family(self):
        assert minimize([]) == []

    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcdefgh"), min_size=1, max_size=5),
            max_size=40,
        )
    )
    def test_against_brute_force(self, family):
        expected = {
            c
            for c in set(family)
            if not any(o <= c and o != c for o in set(family))
        }
        result = minimize(family)
        assert set(result) == expected
        assert len(result) == len(set(result))
        assert verify_minimal(result)

    def test_large_sets_use_fallback_path(self):
        # Sets bigger than the submask-enumeration limit exercise the
        # bucket-scan fallback.
        big = frozenset(f"x{i}" for i in range(20))
        small = frozenset(["x0", "x1"])
        assert set(minimize([big, small])) == {small}


class TestCutsetProbability:
    def test_product(self):
        assert math.isclose(
            cutset_probability(frozenset({"a", "b"}), PROBS), 0.1 * 0.2
        )

    def test_empty_cutset_is_certain(self):
        assert cutset_probability(frozenset(), PROBS) == 1.0


class TestCutSetList:
    def test_sorting_by_probability(self):
        cl = CutSetList.from_cutsets(_family({"a"}, {"e"}, {"b", "c"}), PROBS)
        assert cl[0] == frozenset({"e"})  # 0.5 first
        assert cl[1] == frozenset({"a"})
        assert len(cl) == 3

    def test_rare_event_is_sum(self):
        cl = CutSetList.from_cutsets(_family({"a"}, {"b"}), PROBS)
        assert math.isclose(cl.rare_event(), 0.1 + 0.2)

    def test_mcub_vs_rare_event_ordering(self):
        cl = CutSetList.from_cutsets(_family({"a"}, {"b"}, {"c"}), PROBS)
        exact_union = 1 - 0.9 * 0.8 * 0.7  # disjoint events: independent union
        assert math.isclose(cl.min_cut_upper_bound(), exact_union, rel_tol=1e-12)
        assert cl.min_cut_upper_bound() <= cl.rare_event()

    def test_mcub_saturates_at_one(self):
        probs = {"a": 1.0}
        cl = CutSetList.from_cutsets(_family({"a"}), probs)
        assert cl.min_cut_upper_bound() == 1.0

    def test_inclusion_exclusion_exact_for_overlapping(self):
        # Cutsets {a,c} and {b,c} overlap on c; inclusion-exclusion is exact.
        cl = CutSetList.from_cutsets(_family({"a", "c"}, {"b", "c"}), PROBS)
        expected = 0.1 * 0.3 + 0.2 * 0.3 - 0.1 * 0.2 * 0.3
        assert math.isclose(cl.inclusion_exclusion(), expected, rel_tol=1e-12)

    def test_inclusion_exclusion_truncation_brackets(self):
        family = _family({"a"}, {"b"}, {"c"}, {"d"})
        cl = CutSetList.from_cutsets(family, PROBS)
        exact = cl.inclusion_exclusion()
        upper = cl.inclusion_exclusion(max_terms=1)
        lower = cl.inclusion_exclusion(max_terms=2)
        assert lower <= exact <= upper

    def test_inclusion_exclusion_guard(self):
        probs = {f"x{i}": 0.01 for i in range(30)}
        family = [frozenset({f"x{i}"}) for i in range(30)]
        cl = CutSetList.from_cutsets(family, probs)
        with pytest.raises(ValueError):
            cl.inclusion_exclusion()
        assert cl.inclusion_exclusion(max_terms=1) > 0.0

    def test_truncate(self):
        cl = CutSetList.from_cutsets(_family({"a"}, {"a", "b"}, {"e"}), PROBS)
        kept = cl.truncate(0.15)
        assert set(kept) == {frozenset({"e"})}  # 0.5 survives, 0.1 cut

    def test_filtered_and_events_involved(self):
        cl = CutSetList.from_cutsets(_family({"a"}, {"b", "c"}), PROBS)
        only_small = cl.filtered(lambda c: len(c) == 1)
        assert set(only_small) == {frozenset({"a"})}
        assert cl.events_involved() == {"a", "b", "c"}

    def test_size_histogram(self):
        cl = CutSetList.from_cutsets(
            _family({"a"}, {"b"}, {"c", "d"}), PROBS
        )
        assert cl.size_histogram() == {1: 2, 2: 1}

    def test_from_cutsets_minimises_by_default(self):
        cl = CutSetList.from_cutsets(_family({"a"}, {"a", "b"}), PROBS)
        assert set(cl) == {frozenset({"a"})}

    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcde"), min_size=1, max_size=3),
            min_size=1,
            max_size=15,
        )
    )
    def test_aggregation_ordering_property(self, family):
        """For any MCS family: MCUB <= rare-event sum; both non-negative."""
        cl = CutSetList.from_cutsets(family, PROBS)
        assert 0.0 <= cl.min_cut_upper_bound() <= min(1.0, cl.rare_event()) + 1e-12
