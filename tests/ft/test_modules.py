"""Tests of independent-module detection."""

from hypothesis import given

from repro.ft.builder import FaultTreeBuilder
from repro.ft.modules import find_modules

from tests.strategies import fault_trees


class TestKnownModules:
    def test_tree_shaped_model_every_gate_is_module(self, cooling_tree):
        report = find_modules(cooling_tree)
        # The cooling example is a proper tree (no sharing): every gate
        # is a module.
        assert set(report.modules) == {"pump1", "pump2", "pumps", "cooling"}

    def test_shared_event_breaks_modules(self):
        b = FaultTreeBuilder()
        b.events([("shared", 0.1), ("x", 0.1), ("y", 0.1)])
        b.or_("g1", "shared", "x")
        b.or_("g2", "shared", "y")
        b.and_("top", "g1", "g2")
        report = find_modules(b.build("top"))
        assert "g1" not in report.modules
        assert "g2" not in report.modules
        assert "top" in report.modules

    def test_partial_sharing(self):
        b = FaultTreeBuilder()
        b.events([("shared", 0.1), ("x", 0.1), ("y", 0.1), ("z", 0.1)])
        b.or_("impure", "shared", "x")
        b.or_("pure", "y", "z")
        b.and_("mid", "impure", "pure")
        b.or_("top", "mid", "shared")
        report = find_modules(b.build("top"))
        assert "pure" in report.modules
        assert "impure" not in report.modules
        assert "mid" not in report.modules  # contains the shared event

    def test_late_reencounter_does_not_mask_shared_child(self):
        """Regression: a re-visit of the gate *after* the outside
        reference to its child must not stretch the stamp window.

        ``g0 = {e0}`` is shared by ``g1`` (which also references ``e0``
        directly — an outside parent) and re-encountered later through
        ``g4``; the late re-visit used to push ``last[g0]`` past
        ``e0``'s re-visit and report ``g0`` as a module.
        """
        b = FaultTreeBuilder()
        b.events([(f"e{i}", 0.1) for i in range(6)])
        b.or_("g0", "e0")
        b.or_("g1", "g0", "e0", "e1", "e4")
        b.or_("g2", "e1", "e4", "e2")
        b.or_("g3", "e2", "g1")
        b.or_("g4", "g0", "g2")
        b.or_("g5", "e5", "g0", "e3", "g3", "g4")
        report = find_modules(b.build("g5"))
        assert "g0" not in report.modules
        assert set(report.modules) == {"g5"}

    def test_maximal_modules_exclude_nested(self, cooling_tree):
        report = find_modules(cooling_tree)
        # pumps contains pump1/pump2; only pumps is maximal (top excluded).
        assert "pumps" in report.maximal
        assert "pump1" not in report.maximal
        assert "pump2" not in report.maximal


class TestModuleProperty:
    @given(fault_trees(max_events=7, max_gates=6))
    def test_module_definition(self, tree):
        """A reported module's descendants have no parents outside it."""
        report = find_modules(tree)
        reachable = tree.reachable_from_top()
        for gate_name in report.modules:
            inside = tree.gates_under(gate_name)
            for node in tree.descendants(gate_name):
                for parent in tree.parents(node):
                    if parent in reachable:
                        assert parent in inside, (
                            f"{gate_name} reported as module but {node} has "
                            f"outside parent {parent}"
                        )

    @given(fault_trees(max_events=7, max_gates=6))
    def test_top_is_always_module(self, tree):
        report = find_modules(tree)
        assert tree.top in report.modules
