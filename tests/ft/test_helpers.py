"""Direct tests of small helpers exercised only indirectly elsewhere."""

from repro.ft.cutsets import is_subsumed
from repro.ft.scenario import restrict_scenario


class TestRestrictScenario:
    def test_overlay_adds_and_removes(self):
        scenario = frozenset({"a", "b"})
        result = restrict_scenario(scenario, {"b": False, "c": True})
        assert result == frozenset({"a", "c"})

    def test_empty_overlay_is_identity(self):
        scenario = frozenset({"x"})
        assert restrict_scenario(scenario, {}) == scenario

    def test_original_not_mutated(self):
        scenario = frozenset({"a"})
        restrict_scenario(scenario, {"a": False})
        assert scenario == frozenset({"a"})


class TestIsSubsumed:
    def _indexed(self, *sets):
        family = [frozenset(s) for s in sets]
        lookup = set(family)
        buckets: dict[str, list[frozenset[str]]] = {}
        for member in family:
            for element in member:
                buckets.setdefault(element, []).append(member)
        return lookup, buckets

    def test_subset_detected(self):
        lookup, buckets = self._indexed({"a"}, {"b", "c"})
        assert is_subsumed(frozenset({"a", "x"}), lookup, buckets)
        assert is_subsumed(frozenset({"b", "c", "d"}), lookup, buckets)

    def test_exact_duplicate_is_subsumed(self):
        lookup, buckets = self._indexed({"a", "b"})
        assert is_subsumed(frozenset({"a", "b"}), lookup, buckets)

    def test_unrelated_sets_not_subsumed(self):
        lookup, buckets = self._indexed({"a", "b"}, {"c"})
        assert not is_subsumed(frozenset({"a", "d"}), lookup, buckets)

    def test_large_candidate_uses_bucket_path(self):
        lookup, buckets = self._indexed({"x0", "x1"})
        big = frozenset(f"x{i}" for i in range(20))
        assert is_subsumed(big, lookup, buckets)
        other = frozenset(f"y{i}" for i in range(20))
        assert not is_subsumed(other, lookup, buckets)
