"""Tests of the structural simplification pass."""

import itertools

from hypothesis import given

from repro.ft.builder import FaultTreeBuilder
from repro.ft.normalize import simplify
from repro.ft.scenario import fails_top
from repro.ft.tree import GateType

from tests.strategies import fault_trees


class TestRewrites:
    def test_pass_through_collapsed(self):
        b = FaultTreeBuilder()
        b.event("a", 0.1).event("b", 0.2)
        b.or_("wrap", "a")
        b.and_("top", "wrap", "b")
        simplified = simplify(b.build("top"))
        assert "wrap" not in simplified.gates
        assert set(simplified.gates["top"].children) == {"a", "b"}

    def test_chain_of_pass_throughs(self):
        b = FaultTreeBuilder()
        b.event("a", 0.1).event("x", 0.1)
        b.or_("w1", "a").or_("w2", "w1").or_("w3", "w2")
        b.and_("top", "w3", "x")
        simplified = simplify(b.build("top"))
        assert set(simplified.gates) == {"top"}
        assert set(simplified.gates["top"].children) == {"a", "x"}

    def test_same_type_flattening(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        b.or_("inner", "a", "b")
        b.or_("top", "inner", "c")
        simplified = simplify(b.build("top"))
        assert set(simplified.gates) == {"top"}
        assert set(simplified.gates["top"].children) == {"a", "b", "c"}

    def test_shared_gates_not_inlined(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        b.or_("shared", "a", "b")
        b.or_("left", "shared", "c")
        b.and_("top", "left", "shared")
        simplified = simplify(b.build("top"))
        # shared has two parents: it must survive.
        assert "shared" in simplified.gates

    def test_mixed_types_not_flattened(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        b.and_("inner", "a", "b")
        b.or_("top", "inner", "c")
        simplified = simplify(b.build("top"))
        assert "inner" in simplified.gates

    def test_single_input_top_kept(self):
        b = FaultTreeBuilder()
        b.event("a", 0.1)
        b.or_("top", "a")
        simplified = simplify(b.build("top"))
        assert simplified.top == "top"
        assert simplified.gates["top"].children == ("a",)

    def test_atleast_untouched(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        b.atleast("vote", 2, "a", "b", "c")
        b.or_("top", "vote")
        simplified = simplify(b.build("top"))
        assert simplified.gates["vote"].gate_type is GateType.ATLEAST

    def test_unreachable_pruned(self):
        b = FaultTreeBuilder()
        b.event("a", 0.1).event("orphan", 0.2)
        b.or_("top", "a").or_("dead", "orphan")
        simplified = simplify(b.build("top"))
        assert "dead" not in simplified.gates
        assert "orphan" not in simplified.events


class TestEquivalence:
    @given(fault_trees(max_events=6, max_gates=6))
    def test_function_preserved(self, tree):
        simplified = simplify(tree)
        names = sorted(tree.events_under(tree.top))
        for r in range(len(names) + 1):
            for combo in itertools.combinations(names, r):
                scenario = frozenset(combo)
                assert fails_top(tree, scenario) == fails_top(
                    simplified, scenario & frozenset(simplified.events)
                )

    @given(fault_trees(max_events=6, max_gates=6))
    def test_never_grows(self, tree):
        simplified = simplify(tree)
        assert len(simplified.gates) <= len(tree.gates)

    @given(fault_trees(max_events=6, max_gates=6))
    def test_idempotent(self, tree):
        once = simplify(tree)
        twice = simplify(once)
        assert set(once.gates) == set(twice.gates)
        assert all(
            once.gates[n].children == twice.gates[n].children for n in once.gates
        )
