"""Unit tests for the static fault-tree model."""

import pytest

from repro.errors import (
    CyclicModelError,
    DuplicateNameError,
    InvalidProbabilityError,
    ModelError,
    UnknownNodeError,
)
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType


def _tiny():
    return FaultTree(
        "top",
        [BasicEvent("a", 0.1), BasicEvent("b", 0.2), BasicEvent("c", 0.3)],
        [
            Gate("left", GateType.OR, ("a", "b")),
            Gate("top", GateType.AND, ("left", "c")),
        ],
    )


class TestBasicEvent:
    def test_probability_bounds(self):
        BasicEvent("ok0", 0.0)
        BasicEvent("ok1", 1.0)
        with pytest.raises(InvalidProbabilityError):
            BasicEvent("bad", 1.5)
        with pytest.raises(InvalidProbabilityError):
            BasicEvent("bad", -0.1)


class TestGate:
    def test_needs_children(self):
        with pytest.raises(ModelError):
            Gate("g", GateType.AND, ())

    def test_rejects_duplicate_children(self):
        with pytest.raises(ModelError):
            Gate("g", GateType.OR, ("a", "a"))

    def test_atleast_needs_valid_k(self):
        Gate("g", GateType.ATLEAST, ("a", "b", "c"), k=2)
        with pytest.raises(ModelError):
            Gate("g", GateType.ATLEAST, ("a", "b"))
        with pytest.raises(ModelError):
            Gate("g", GateType.ATLEAST, ("a", "b"), k=3)
        with pytest.raises(ModelError):
            Gate("g", GateType.ATLEAST, ("a", "b"), k=0)

    def test_k_forbidden_on_and_or(self):
        with pytest.raises(ModelError):
            Gate("g", GateType.AND, ("a", "b"), k=1)


class TestConstruction:
    def test_duplicate_event_names_rejected(self):
        with pytest.raises(DuplicateNameError):
            FaultTree(
                "g",
                [BasicEvent("a", 0.1), BasicEvent("a", 0.2)],
                [Gate("g", GateType.OR, ("a",))],
            )

    def test_gate_event_name_collision_rejected(self):
        with pytest.raises(DuplicateNameError):
            FaultTree(
                "a",
                [BasicEvent("a", 0.1)],
                [Gate("a", GateType.OR, ("a",))],
            )

    def test_unknown_child_rejected(self):
        with pytest.raises(UnknownNodeError):
            FaultTree(
                "g",
                [BasicEvent("a", 0.1)],
                [Gate("g", GateType.OR, ("a", "ghost"))],
            )

    def test_top_must_be_gate(self):
        with pytest.raises(ModelError):
            FaultTree("a", [BasicEvent("a", 0.1)], [Gate("g", GateType.OR, ("a",))])

    def test_cycle_rejected(self):
        with pytest.raises(CyclicModelError):
            FaultTree(
                "g1",
                [BasicEvent("a", 0.1)],
                [
                    Gate("g1", GateType.OR, ("g2", "a")),
                    Gate("g2", GateType.OR, ("g1",)),
                ],
            )

    def test_self_cycle_rejected(self):
        with pytest.raises(CyclicModelError):
            FaultTree(
                "g",
                [BasicEvent("a", 0.1)],
                [Gate("g", GateType.OR, ("g", "a"))],
            )


class TestQueries:
    def test_membership_and_kinds(self):
        tree = _tiny()
        assert tree.is_event("a") and not tree.is_gate("a")
        assert tree.is_gate("top") and not tree.is_event("top")
        assert "a" in tree and "top" in tree and "nope" not in tree

    def test_children_and_probability(self):
        tree = _tiny()
        assert tree.children("left") == ("a", "b")
        assert tree.children("a") == ()
        assert tree.probability("b") == 0.2
        with pytest.raises(UnknownNodeError):
            tree.children("ghost")
        with pytest.raises(UnknownNodeError):
            tree.probability("left")

    def test_parents(self):
        tree = _tiny()
        assert tree.parents("a") == ("left",)
        assert tree.parents("left") == ("top",)
        assert tree.parents("top") == ()

    def test_topological_order(self):
        tree = _tiny()
        order = tree.topological_order()
        assert set(order) == {"a", "b", "c", "left", "top"}
        assert order.index("left") < order.index("top")
        assert order.index("a") < order.index("left")

    def test_events_and_gates_under(self):
        tree = _tiny()
        assert tree.events_under("left") == {"a", "b"}
        assert tree.events_under("top") == {"a", "b", "c"}
        assert tree.events_under("a") == {"a"}
        assert tree.gates_under("top") == {"left", "top"}
        assert tree.gates_under("left") == {"left"}
        assert tree.descendants("top") == {"a", "b", "c", "left"}

    def test_events_under_shared_subtree(self):
        # A DAG where one event feeds two gates.
        tree = FaultTree(
            "top",
            [BasicEvent("a", 0.1), BasicEvent("b", 0.1)],
            [
                Gate("g1", GateType.OR, ("a",)),
                Gate("g2", GateType.OR, ("a", "b")),
                Gate("top", GateType.AND, ("g1", "g2")),
            ],
        )
        assert tree.events_under("top") == {"a", "b"}
        assert tree.parents("a") == ("g1", "g2")


class TestDerivedTrees:
    def test_with_probabilities(self):
        tree = _tiny()
        updated = tree.with_probabilities({"a": 0.5})
        assert updated.probability("a") == 0.5
        assert updated.probability("b") == 0.2
        assert tree.probability("a") == 0.1  # original untouched
        with pytest.raises(UnknownNodeError):
            tree.with_probabilities({"ghost": 0.5})

    def test_subtree(self):
        tree = _tiny()
        sub = tree.subtree("left")
        assert sub.top == "left"
        assert set(sub.events) == {"a", "b"}
        assert set(sub.gates) == {"left"}
        with pytest.raises(UnknownNodeError):
            tree.subtree("a")

    def test_reachable_from_top(self):
        events = [BasicEvent("a", 0.1), BasicEvent("orphan", 0.5)]
        gates = [Gate("top", GateType.OR, ("a",))]
        tree = FaultTree("top", events, gates)
        assert "orphan" not in tree.reachable_from_top()
        assert tree.reachable_from_top() == {"a", "top"}
