"""Tests of the importance measures."""

import math

import pytest

from repro.ft.builder import FaultTreeBuilder
from repro.ft.importance import (
    importance,
    rank_by_fussell_vesely,
    top_probability_with,
)
from repro.ft.mocus import mocus


@pytest.fixture
def cooling_cutsets(cooling_tree):
    return mocus(cooling_tree).cutsets


class TestFussellVesely:
    def test_fv_is_containing_fraction(self, cooling_cutsets):
        measures = importance(cooling_cutsets)
        total = cooling_cutsets.rare_event()
        # a appears in {a,c} (9e-6) and {a,d} (3e-6).
        assert math.isclose(measures["a"].fussell_vesely, 12e-6 / total, rel_tol=1e-9)
        # e appears only in {e} (3e-6).
        assert math.isclose(measures["e"].fussell_vesely, 3e-6 / total, rel_tol=1e-9)

    def test_symmetric_events_have_equal_fv(self, cooling_cutsets):
        measures = importance(cooling_cutsets)
        assert math.isclose(
            measures["a"].fussell_vesely,
            measures["c"].fussell_vesely,
            rel_tol=1e-12,
        )
        assert math.isclose(
            measures["b"].fussell_vesely,
            measures["d"].fussell_vesely,
            rel_tol=1e-12,
        )

    def test_ranking_order(self, cooling_cutsets):
        ranked = rank_by_fussell_vesely(cooling_cutsets)
        names = [name for name, _ in ranked]
        # a and c (3e-3 each, in the heavy cutsets) outrank b and d.
        assert set(names[:2]) == {"a", "c"}
        values = [fv for _, fv in ranked]
        assert values == sorted(values, reverse=True)


class TestBirnbaum:
    def test_birnbaum_is_derivative(self, cooling_cutsets):
        """Birnbaum(a) equals the finite-difference derivative of the
        rare-event sum with respect to p(a)."""
        measures = importance(cooling_cutsets)
        base = cooling_cutsets.rare_event()
        delta = 1e-6
        bumped = top_probability_with(cooling_cutsets, {"a": 3e-3 + delta})
        numeric = (bumped - base) / delta
        assert math.isclose(measures["a"].birnbaum, numeric, rel_tol=1e-6)

    def test_zero_probability_event(self):
        b = FaultTreeBuilder()
        b.event("z", 0.0).event("x", 0.1)
        b.and_("top", "z", "x")
        cutsets = mocus(b.build("top"), options=None).cutsets
        # With cutoff, the zero-probability cutset disappears entirely;
        # regenerate without cutoff to exercise the p=0 branch.
        from repro.ft.mocus import MocusOptions

        cutsets = mocus(b.build("top"), MocusOptions(cutoff=0.0)).cutsets
        measures = importance(cutsets)
        assert measures["z"].fussell_vesely == 0.0
        assert math.isclose(measures["z"].birnbaum, 0.1, rel_tol=1e-12)


class TestRawRrw:
    def test_raw_matches_reevaluation(self, cooling_cutsets):
        measures = importance(cooling_cutsets)
        base = cooling_cutsets.rare_event()
        achieved = top_probability_with(cooling_cutsets, {"a": 1.0})
        assert math.isclose(
            measures["a"].risk_achievement_worth, achieved / base, rel_tol=1e-9
        )

    def test_rrw_matches_reevaluation(self, cooling_cutsets):
        measures = importance(cooling_cutsets)
        base = cooling_cutsets.rare_event()
        reduced = top_probability_with(cooling_cutsets, {"a": 0.0})
        assert math.isclose(
            measures["a"].risk_reduction_worth, base / reduced, rel_tol=1e-9
        )

    def test_rrw_infinite_when_event_in_every_cutset(self):
        b = FaultTreeBuilder()
        b.event("a", 0.1).event("x", 0.2)
        b.and_("top", "a", "x")
        cutsets = mocus(b.build("top")).cutsets
        measures = importance(cutsets)
        assert math.isinf(measures["a"].risk_reduction_worth)


class TestBoundaries:
    """The documented p=0 / p=1 / zero-top conventions."""

    @staticmethod
    def _cutsets(builder, top="top"):
        from repro.ft.mocus import MocusOptions

        return mocus(builder.build(top), MocusOptions(cutoff=0.0)).cutsets

    def test_zero_probability_event_raw_is_ratio(self):
        """p(z)=0: FV is 0 but RAW still reports the growth factor of
        forcing z certain (the cutset's rest probability enters the top)."""
        b = FaultTreeBuilder()
        b.event("z", 0.0).event("x", 0.1).event("y", 0.3)
        b.and_("zx", "z", "x")
        b.or_("top", "zx", "y")
        measures = importance(self._cutsets(b))
        assert measures["z"].fussell_vesely == 0.0
        assert math.isclose(measures["z"].birnbaum, 0.1, rel_tol=1e-12)
        # achieved = 0.3 + 0.1, base = 0.3.
        assert math.isclose(
            measures["z"].risk_achievement_worth, 0.4 / 0.3, rel_tol=1e-12
        )
        assert measures["z"].risk_reduction_worth == pytest.approx(1.0)

    def test_certain_event_raw_is_one(self):
        """p(a)=1: the event is already certain, RAW cannot exceed 1."""
        b = FaultTreeBuilder()
        b.event("a", 1.0).event("x", 0.2)
        b.and_("top", "a", "x")
        measures = importance(self._cutsets(b))
        assert measures["a"].risk_achievement_worth == pytest.approx(1.0)
        assert measures["a"].fussell_vesely == pytest.approx(1.0)
        assert math.isinf(measures["a"].risk_reduction_worth)

    def test_zero_top_degenerate_measures_are_neutral(self):
        """All-zero probabilities: nothing to achieve against or reduce —
        RRW must be 1.0, and RAW 1.0 for an event whose forcing still
        leaves the top at zero (not inf across the board)."""
        b = FaultTreeBuilder()
        b.event("z1", 0.0).event("z2", 0.0)
        b.and_("top", "z1", "z2")
        measures = importance(self._cutsets(b))
        # Forcing z1 certain leaves p(top) = p(z2) = 0: truly neutral.
        assert measures["z1"].risk_achievement_worth == pytest.approx(1.0)
        assert measures["z1"].risk_reduction_worth == pytest.approx(1.0)
        assert measures["z1"].fussell_vesely == 0.0

    def test_zero_top_with_positive_achievement_is_inf(self):
        """Zero top but forcing the event creates risk: RAW = inf."""
        b = FaultTreeBuilder()
        b.event("z", 0.0).event("x", 0.25)
        b.and_("top", "z", "x")
        measures = importance(self._cutsets(b))
        assert math.isinf(measures["z"].risk_achievement_worth)
        assert measures["z"].risk_reduction_worth == pytest.approx(1.0)
