"""Tests of the top-probability aggregations and their ordering."""

import math

from hypothesis import given

from repro.ft.mocus import MocusOptions
from repro.ft.probability import (
    evaluate_cutsets,
    exact_probability,
    min_cut_upper_bound_probability,
    rare_event_probability,
)
from repro.ft.scenario import exact_top_probability

from tests.strategies import fault_trees


class TestKnownValues:
    def test_rare_event_paper_example(self, cooling_tree):
        result = rare_event_probability(cooling_tree)
        # Sum over the five MCSs of Example 7.
        expected = 3e-6 + 9e-6 + 3e-6 + 3e-6 + 1e-6
        assert math.isclose(result.value, expected, rel_tol=1e-12)
        assert result.method == "rare-event"
        assert result.n_cutsets == 5

    def test_exact_matches_brute_force(self, cooling_tree):
        result = exact_probability(cooling_tree)
        assert math.isclose(
            result.value, exact_top_probability(cooling_tree), rel_tol=1e-9
        )
        assert result.method == "exact-bdd"

    def test_cutsets_can_be_reused(self, cooling_tree):
        cutsets = evaluate_cutsets(cooling_tree)
        a = rare_event_probability(cooling_tree, cutsets=cutsets)
        b = min_cut_upper_bound_probability(cooling_tree, cutsets=cutsets)
        assert a.n_cutsets == b.n_cutsets == len(cutsets)


class TestOrdering:
    @given(fault_trees(max_events=7, max_gates=6, min_probability=0.01, max_probability=0.5))
    def test_exact_between_mcub_and_rare_event(self, tree):
        """For coherent trees: exact <= MCUB <= rare-event sum.

        (MCUB is exact for a single cutset and an upper bound in
        general; the rare-event sum is the loosest.)
        """
        options = MocusOptions(cutoff=0.0)
        cutsets = evaluate_cutsets(tree, options)
        exact = exact_probability(tree).value
        mcub = min_cut_upper_bound_probability(tree, cutsets=cutsets).value
        rare = rare_event_probability(tree, cutsets=cutsets).value
        assert exact <= mcub + 1e-9
        assert mcub <= rare + 1e-9

    @given(fault_trees(max_events=6, max_gates=5, min_probability=0.001, max_probability=0.01))
    def test_rare_event_tight_for_small_probabilities(self, tree):
        """With small probabilities the rare-event error is second order."""
        options = MocusOptions(cutoff=0.0)
        cutsets = evaluate_cutsets(tree, options)
        exact = exact_probability(tree).value
        rare = rare_event_probability(tree, cutsets=cutsets).value
        if exact > 0.0:
            assert rare / exact < 1.05
