"""Unit and property tests of the scenario semantics."""

import math

import pytest
from hypothesis import given

from repro.errors import UnknownNodeError
from repro.ft.builder import FaultTreeBuilder
from repro.ft.scenario import (
    evaluate,
    exact_top_probability,
    failure_scenarios,
    fails,
    fails_top,
    minimal_failure_sets,
    scenario_probability,
)

from tests.strategies import fault_trees


class TestEvaluate:
    def test_paper_example(self, cooling_tree):
        status = evaluate(cooling_tree, {"a", "d"})
        assert status["pump1"] and status["pump2"]
        assert status["pumps"] and status["cooling"]
        assert not status["e"]

    def test_or_gate_any_input(self, cooling_tree):
        assert fails(cooling_tree, {"a"}, "pump1")
        assert fails(cooling_tree, {"b"}, "pump1")
        assert not fails(cooling_tree, {"c"}, "pump1")

    def test_and_gate_all_inputs(self, cooling_tree):
        assert not fails(cooling_tree, {"a"}, "pumps")
        assert fails(cooling_tree, {"a", "c"}, "pumps")

    def test_empty_scenario_fails_nothing(self, cooling_tree):
        assert not fails_top(cooling_tree, frozenset())

    def test_unknown_event_rejected(self, cooling_tree):
        with pytest.raises(UnknownNodeError):
            fails_top(cooling_tree, {"ghost"})
        with pytest.raises(UnknownNodeError):
            fails_top(cooling_tree, {"pump1"})  # gates are not scenario members

    def test_atleast_gate(self):
        b = FaultTreeBuilder()
        b.events([("a", 0.1), ("b", 0.1), ("c", 0.1)])
        b.atleast("top", 2, "a", "b", "c")
        tree = b.build("top")
        assert not fails_top(tree, {"a"})
        assert fails_top(tree, {"a", "c"})
        assert fails_top(tree, {"a", "b", "c"})


class TestProbabilities:
    def test_scenario_probability_paper_example_1(self, cooling_tree):
        # p({a, d}) from paper Example 1 is approximately 2.988e-6.
        p = scenario_probability(cooling_tree, {"a", "d"})
        assert math.isclose(p, 2.988e-6, rel_tol=1e-3)

    def test_scenario_probabilities_sum_to_one(self, cooling_tree):
        import itertools

        names = sorted(cooling_tree.events)
        total = 0.0
        for r in range(len(names) + 1):
            for combo in itertools.combinations(names, r):
                total += scenario_probability(cooling_tree, frozenset(combo))
        assert math.isclose(total, 1.0, rel_tol=1e-12)

    def test_exact_top_probability_known_value(self, cooling_tree):
        # p = 1 - (1 - p_pumps)(1 - p_e) with p_pumps = p1 * p2.
        p1 = 1 - (1 - 3e-3) * (1 - 1e-3)
        p2 = p1
        expected = 1 - (1 - p1 * p2) * (1 - 3e-6)
        # Loose tolerance: the brute-force sum accumulates rounding from
        # 2^5 scenario terms of wildly different magnitudes.
        assert math.isclose(exact_top_probability(cooling_tree), expected, rel_tol=1e-6)


class TestEnumeration:
    def test_failure_scenarios_are_failures(self, cooling_tree):
        scenarios = list(failure_scenarios(cooling_tree))
        assert scenarios
        for scenario in scenarios:
            assert fails_top(cooling_tree, scenario)

    def test_minimal_failure_sets_paper_example_7(self, cooling_tree):
        minimal = {frozenset(s) for s in minimal_failure_sets(cooling_tree)}
        assert minimal == {
            frozenset({"e"}),
            frozenset({"a", "c"}),
            frozenset({"a", "d"}),
            frozenset({"b", "c"}),
            frozenset({"b", "d"}),
        }

    def test_enumeration_guards(self, cooling_tree):
        b = FaultTreeBuilder()
        for i in range(25):
            b.event(f"x{i}", 0.1)
        b.or_("top", *[f"x{i}" for i in range(25)])
        big = b.build("top")
        with pytest.raises(ValueError):
            list(failure_scenarios(big))
        with pytest.raises(ValueError):
            minimal_failure_sets(big)


class TestMonotonicity:
    @given(fault_trees(max_events=6, max_gates=5))
    def test_coherence_failing_more_cannot_unfail(self, tree):
        """Coherent trees are monotone: adding failures never repairs the top."""
        names = sorted(tree.events)
        scenario = frozenset(names[::2])
        bigger = frozenset(names)
        if fails_top(tree, scenario):
            assert fails_top(tree, bigger)

    @given(fault_trees(max_events=6, max_gates=5))
    def test_supersets_of_minimal_sets_fail(self, tree):
        minimal = minimal_failure_sets(tree)
        all_events = frozenset(tree.events)
        for cutset in minimal[:5]:
            assert fails_top(tree, cutset)
            assert fails_top(tree, all_events | cutset)
