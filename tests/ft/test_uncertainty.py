"""Tests of lognormal uncertainty propagation."""

import math

import pytest

from repro.errors import ModelError
from repro.ft.cutsets import CutSetList
from repro.ft.mocus import mocus
from repro.ft.uncertainty import LogNormal, propagate


class TestLogNormal:
    def test_sigma_from_error_factor(self):
        d = LogNormal(1e-3, error_factor=3.0)
        assert math.isclose(d.sigma, math.log(3.0) / 1.6448536269514722)

    def test_error_factor_one_is_deterministic(self):
        import numpy as np

        d = LogNormal(1e-3, error_factor=1.0)
        samples = d.sample(np.random.default_rng(0), 100)
        assert np.allclose(samples, 1e-3)

    def test_samples_clipped_to_unit_interval(self):
        import numpy as np

        d = LogNormal(0.5, error_factor=10.0)
        samples = d.sample(np.random.default_rng(0), 2000)
        assert samples.max() <= 1.0
        assert samples.min() >= 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            LogNormal(0.0, 3.0)
        with pytest.raises(ModelError):
            LogNormal(1e-3, 0.5)


class TestPropagate:
    def test_deterministic_distributions_recover_point_value(self, cooling_tree):
        cutsets = mocus(cooling_tree).cutsets
        distributions = {
            name: LogNormal(p, 1.0)
            for name, p in cutsets.probabilities.items()
            if p > 0.0
        }
        result = propagate(cutsets, distributions, n_samples=100, seed=1)
        assert math.isclose(result.mean, cutsets.rare_event(), rel_tol=1e-9)
        assert result.standard_deviation < 1e-18

    def test_spread_grows_with_error_factor(self, cooling_tree):
        cutsets = mocus(cooling_tree).cutsets
        narrow = propagate(
            cutsets,
            {n: LogNormal(p, 1.5) for n, p in cutsets.probabilities.items() if p > 0},
            n_samples=4000,
            seed=2,
        )
        wide = propagate(
            cutsets,
            {n: LogNormal(p, 10.0) for n, p in cutsets.probabilities.items() if p > 0},
            n_samples=4000,
            seed=2,
        )
        assert wide.error_factor > narrow.error_factor
        assert wide.p95 > narrow.p95

    def test_quantiles_ordered(self, cooling_tree):
        cutsets = mocus(cooling_tree).cutsets
        result = propagate(cutsets, {}, n_samples=2000, seed=3)
        assert result.p05 <= result.median <= result.p95
        assert result.n_samples == 2000

    def test_default_error_factor_applies(self, cooling_tree):
        cutsets = mocus(cooling_tree).cutsets
        result = propagate(cutsets, {}, n_samples=2000, seed=4)
        # With EF 3 per event the output cannot be deterministic.
        assert result.standard_deviation > 0.0

    def test_mean_near_lognormal_expectation(self):
        """Single one-event cutset: the propagated mean matches the
        lognormal mean  median * exp(sigma^2 / 2)."""
        cutsets = CutSetList((frozenset({"a"}),), {"a": 1e-4})
        d = LogNormal(1e-4, 3.0)
        result = propagate(cutsets, {"a": d}, n_samples=200_000, seed=5)
        expected = 1e-4 * math.exp(d.sigma**2 / 2)
        assert math.isclose(result.mean, expected, rel_tol=0.02)
        assert math.isclose(result.median, 1e-4, rel_tol=0.02)

    def test_sample_count_guard(self, cooling_tree):
        cutsets = mocus(cooling_tree).cutsets
        with pytest.raises(ModelError):
            propagate(cutsets, {}, n_samples=1)

    def test_unknown_distribution_key_rejected(self, cooling_tree):
        """A distributions key naming no cutset event is a typo, not a
        silent no-op — it must raise and name the stray keys."""
        cutsets = mocus(cooling_tree).cutsets
        with pytest.raises(ModelError, match="no-such-event"):
            propagate(
                cutsets,
                {"no-such-event": LogNormal(1e-3, 3.0)},
                n_samples=100,
                seed=6,
            )

    def test_unknown_key_error_lists_every_stray_key(self, cooling_tree):
        cutsets = mocus(cooling_tree).cutsets
        with pytest.raises(ModelError, match="typo-1, typo-2"):
            propagate(
                cutsets,
                {
                    "typo-2": LogNormal(1e-3, 3.0),
                    "typo-1": LogNormal(1e-3, 3.0),
                },
                n_samples=100,
            )
