"""Hypothesis strategies shared by the oracle-based tests.

The central strategy builds small random coherent fault trees (AND, OR
and ATLEAST gates over up to ~10 events) so algorithm results can be
checked against brute-force enumeration of all scenarios.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType


@st.composite
def fault_trees(
    draw,
    max_events: int = 8,
    max_gates: int = 8,
    allow_atleast: bool = True,
    min_probability: float = 0.0,
    max_probability: float = 1.0,
):
    """A random small coherent fault tree.

    Gates are built bottom-up: gate ``i`` may reference any event and
    any earlier gate, which guarantees a DAG; the last gate is the top,
    wired to reference every otherwise-unused node so the whole tree is
    reachable (unreachable parts would be dead weight in oracle tests).
    """
    n_events = draw(st.integers(2, max_events))
    n_gates = draw(st.integers(1, max_gates))
    events = []
    for i in range(n_events):
        probability = draw(
            st.floats(
                min_probability,
                max_probability,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        events.append(BasicEvent(f"e{i}", probability))

    gate_types = [GateType.AND, GateType.OR]
    if allow_atleast:
        gate_types.append(GateType.ATLEAST)

    gates: list[Gate] = []
    used: set[str] = set()
    for i in range(n_gates):
        pool = [e.name for e in events] + [g.name for g in gates]
        is_top = i == n_gates - 1
        n_children = draw(st.integers(1 if not is_top else 2, min(4, len(pool))))
        children = draw(
            st.lists(
                st.sampled_from(pool),
                min_size=n_children,
                max_size=n_children,
                unique=True,
            )
        )
        if is_top:
            # Wire unused nodes in so everything is reachable.
            unused = [n for n in pool if n not in used and n not in children]
            children = list(children) + unused
        gate_type = draw(st.sampled_from(gate_types))
        k = None
        if gate_type is GateType.ATLEAST:
            if len(children) < 2:
                gate_type = GateType.OR
            else:
                k = draw(st.integers(1, len(children)))
                if k == 1:
                    gate_type = GateType.OR
                    k = None
                elif k == len(children):
                    gate_type = GateType.AND
                    k = None
        gates.append(Gate(f"g{i}", gate_type, tuple(children), k))
        used.update(children)
    return FaultTree(gates[-1].name, events, gates, name="random")


@st.composite
def sd_fault_trees(
    draw,
    max_static: int = 3,
    max_dynamic: int = 4,
    max_gates: int = 5,
    max_rate: float = 0.2,
):
    """A random small SD fault tree with a valid triggering structure.

    Dynamic events get repairable chains; a subset becomes triggered.
    Trigger sources are chosen among gates built *before* the dependency
    could become cyclic: event ``d_i`` may only be triggered by a gate
    whose subtree contains no event ``d_j`` with ``j >= i`` — a simple
    stratification that guarantees the acyclicity requirement.
    """
    from repro.core.sdft import SdFaultTreeBuilder
    from repro.ctmc.builders import repairable, triggered_repairable

    n_static = draw(st.integers(1, max_static))
    n_dynamic = draw(st.integers(1, max_dynamic))
    n_gates = draw(st.integers(1, max_gates))

    b = SdFaultTreeBuilder("random-sd")
    static_names = []
    for i in range(n_static):
        probability = draw(st.floats(0.001, 0.3, allow_nan=False))
        name = f"s{i}"
        b.static_event(name, probability)
        static_names.append(name)

    dynamic_names = []
    triggered_flags = []
    for i in range(n_dynamic):
        rate = draw(st.floats(0.005, max_rate, allow_nan=False))
        repair = draw(st.floats(0.05, 1.0, allow_nan=False))
        name = f"d{i}"
        is_triggered = i > 0 and draw(st.booleans())
        if is_triggered:
            b.dynamic_event(name, triggered_repairable(rate, repair))
        else:
            b.dynamic_event(name, repairable(rate, repair))
        dynamic_names.append(name)
        triggered_flags.append(is_triggered)

    # Gates over events and earlier gates; track, per gate, the highest
    # dynamic index in its subtree (for safe trigger selection).
    gate_names: list[str] = []
    max_dyn_under: dict[str, int] = {}
    for name in static_names:
        max_dyn_under[name] = -1
    for i, name in enumerate(dynamic_names):
        max_dyn_under[name] = i
    for g in range(n_gates):
        pool = static_names + dynamic_names + gate_names
        is_top = g == n_gates - 1
        size = draw(st.integers(2, min(4, len(pool))))
        children = draw(
            st.lists(st.sampled_from(pool), min_size=size, max_size=size, unique=True)
        )
        if is_top:
            unused = [n for n in pool if n not in children]
            children = list(children) + unused
        gate_type = draw(st.sampled_from(["and", "or"]))
        gate_name = f"g{g}"
        if gate_type == "and":
            b.and_(gate_name, *children)
        else:
            b.or_(gate_name, *children)
        max_dyn_under[gate_name] = max(
            (max_dyn_under[c] for c in children), default=-1
        )
        gate_names.append(gate_name)

    for i, name in enumerate(dynamic_names):
        if not triggered_flags[i]:
            continue
        candidates = [g for g in gate_names if max_dyn_under[g] < i]
        if not candidates:
            # No safe trigger source: downgrade to an untriggered chain.
            b._dynamic[name] = type(b._dynamic[name])(
                name, repairable(0.01, 0.1), ""
            )
            continue
        b.trigger(draw(st.sampled_from(candidates)), name)
    return b.build(gate_names[-1])


@st.composite
def small_ctmcs(draw, max_states: int = 5, max_rate: float = 2.0):
    """A random small CTMC with at least one failed state."""
    from repro.ctmc.chain import Ctmc

    n = draw(st.integers(2, max_states))
    states = [f"s{i}" for i in range(n)]
    rates = {}
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            rate = draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(0.01, max_rate, allow_nan=False),
                )
            )
            if rate > 0.0:
                rates[(states[i], states[j])] = rate
    n_failed = draw(st.integers(1, n - 1))
    failed = states[-n_failed:]
    initial_state = draw(st.sampled_from(states[: n - n_failed]))
    return Ctmc(states, {initial_state: 1.0}, rates, failed)
