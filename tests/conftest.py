"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import hypothesis
import pytest

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.ft.builder import FaultTreeBuilder

# A single profile: deterministic, moderate example counts, no deadline
# (CI machines with one core hit the default 200 ms deadline spuriously).
hypothesis.settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    derandomize=True,
)
hypothesis.settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the persistent solve cache at a per-test directory.

    The CLI enables the cache by default, so without this a test's
    analysis could be served from a record set another test (or an
    earlier suite run) stored under ``~/.cache/repro`` — hermetic tests
    must neither read nor pollute the user's real cache.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "solve-cache"))


@pytest.fixture
def cooling_tree():
    """The static cooling system of paper Example 1.

    MCSs: {e}, {a,c}, {a,d}, {b,c}, {b,d} (paper Example 7).
    """
    b = FaultTreeBuilder("cooling")
    b.event("a", 3e-3).event("b", 1e-3)
    b.event("c", 3e-3).event("d", 1e-3)
    b.event("e", 3e-6)
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    return b.build("cooling")


@pytest.fixture
def cooling_sdft():
    """The SD cooling system of paper Example 3.

    Pump in-operation failures are dynamic (rates from Example 2); the
    spare pump's dynamic event ``d`` is triggered by the pump-1 gate.
    """
    b = SdFaultTreeBuilder("cooling-sd")
    b.static_event("a", 3e-3).static_event("c", 3e-3).static_event("e", 3e-6)
    b.dynamic_event("b", repairable(0.001, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")
    return b.build("cooling")
