"""Tests of the event-tree substrate."""

import pytest

from repro.errors import ModelError
from repro.eventtree.tree import (
    EventTreeBuilder,
    compile_damage_state,
    compile_sequence,
)
from repro.ft.builder import FaultTreeBuilder
from repro.ft.scenario import fails


def _cooling_event_tree():
    return (
        EventTreeBuilder("LOOP", "IE-LOOP", 0.1)
        .functional_event("FW", "feedwater-fails")
        .functional_event("HP", "highpressure-fails")
        .sequence("S1", "OK", FW=False)
        .sequence("S2", "OK", FW=True, HP=False)
        .sequence("S3", "CD", FW=True, HP=True)
        .build()
    )


class TestBuilder:
    def test_structure(self):
        tree = _cooling_event_tree()
        assert tree.initiating_event == "IE-LOOP"
        assert [f.name for f in tree.functional_events] == ["FW", "HP"]
        assert tree.consequences() == {"OK", "CD"}
        assert [s.name for s in tree.by_consequence("CD")] == ["S3"]

    def test_failed_events_ordered(self):
        tree = _cooling_event_tree()
        s3 = tree.by_consequence("CD")[0]
        assert s3.failed_events == ("FW", "HP")

    def test_duplicate_functional_event_rejected(self):
        b = EventTreeBuilder("T", "IE", 0.1).functional_event("F", "g")
        with pytest.raises(ModelError):
            b.functional_event("F", "g2")

    def test_unknown_branch_rejected(self):
        b = EventTreeBuilder("T", "IE", 0.1).functional_event("F", "g")
        with pytest.raises(ModelError):
            b.sequence("S", "CD", GHOST=True)

    def test_needs_sequences(self):
        b = EventTreeBuilder("T", "IE", 0.1).functional_event("F", "g")
        with pytest.raises(ModelError):
            b.build()

    def test_duplicate_sequence_names_rejected(self):
        b = EventTreeBuilder("T", "IE", 0.1).functional_event("F", "g")
        b.sequence("S", "CD", F=True).sequence("S", "OK", F=False)
        with pytest.raises(ModelError):
            b.build()

    def test_negative_frequency_rejected(self):
        with pytest.raises(ModelError):
            EventTreeBuilder("T", "IE", -1.0)


class TestCompilation:
    def _fault_builder(self):
        b = FaultTreeBuilder()
        b.event("fw1", 0.1).event("hp1", 0.2)
        b.or_("feedwater-fails", "fw1")
        b.or_("highpressure-fails", "hp1")
        return b

    def test_compile_sequence_is_and_of_failures(self):
        event_tree = _cooling_event_tree()
        b = self._fault_builder()
        gate = compile_sequence(event_tree, event_tree.by_consequence("CD")[0], b)
        tree = b.or_("top", gate).build("top")
        assert fails(tree, {"fw1", "hp1"}, gate)
        assert not fails(tree, {"fw1"}, gate)

    def test_success_branches_dropped(self):
        """Delete-term: S2 (FW fails, HP succeeds) compiles to just FW."""
        event_tree = _cooling_event_tree()
        b = self._fault_builder()
        gate = compile_sequence(event_tree, event_tree.sequences[1], b)
        tree = b.or_("top", gate).build("top")
        assert fails(tree, {"fw1"}, gate)  # HP success not required

    def test_all_success_sequence_rejected(self):
        event_tree = _cooling_event_tree()
        b = self._fault_builder()
        with pytest.raises(ModelError):
            compile_sequence(event_tree, event_tree.sequences[0], b)

    def test_compile_damage_state(self):
        event_tree = _cooling_event_tree()
        b = self._fault_builder()
        top = compile_damage_state(event_tree, "CD", b)
        tree = b.build(top)
        assert fails(tree, {"fw1", "hp1"}, top)
        assert not fails(tree, {"hp1"}, top)

    def test_unknown_consequence_rejected(self):
        event_tree = _cooling_event_tree()
        with pytest.raises(ModelError):
            compile_damage_state(event_tree, "MELTDOWN", self._fault_builder())
