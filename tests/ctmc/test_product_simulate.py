"""Tests of the exact product-chain semantics and the simulator."""

import pytest

from repro.ctmc.product import SdSemantics, build_product
from repro.ctmc.simulate import simulate_failure_probability
from repro.ctmc.transient import reach_probability
from repro.errors import AnalysisError


class TestSemantics:
    def test_gate_status(self, cooling_sdft):
        semantics = SdSemantics(cooling_sdft)
        # Order is sorted: a, b, c, d, e.
        state = ("fail", ("on", 0), "ok", ("off", 0), "ok")
        status = semantics.gate_status(state)
        assert status["a"] and status["pump1"]
        assert not status["pump2"] and not status["cooling"]

    def test_make_consistent_switches_on(self, cooling_sdft):
        semantics = SdSemantics(cooling_sdft)
        # a failed => pump1 failed => d must switch on.
        state = ("fail", ("on", 0), "ok", ("off", 0), "ok")
        consistent = semantics.make_consistent(state)
        assert consistent == ("fail", ("on", 0), "ok", ("on", 0), "ok")

    def test_make_consistent_switches_off(self, cooling_sdft):
        semantics = SdSemantics(cooling_sdft)
        # pump1 healthy but d switched on: must switch off.
        state = ("ok", ("on", 0), "ok", ("on", 0), "ok")
        consistent = semantics.make_consistent(state)
        assert consistent == ("ok", ("on", 0), "ok", ("off", 0), "ok")

    def test_example_5_evolution(self, cooling_sdft):
        """Paper Example 5: b failing while the rest is healthy triggers d."""
        semantics = SdSemantics(cooling_sdft)
        s1 = ("ok", ("on", 0), "ok", ("off", 0), "ok")
        assert semantics.is_consistent(s1)
        # b evolves to failed -> update switches d on.
        evolved = ("ok", ("on", 1), "ok", ("off", 0), "ok")
        s2 = semantics.make_consistent(evolved)
        assert s2 == ("ok", ("on", 1), "ok", ("on", 0), "ok")

    def test_initial_states_sum_to_one(self, cooling_sdft):
        semantics = SdSemantics(cooling_sdft)
        initial = semantics.initial_states()
        assert sum(p for _, p in initial) == pytest.approx(1.0, abs=1e-12)
        for state, _ in initial:
            assert semantics.is_consistent(state)

    def test_initially_triggered_by_static_failure(self, cooling_sdft):
        """The initial state with a failed must have d already on."""
        semantics = SdSemantics(cooling_sdft)
        initial = dict(semantics.initial_states())
        state = ("fail", ("on", 0), "ok", ("on", 0), "ok")
        assert state in initial
        assert initial[state] == pytest.approx(
            3e-3 * (1 - 3e-3) * (1 - 3e-6), abs=1e-12
        )


class TestProductChain:
    def test_running_example_size(self, cooling_sdft):
        product = build_product(cooling_sdft)
        # 2^3 static combinations x reachable dynamic combinations.
        assert product.n_states == 32
        assert product.chain.failed  # some failed states exist

    def test_failed_states_fail_top(self, cooling_sdft):
        product = build_product(cooling_sdft)
        for state in product.chain.failed:
            assert product.semantics.fails_top(state)

    def test_rates_accumulate(self, cooling_sdft):
        product = build_product(cooling_sdft)
        # Every rate positive; transitions only between consistent states.
        for (source, target), rate in product.chain.rates.items():
            assert rate > 0.0
            assert product.semantics.is_consistent(source)
            assert product.semantics.is_consistent(target)

    def test_max_states_guard(self, cooling_sdft):
        with pytest.raises(AnalysisError):
            build_product(cooling_sdft, max_states=3)

    def test_known_failure_probability(self, cooling_sdft):
        """Regression pin of the exact value (validated against the
        simulator and the per-cutset method elsewhere)."""
        product = build_product(cooling_sdft)
        value = reach_probability(product.chain, 24.0)
        assert value == pytest.approx(3.5055e-4, rel=1e-3)


class TestSimulator:
    def test_matches_exact_product(self, cooling_sdft):
        product = build_product(cooling_sdft)
        exact = reach_probability(product.chain, 24.0)
        result = simulate_failure_probability(
            cooling_sdft, 24.0, n_runs=60_000, seed=123
        )
        assert result.consistent_with(exact)

    def test_seed_determinism(self, cooling_sdft):
        a = simulate_failure_probability(cooling_sdft, 24.0, n_runs=2000, seed=9)
        b = simulate_failure_probability(cooling_sdft, 24.0, n_runs=2000, seed=9)
        assert a.estimate == b.estimate

    def test_zero_horizon_counts_initial_failures(self, cooling_sdft):
        result = simulate_failure_probability(cooling_sdft, 0.0, n_runs=5000, seed=1)
        # Only static initial failures can fail the top at t=0: roughly
        # p(e) + p(a)p(c) ~ 1.2e-5; with 5000 runs usually zero failures.
        assert result.estimate < 0.01

    def test_confidence_interval_brackets_estimate(self, cooling_sdft):
        result = simulate_failure_probability(cooling_sdft, 24.0, n_runs=3000, seed=2)
        low, high = result.confidence_interval
        assert low <= result.estimate <= high

    def test_negative_horizon_rejected(self, cooling_sdft):
        with pytest.raises(ValueError):
            simulate_failure_probability(cooling_sdft, -1.0, n_runs=10)
