"""Tests of exact lumping and the long-run/first-passage analytics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ctmc.analysis import (
    eventual_failure_probability,
    expected_downtime,
    mean_time_to_failure,
)
from repro.ctmc.builders import exponential_failure, repairable, static_chain
from repro.ctmc.chain import Ctmc
from repro.ctmc.lumping import lump
from repro.ctmc.transient import reach_probability, transient_distribution

from tests.strategies import small_ctmcs


def _symmetric_pair(lam=0.05, mu=0.5):
    """Two identical repairable components in parallel (AND failure)."""
    states = [(a, b) for a in "wf" for b in "wf"]
    rates = {}
    for a in "wf":
        for b in "wf":
            if a == "w":
                rates[((a, b), ("f", b))] = lam
            else:
                rates[((a, b), ("w", b))] = mu
            if b == "w":
                rates[((a, b), (a, "f"))] = rates.get(((a, b), (a, "f")), 0) + lam
            else:
                rates[((a, b), (a, "w"))] = rates.get(((a, b), (a, "w")), 0) + mu
    return Ctmc(states, {("w", "w"): 1.0}, rates, [("f", "f")])


class TestLumping:
    def test_symmetric_pair_lumps_to_counter(self):
        chain = _symmetric_pair()
        lumped = lump(chain)
        # (w,f) and (f,w) merge: 4 states -> 3 blocks.
        assert len(lumped.blocks) == 3
        assert lumped.reduction_factor == pytest.approx(4 / 3)

    def test_lumping_preserves_reachability(self):
        chain = _symmetric_pair()
        lumped = lump(chain)
        for t in (0.5, 5.0, 50.0):
            assert reach_probability(lumped.chain, t) == pytest.approx(
                reach_probability(chain, t), abs=1e-10
            )

    def test_lumping_preserves_transient_block_mass(self):
        chain = _symmetric_pair()
        lumped = lump(chain)
        t = 3.0
        original = transient_distribution(chain, t)
        quotient = transient_distribution(lumped.chain, t)
        for index, block in enumerate(lumped.blocks):
            mass = sum(original[chain.index[s]] for s in block)
            assert quotient[index] == pytest.approx(mass, abs=1e-9)

    def test_asymmetric_chain_does_not_lump(self):
        chain = Ctmc(
            ["a", "b", "f"],
            {"a": 1.0},
            {("a", "f"): 0.1, ("b", "f"): 0.9},
            ["f"],
        )
        lumped = lump(chain)
        assert len(lumped.blocks) == 3  # different rates: no merge

    def test_custom_partition_must_cover(self):
        chain = _symmetric_pair()
        with pytest.raises(ValueError):
            lump(chain, initial_partition=[frozenset([("w", "w")])])

    def test_custom_partition_must_respect_failed(self):
        chain = _symmetric_pair()
        everything = frozenset(chain.states)
        with pytest.raises(ValueError):
            lump(chain, initial_partition=[everything])

    @given(small_ctmcs(max_states=5))
    def test_lumping_is_exact_on_random_chains(self, chain):
        lumped = lump(chain)
        for t in (0.7, 4.0):
            assert reach_probability(lumped.chain, t) == pytest.approx(
                reach_probability(chain, t), abs=1e-8
            )


class TestMttf:
    def test_exponential(self):
        assert mean_time_to_failure(exponential_failure(0.01)) == pytest.approx(100.0)

    def test_repairable_first_passage_ignores_repair(self):
        # First passage of a 2-state repairable chain equals the pure
        # exponential MTTF: repair only matters after the first failure.
        assert mean_time_to_failure(repairable(0.01, 5.0)) == pytest.approx(100.0)

    def test_erlang(self):
        from repro.ctmc.builders import erlang_failure

        # k phases at rate k*lambda: MTTF = 1/lambda by construction.
        assert mean_time_to_failure(erlang_failure(3, 0.02)) == pytest.approx(50.0)

    def test_no_failed_states_is_infinite(self):
        chain = Ctmc(["a", "b"], {"a": 1.0}, {("a", "b"): 1.0}, [])
        assert math.isinf(mean_time_to_failure(chain))

    def test_unreachable_failure_is_infinite(self):
        chain = Ctmc(
            ["a", "safe", "f"],
            {"a": 1.0},
            {("a", "safe"): 1.0},
            ["f"],
        )
        assert math.isinf(mean_time_to_failure(chain))


class TestDowntime:
    def test_zero_horizon(self):
        assert expected_downtime(repairable(0.1, 1.0), 0.0) == 0.0

    def test_non_repairable_downtime_integral(self):
        """For an absorbing failure, downtime = ∫ (1 - e^{-λu}) du."""
        lam, t = 0.05, 30.0
        chain = exponential_failure(lam)
        expected = t - (1 - math.exp(-lam * t)) / lam
        assert expected_downtime(chain, t) == pytest.approx(expected, rel=1e-6)

    def test_frozen_chain(self):
        assert expected_downtime(static_chain(0.25), 8.0) == pytest.approx(2.0)

    def test_repair_reduces_downtime(self):
        t = 100.0
        slow = expected_downtime(repairable(0.05, 0.01), t)
        fast = expected_downtime(repairable(0.05, 5.0), t)
        assert fast < slow

    def test_long_run_matches_steady_state(self):
        """Downtime fraction converges to the stationary unavailability."""
        lam, mu = 0.2, 1.0
        t = 2000.0
        downtime = expected_downtime(repairable(lam, mu), t)
        assert downtime / t == pytest.approx(lam / (lam + mu), rel=0.01)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            expected_downtime(repairable(0.1, 1.0), -1.0)


class TestEventualFailure:
    def test_certain_for_irreducible(self):
        assert eventual_failure_probability(repairable(0.01, 1.0)) == pytest.approx(1.0)

    def test_race_between_absorbing_outcomes(self):
        chain = Ctmc(
            ["start", "safe", "f"],
            {"start": 1.0},
            {("start", "safe"): 3.0, ("start", "f"): 1.0},
            ["f"],
        )
        assert eventual_failure_probability(chain) == pytest.approx(0.25)

    def test_initially_failed_counts(self):
        assert eventual_failure_probability(static_chain(0.3)) == pytest.approx(0.3)

    def test_no_failed_states(self):
        chain = Ctmc(["a"], {"a": 1.0}, {}, [])
        assert eventual_failure_probability(chain) == 0.0
