"""Tests of the failure-model builders and triggered-CTMC invariants."""

import math

import pytest

from repro.ctmc.builders import (
    erlang_failure,
    exponential_failure,
    repairable,
    static_chain,
    triggered_erlang,
    triggered_repairable,
)
from repro.ctmc.chain import Ctmc
from repro.ctmc.transient import failure_probability, transient_distribution
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import InvalidRateError, ModelError, TriggerError


class TestSimpleBuilders:
    def test_exponential_first_passage(self):
        chain = exponential_failure(0.01)
        assert failure_probability(chain, 100.0) == pytest.approx(
            1 - math.exp(-1.0), abs=1e-10
        )

    def test_repairable_shape(self):
        chain = repairable(0.001, 0.05)
        assert chain.n_states == 2
        assert chain.exit_rate(("on", 1)) == pytest.approx(0.05)

    def test_static_chain_is_frozen(self):
        chain = static_chain(0.3)
        assert chain.n_transitions == 0
        distribution = transient_distribution(chain, 100.0)
        assert distribution[chain.index["fail"]] == pytest.approx(0.3)

    def test_rate_validation(self):
        with pytest.raises(InvalidRateError):
            exponential_failure(0.0)
        with pytest.raises(InvalidRateError):
            repairable(0.1, -1.0)


class TestErlang:
    def test_single_phase_equals_exponential(self):
        erlang = erlang_failure(1, 0.01)
        exponential = exponential_failure(0.01)
        for t in (1.0, 10.0, 100.0):
            assert failure_probability(erlang, t) == pytest.approx(
                failure_probability(exponential, t), abs=1e-10
            )

    def test_mean_time_to_failure_preserved(self):
        """k phases at rate k*lambda keep MTTF = 1/lambda: the Erlang CDF
        crosses the exponential CDF near the mean but both have the same
        first moment; check via the known Erlang CDF."""
        rate, k, t = 0.01, 3, 80.0
        chain = erlang_failure(k, rate)
        x = k * rate * t
        expected = 1 - math.exp(-x) * sum(x**i / math.factorial(i) for i in range(k))
        assert failure_probability(chain, t) == pytest.approx(expected, abs=1e-9)

    def test_more_phases_less_early_failure(self):
        """Erlang failures have less mass in the early tail."""
        t = 10.0  # well before MTTF = 1000 h
        p1 = failure_probability(erlang_failure(1, 1e-3), t)
        p3 = failure_probability(erlang_failure(3, 1e-3), t)
        assert p3 < p1

    def test_repair_transition(self):
        chain = erlang_failure(2, 0.01, repair_rate=0.5)
        assert (("on", 2), ("on", 0)) in chain.rates

    def test_phase_validation(self):
        with pytest.raises(ModelError):
            erlang_failure(0, 0.01)


class TestTriggeredInvariants:
    def test_triggered_repairable_shape(self):
        chain = triggered_repairable(0.001, 0.05)
        assert isinstance(chain, TriggeredCtmc)
        assert chain.on_states == {("on", 0), ("on", 1)}
        assert chain.failed == {("on", 1)}
        assert chain.initial == {("off", 0): 1.0}

    def test_failed_must_be_on(self):
        with pytest.raises(TriggerError):
            TriggeredCtmc(
                ["off", "on"],
                {"off": 1.0},
                {},
                ["off"],  # failed off-state: forbidden
                ["on"],
                {"off": "on"},
                {"on": "off"},
            )

    def test_initial_must_be_off(self):
        with pytest.raises(TriggerError):
            TriggeredCtmc(
                ["off", "on"],
                {"on": 1.0},
                {},
                [],
                ["on"],
                {"off": "on"},
                {"on": "off"},
            )

    def test_switch_maps_must_be_total(self):
        with pytest.raises(TriggerError):
            TriggeredCtmc(
                ["off1", "off2", "on"],
                {"off1": 1.0},
                {},
                [],
                ["on"],
                {"off1": "on"},  # off2 missing
                {"on": "off1"},
            )

    def test_switch_targets_must_cross_partition(self):
        with pytest.raises(TriggerError):
            TriggeredCtmc(
                ["off1", "off2", "on"],
                {"off1": 1.0},
                {},
                [],
                ["on"],
                {"off1": "off2", "off2": "off2"},  # lands in off: forbidden
                {"on": "off1"},
            )

    def test_apply_trigger(self):
        chain = triggered_repairable(0.001, 0.05)
        assert chain.apply_trigger(("off", 0), True) == ("on", 0)
        assert chain.apply_trigger(("on", 1), False) == ("off", 1)
        assert chain.apply_trigger(("on", 0), True) == ("on", 0)
        assert chain.apply_trigger(("off", 1), False) == ("off", 1)


class TestUntriggeredView:
    def test_view_shifts_initial(self):
        chain = triggered_repairable(0.001, 0.05)
        view = chain.untriggered_view()
        assert isinstance(view, Ctmc)
        assert view.initial == {("on", 0): 1.0}

    def test_view_first_passage_matches_plain_repairable(self):
        triggered = triggered_repairable(0.001, 0.05).untriggered_view()
        plain = repairable(0.001, 0.05)
        for t in (1.0, 24.0, 96.0):
            assert failure_probability(triggered, t) == pytest.approx(
                failure_probability(plain, t), abs=1e-10
            )

    def test_view_is_cached(self):
        chain = triggered_repairable(0.001, 0.05)
        assert chain.untriggered_view() is chain.untriggered_view()


class TestTriggeredErlang:
    def test_paper_section_vi_a_shape(self):
        chain = triggered_erlang(2, 1e-3, 0.05)
        # 3 passive + 3 active states.
        assert chain.n_states == 6
        assert chain.failed == {("on", 2)}
        # Passive rates are 100x lower (paper's factor).
        assert chain.rates[(("off", 0), ("off", 1))] == pytest.approx(
            chain.rates[(("on", 0), ("on", 1))] / 100.0
        )
        # No repair while off: the passive failed phase is absorbing-ish.
        assert (("off", 2), ("off", 0)) not in chain.rates
        assert (("on", 2), ("on", 0)) in chain.rates

    def test_zero_passive_factor(self):
        chain = triggered_erlang(1, 1e-3, 0.05, passive_factor=0.0)
        assert (("off", 0), ("off", 1)) not in chain.rates

    def test_zero_repair_rate_allowed(self):
        chain = triggered_erlang(1, 1e-3, 0.0)
        assert (("on", 1), ("on", 0)) not in chain.rates

    def test_switch_preserves_phase(self):
        chain = triggered_erlang(3, 1e-3, 0.05)
        assert chain.switch_on[("off", 2)] == ("on", 2)
        assert chain.switch_off[("on", 3)] == ("off", 3)
