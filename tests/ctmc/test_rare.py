"""The rare-event Monte-Carlo engine against exact uniformization oracles.

The acceptance bar (ISSUE 6): on a synthetic cutset with exact
probability <= 1e-7 the engine must reach a 10 % relative half-width
within a run budget where crude sampling observes zero failures, with
an interval that contains the exact value — and stay bit-deterministic
in the seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import (
    exponential_failure,
    repairable,
    triggered_repairable,
)
from repro.ctmc.product import build_product
from repro.ctmc.rare import RareEventConfig, estimate_failure_probability
from repro.ctmc.simulate import TrajectoryKernel
from repro.ctmc.transient import reach_probability
from repro.errors import NumericalError
from repro.robust import faults
from repro.robust.budget import Budget

HORIZON = 24.0

#: AND of two slow exponential failures: p(24h) ~= (lam*t)^2 ~= 9e-8.
RARE_LAMBDA = 1.25e-5


@pytest.fixture(scope="module")
def rare_pair():
    b = SdFaultTreeBuilder("rare-pair")
    b.dynamic_event("x", exponential_failure(RARE_LAMBDA))
    b.dynamic_event("y", exponential_failure(RARE_LAMBDA))
    b.and_("top", "x", "y")
    return b.build("top")


@pytest.fixture(scope="module")
def rare_exact(rare_pair):
    return reach_probability(build_product(rare_pair).chain, HORIZON)


class TestConfig:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            RareEventConfig(engine="quantum")

    def test_rejects_degenerate_bias(self):
        with pytest.raises(ValueError, match="bias"):
            RareEventConfig(bias=1.0)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="target_rel_error"):
            RareEventConfig(target_rel_error=0.0)

    def test_rejects_negative_horizon(self, rare_pair):
        with pytest.raises(NumericalError, match="horizon"):
            estimate_failure_probability(rare_pair, -1.0)


class TestAcceptance:
    """The ISSUE acceptance criterion, verbatim."""

    def test_exact_probability_is_psa_scale(self, rare_exact):
        assert rare_exact <= 1e-7

    def test_crude_sees_nothing_at_the_same_budget(self, rare_pair):
        crude = estimate_failure_probability(
            rare_pair,
            HORIZON,
            RareEventConfig(engine="crude", max_runs=20_000),
            seed=7,
        )
        assert crude.n_failures == 0
        assert crude.estimate == 0.0
        assert not crude.converged

    def test_is_reaches_ten_percent_and_brackets(self, rare_pair, rare_exact):
        result = estimate_failure_probability(
            rare_pair,
            HORIZON,
            RareEventConfig(engine="is", max_runs=20_000),
            seed=7,
        )
        assert result.converged
        assert result.achieved_rel_error <= 0.10
        assert result.n_runs <= 20_000
        lower, upper = result.interval(sigmas=4.0)
        assert lower <= rare_exact <= upper

    def test_auto_routes_the_rare_case_to_importance_sampling(
        self, rare_pair, rare_exact
    ):
        result = estimate_failure_probability(
            rare_pair, HORIZON, RareEventConfig(engine="auto"), seed=3
        )
        assert result.engine == "is"
        assert result.converged
        lower, upper = result.interval(sigmas=4.0)
        assert lower <= rare_exact <= upper

    def test_same_seed_is_bit_identical(self, rare_pair):
        first = estimate_failure_probability(
            rare_pair, HORIZON, RareEventConfig(), seed=42
        )
        second = estimate_failure_probability(
            rare_pair, HORIZON, RareEventConfig(), seed=42
        )
        assert first == second  # frozen dataclass: field-exact equality


class TestUnbiasedness:
    def test_is_estimator_mean_matches_uniformization(
        self, rare_pair, rare_exact
    ):
        """Weighted-mean unbiasedness: E[estimate] = p.

        Averages independent converged IS estimates; the combined
        standard error shrinks with the number of replicates, so a
        biased estimator (a wrong likelihood-ratio factor anywhere)
        lands many sigmas out.
        """
        config = RareEventConfig(engine="is", max_runs=4_000)
        results = [
            estimate_failure_probability(rare_pair, HORIZON, config, seed=s)
            for s in range(24)
        ]
        estimates = np.array([r.estimate for r in results])
        combined_se = float(
            np.sqrt(sum(r.standard_error**2 for r in results)) / len(results)
        )
        assert abs(float(estimates.mean()) - rare_exact) <= 4.0 * combined_se

    def test_splitting_estimator_brackets_uniformization(
        self, rare_pair, rare_exact
    ):
        result = estimate_failure_probability(
            rare_pair,
            HORIZON,
            RareEventConfig(engine="splitting"),
            seed=11,
        )
        assert result.engine == "splitting"
        assert result.n_failures > 0
        lower, upper = result.interval(sigmas=4.0)
        assert lower <= rare_exact <= upper


class TestNonRareModels:
    """Common events stay on (or agree with) the crude path."""

    @pytest.fixture(scope="class")
    def cooling(self):
        b = SdFaultTreeBuilder("cooling-sd")
        b.static_event("a", 3e-3).static_event("c", 3e-3)
        b.static_event("e", 3e-6)
        b.dynamic_event("b", repairable(0.001, 0.05))
        b.dynamic_event("d", triggered_repairable(0.001, 0.05))
        b.or_("pump1", "a", "b").or_("pump2", "c", "d")
        b.and_("pumps", "pump1", "pump2")
        b.or_("cooling", "pumps", "e")
        b.trigger("pump1", "d")
        return b.build("cooling")

    @pytest.fixture(scope="class")
    def cooling_exact(self, cooling):
        return reach_probability(build_product(cooling).chain, HORIZON)

    def test_auto_picks_crude_when_failures_are_plentiful(self):
        b = SdFaultTreeBuilder("common")
        b.dynamic_event("x", exponential_failure(0.05))
        b.or_("top", "x")
        model = b.build("top")
        result = estimate_failure_probability(
            model, HORIZON, RareEventConfig(engine="auto"), seed=1
        )
        assert result.engine == "crude"
        assert result.pilot_failures >= RareEventConfig().pilot_min_failures

    @pytest.mark.parametrize("engine", ["crude", "is", "splitting"])
    def test_every_engine_brackets_the_cooling_value(
        self, cooling, cooling_exact, engine
    ):
        result = estimate_failure_probability(
            cooling,
            HORIZON,
            RareEventConfig(engine=engine, max_runs=20_000),
            seed=5,
        )
        lower, upper = result.interval(sigmas=4.0)
        assert lower <= cooling_exact <= upper

    def test_forcing_weights_stay_strictly_positive(self, cooling):
        """Likelihood ratios are products of positive factors, never 0/inf."""
        result = estimate_failure_probability(
            cooling, HORIZON, RareEventConfig(engine="is"), seed=9
        )
        assert np.isfinite(result.estimate)
        assert 0.0 < result.estimate < 1.0


class TestIntervals:
    def test_zero_failures_fall_back_to_rule_of_three(self, rare_pair):
        result = estimate_failure_probability(
            rare_pair,
            HORIZON,
            RareEventConfig(engine="crude", max_runs=2_000),
            seed=1,
        )
        assert result.n_failures == 0
        lower, upper = result.interval()
        assert lower == 0.0
        assert upper == pytest.approx(3.0 / 2_000)

    def test_nan_estimate_propagates_for_the_invariant_guards(self, rare_pair):
        with faults.inject_value(
            "rare_event_weights", lambda w: w * float("nan"), times=1
        ):
            result = estimate_failure_probability(
                rare_pair, HORIZON, RareEventConfig(engine="is"), seed=2
            )
        lower, upper = result.interval()
        assert np.isnan(result.estimate)
        assert np.isnan(lower) and np.isnan(upper)

    def test_inflated_estimate_inverts_the_interval(self, rare_pair):
        """Silent weight inflation must be P3-detectable, not clipped away."""
        with faults.inject_value(
            "rare_event_estimate", lambda p: p * 1e12 + 1.1, times=1
        ):
            result = estimate_failure_probability(
                rare_pair, HORIZON, RareEventConfig(engine="is"), seed=2
            )
        lower, upper = result.interval(sigmas=4.0)
        assert lower > upper  # inverted: the interval-order guard fires

    def test_zero_horizon_estimates_zero(self, rare_pair):
        result = estimate_failure_probability(
            rare_pair, 0.0, RareEventConfig(), seed=4
        )
        assert result.estimate == 0.0
        lower, upper = result.interval()
        assert lower == 0.0 and upper <= 1.0


class TestBudget:
    def test_expired_budget_stops_early_and_reports_honestly(self, rare_pair):
        result = estimate_failure_probability(
            rare_pair,
            HORIZON,
            RareEventConfig(engine="is"),
            seed=6,
            budget=Budget(wall_seconds=0.0),
        )
        assert result.n_runs == 0
        assert not result.converged
        assert result.achieved_rel_error == np.inf

    def test_max_runs_caps_the_total(self, rare_pair):
        result = estimate_failure_probability(
            rare_pair,
            HORIZON,
            RareEventConfig(engine="is", max_runs=500, batch_size=200),
            seed=6,
        )
        assert result.n_runs <= 500


class TestKernelGuards:
    def test_zero_rate_initial_state_is_absorbing(self):
        """Satellite: an all-zero race must end the run, not divide by zero."""
        b = SdFaultTreeBuilder("stuck-spare")
        b.static_event("s", 0.5)
        # The spare never fails passively and only switches on when the
        # trigger gate fails — so with ``s`` intact its initial state
        # has no enabled transitions at all.
        b.dynamic_event("d", triggered_repairable(0.001, 0.05))
        b.or_("gs", "s")
        b.and_("top", "gs", "d")
        b.trigger("gs", "d")
        model = b.build("top")
        kernel = TrajectoryKernel(model)
        rng = np.random.default_rng(0)
        sids = kernel.sample_initial_ids(64, rng)
        absorbing = [s for s in sids if kernel.exit_rate(int(s)) == 0.0]
        assert absorbing, "some draws must leave the spare stuck off"
        assert all(kernel.moves(int(s)) is None for s in absorbing)
        result = estimate_failure_probability(
            model, HORIZON, RareEventConfig(engine="crude", max_runs=500), seed=0
        )
        assert 0.0 <= result.estimate <= 1.0
