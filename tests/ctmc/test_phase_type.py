"""Tests of phase-type moment fitting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ctmc.analysis import mean_time_to_failure
from repro.ctmc.phase_type import fit_failure_distribution
from repro.ctmc.transient import failure_probability
from repro.errors import ModelError


def _empirical_cv(chain, mean: float) -> float:
    """CV via the second moment: E[T^2] = 2 * integral of survival * t.

    Cheap numeric version: estimate E[T^2] from the survival function on
    a fine grid (enough accuracy for the fit checks)."""
    import numpy as np

    horizon = mean * 20
    grid = np.linspace(0.0, horizon, 4001)
    survival = np.array([1.0 - failure_probability(chain, float(t)) for t in grid])
    second_moment = 2.0 * np.trapezoid(survival * grid, grid)
    variance = second_moment - mean**2
    return math.sqrt(max(variance, 0.0)) / mean


class TestShapes:
    def test_cv_one_is_exponential(self):
        fit = fit_failure_distribution(100.0, 1.0)
        assert fit.shape == "exponential"
        assert fit.chain.n_states == 2

    def test_low_cv_is_erlang(self):
        fit = fit_failure_distribution(100.0, 0.5)
        assert fit.shape == "erlang"
        assert fit.chain.n_states == 5  # k = 4 phases
        assert fit.fitted_cv == pytest.approx(0.5)

    def test_high_cv_is_hyperexponential(self):
        fit = fit_failure_distribution(100.0, 2.0)
        assert fit.shape == "hyperexponential"
        assert fit.chain.n_states == 3
        assert fit.fitted_cv == pytest.approx(2.0)

    def test_phase_cap(self):
        fit = fit_failure_distribution(10.0, 0.01, max_phases=20)
        assert fit.chain.n_states == 21

    def test_validation(self):
        with pytest.raises(ModelError):
            fit_failure_distribution(0.0, 1.0)
        with pytest.raises(ModelError):
            fit_failure_distribution(10.0, -1.0)


class TestMoments:
    @pytest.mark.parametrize("cv", [0.3, 0.5, 1.0, 1.5, 3.0])
    def test_mean_preserved(self, cv):
        fit = fit_failure_distribution(50.0, cv)
        assert mean_time_to_failure(fit.chain) == pytest.approx(50.0, rel=1e-9)

    @pytest.mark.parametrize("cv", [0.5, 1.0, 2.0])
    def test_cv_realised(self, cv):
        fit = fit_failure_distribution(20.0, cv)
        assert _empirical_cv(fit.chain, 20.0) == pytest.approx(
            fit.fitted_cv, rel=0.05
        )

    @given(st.floats(0.2, 4.0), st.floats(1.0, 500.0))
    def test_mean_always_matched(self, cv, mean):
        fit = fit_failure_distribution(mean, cv)
        assert mean_time_to_failure(fit.chain) == pytest.approx(mean, rel=1e-6)


class TestUsableAsDynamicEvent:
    def test_plugs_into_sd_tree(self):
        from repro.core.analyzer import AnalysisOptions, analyze
        from repro.core.sdft import SdFaultTreeBuilder

        fit = fit_failure_distribution(200.0, 0.4)
        b = SdFaultTreeBuilder()
        b.dynamic_event("aged", fit.chain)
        b.static_event("s", 0.01)
        b.and_("top", "aged", "s")
        result = analyze(b.build("top"), AnalysisOptions(horizon=24.0))
        expected = 0.01 * failure_probability(fit.chain, 24.0)
        assert result.failure_probability == pytest.approx(expected, rel=1e-9)
