"""Tests of the CTMC model class."""

import numpy as np
import pytest

from repro.ctmc.chain import Ctmc
from repro.errors import (
    InvalidProbabilityError,
    InvalidRateError,
    ModelError,
)


def _two_state():
    return Ctmc(
        ["ok", "fail"],
        {"ok": 1.0},
        {("ok", "fail"): 0.1, ("fail", "ok"): 0.5},
        ["fail"],
    )


class TestValidation:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelError):
            Ctmc(["s", "s"], {"s": 1.0}, {}, [])

    def test_empty_chain_rejected(self):
        with pytest.raises(ModelError):
            Ctmc([], {}, {}, [])

    def test_initial_must_sum_to_one(self):
        with pytest.raises(InvalidProbabilityError):
            Ctmc(["a", "b"], {"a": 0.6, "b": 0.6}, {}, [])

    def test_negative_initial_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            Ctmc(["a", "b"], {"a": -0.5, "b": 1.5}, {}, [])

    def test_unknown_states_rejected_everywhere(self):
        with pytest.raises(ModelError):
            Ctmc(["a"], {"ghost": 1.0}, {}, [])
        with pytest.raises(ModelError):
            Ctmc(["a"], {"a": 1.0}, {("a", "ghost"): 1.0}, [])
        with pytest.raises(ModelError):
            Ctmc(["a"], {"a": 1.0}, {}, ["ghost"])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidRateError):
            Ctmc(["a"], {"a": 1.0}, {("a", "a"): 1.0}, [])

    def test_negative_rate_rejected(self):
        with pytest.raises(InvalidRateError):
            Ctmc(["a", "b"], {"a": 1.0}, {("a", "b"): -1.0}, [])

    def test_zero_rates_dropped(self):
        chain = Ctmc(["a", "b"], {"a": 1.0}, {("a", "b"): 0.0}, [])
        assert chain.n_transitions == 0


class TestAccessors:
    def test_sizes(self):
        chain = _two_state()
        assert chain.n_states == 2
        assert chain.n_transitions == 2

    def test_exit_rate_and_successors(self):
        chain = _two_state()
        assert chain.exit_rate("ok") == pytest.approx(0.1)
        assert chain.successors("fail") == [("ok", 0.5)]


class TestMatrices:
    def test_initial_vector(self):
        chain = _two_state()
        assert np.allclose(chain.initial_vector(), [1.0, 0.0])

    def test_failed_mask(self):
        chain = _two_state()
        assert list(chain.failed_mask()) == [False, True]

    def test_generator_rows_sum_to_zero(self):
        chain = _two_state()
        generator = chain.generator_matrix().toarray()
        assert np.allclose(generator.sum(axis=1), 0.0)
        assert generator[0, 1] == pytest.approx(0.1)
        assert generator[0, 0] == pytest.approx(-0.1)


class TestDerivedChains:
    def test_with_absorbing_removes_outgoing(self):
        chain = _two_state().with_absorbing(["fail"])
        assert chain.successors("fail") == []
        assert chain.successors("ok") == [("fail", 0.1)]

    def test_with_initial(self):
        chain = _two_state().with_initial({"fail": 1.0})
        assert chain.initial == {"fail": 1.0}

    def test_relabel(self):
        chain = _two_state().relabel({"ok": "up", "fail": "down"})
        assert set(chain.states) == {"up", "down"}
        assert chain.failed == {"down"}
        assert chain.successors("up") == [("down", 0.1)]

    def test_relabel_must_be_injective(self):
        with pytest.raises(ModelError):
            _two_state().relabel({"ok": "x", "fail": "x"})
