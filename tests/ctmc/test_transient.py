"""Transient-analysis tests: closed forms, backend agreement, guards."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ctmc.chain import Ctmc
from repro.ctmc.transient import (
    failure_probability,
    reach_probability,
    steady_state,
    transient_distribution,
)
from repro.errors import NumericalError

from tests.strategies import small_ctmcs


def _birth(rate=0.3):
    return Ctmc(["a", "b"], {"a": 1.0}, {("a", "b"): rate}, ["b"])


def _repairable(lam=0.2, mu=1.0):
    return Ctmc(
        ["ok", "fail"],
        {"ok": 1.0},
        {("ok", "fail"): lam, ("fail", "ok"): mu},
        ["fail"],
    )


class TestClosedForms:
    @pytest.mark.parametrize("t", [0.0, 0.1, 1.0, 10.0, 100.0])
    def test_pure_birth(self, t):
        chain = _birth(0.3)
        distribution = transient_distribution(chain, t)
        assert distribution[1] == pytest.approx(1 - math.exp(-0.3 * t), abs=1e-10)

    @pytest.mark.parametrize("t", [0.5, 5.0, 50.0])
    def test_repairable_transient_availability(self, t):
        lam, mu = 0.2, 1.0
        chain = _repairable(lam, mu)
        distribution = transient_distribution(chain, t)
        # Standard two-state availability formula.
        expected = lam / (lam + mu) * (1 - math.exp(-(lam + mu) * t))
        assert distribution[1] == pytest.approx(expected, abs=1e-10)

    @pytest.mark.parametrize("t", [0.5, 5.0, 50.0])
    def test_first_passage_ignores_repair(self, t):
        """Reach probability makes the target absorbing, so the repair
        transition cannot undo the first visit."""
        chain = _repairable(0.2, 50.0)
        assert failure_probability(chain, t) == pytest.approx(
            1 - math.exp(-0.2 * t), abs=1e-9
        )

    def test_erlang_two_phase(self):
        chain = Ctmc(
            ["p0", "p1", "p2"],
            {"p0": 1.0},
            {("p0", "p1"): 2.0, ("p1", "p2"): 2.0},
            ["p2"],
        )
        t = 1.3
        # Erlang(2, 2) CDF: 1 - e^{-2t}(1 + 2t).
        expected = 1 - math.exp(-2 * t) * (1 + 2 * t)
        assert failure_probability(chain, t) == pytest.approx(expected, abs=1e-10)


class TestBackends:
    @given(small_ctmcs(), st.floats(0.0, 20.0))
    def test_uniformization_matches_expm(self, chain, t):
        uni = transient_distribution(chain, t, method="uniformization")
        exp = transient_distribution(chain, t, method="expm")
        assert np.allclose(uni, exp, atol=1e-8)

    @given(small_ctmcs(), st.floats(0.1, 20.0))
    def test_reach_probability_backend_agreement(self, chain, t):
        a = reach_probability(chain, t, method="uniformization")
        b = reach_probability(chain, t, method="expm")
        assert a == pytest.approx(b, abs=1e-8)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            transient_distribution(_birth(), 1.0, method="laplace")


class TestProperties:
    @given(small_ctmcs(), st.floats(0.0, 10.0))
    def test_distribution_is_stochastic(self, chain, t):
        distribution = transient_distribution(chain, t)
        assert distribution.min() >= -1e-12
        assert distribution.sum() == pytest.approx(1.0, abs=1e-9)

    @given(small_ctmcs())
    def test_reach_probability_monotone_in_horizon(self, chain):
        values = [reach_probability(chain, t) for t in (0.5, 1.0, 5.0, 20.0)]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1e-10

    def test_zero_horizon_reads_initial(self):
        chain = Ctmc(["a", "b"], {"b": 1.0}, {("b", "a"): 1.0}, ["b"])
        assert reach_probability(chain, 0.0) == pytest.approx(1.0)
        assert failure_probability(_birth(), 0.0) == 0.0

    def test_no_targets_is_zero(self):
        chain = Ctmc(["a"], {"a": 1.0}, {}, [])
        assert failure_probability(chain, 10.0) == 0.0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            transient_distribution(_birth(), -1.0)


class TestAbsorbedIndexing:
    """``reach_probability`` must read target mass through the *absorbed*
    chain's index.  ``with_absorbing`` preserves state order today, so a
    chain whose absorbing variant reorders its states is the regression
    guard: indexing the transient vector through the original chain's
    index would misattribute probability mass.
    """

    class _ReorderingCtmc(Ctmc):
        def with_absorbing(self, absorbing):
            plain = super().with_absorbing(absorbing)
            return Ctmc(
                tuple(reversed(plain.states)),
                plain.initial,
                plain.rates,
                plain.failed,
            )

    def test_reordered_absorbed_chain_reads_correct_mass(self):
        lam, t = 0.2, 5.0
        chain = self._ReorderingCtmc(
            ["ok", "fail"],
            {"ok": 1.0},
            {("ok", "fail"): lam, ("fail", "ok"): 50.0},
            ["fail"],
        )
        # First-passage with the target absorbing: repair is irrelevant.
        expected = 1 - math.exp(-lam * t)
        assert reach_probability(chain, t) == pytest.approx(expected, abs=1e-9)

    def test_reordering_matches_order_preserving_chain(self):
        states = ["up", "degraded", "down"]
        initial = {"up": 1.0}
        rates = {
            ("up", "degraded"): 0.4,
            ("degraded", "up"): 0.1,
            ("degraded", "down"): 0.7,
        }
        plain = Ctmc(states, initial, rates, ["down"])
        reordering = self._ReorderingCtmc(states, initial, rates, ["down"])
        for t in (0.5, 3.0, 25.0):
            assert reach_probability(reordering, t) == pytest.approx(
                reach_probability(plain, t), abs=1e-12
            )


class TestEpsilon:
    def test_tighter_epsilon_closer_to_expm(self):
        chain = _repairable(0.5, 3.0)
        exact = transient_distribution(chain, 10.0, method="expm")
        loose = transient_distribution(chain, 10.0, epsilon=1e-3)
        tight = transient_distribution(chain, 10.0, epsilon=1e-13)
        assert np.abs(tight - exact).max() <= np.abs(loose - exact).max() + 1e-13

    def test_stiff_chain_guard(self):
        # Enormous q*t exceeds the term limit and must raise, not hang.
        chain = Ctmc(
            ["a", "b"],
            {"a": 1.0},
            {("a", "b"): 1e9, ("b", "a"): 1e9},
            ["b"],
        )
        with pytest.raises(NumericalError):
            transient_distribution(chain, 1e4)


class TestEarlyExit:
    """The absorbed-mass early exit of the uniformization series.

    Once (almost) all probability sits on absorbing states, the iterates
    are fixed points and the remaining Poisson tail is added
    analytically.  The exit must agree with the ``expm`` oracle and
    never fire on chains without absorbing states.
    """

    @pytest.mark.parametrize("t", [50.0, 200.0, 1000.0])
    def test_matches_expm_oracle_on_absorbing_chains(self, t):
        """Long horizons on an absorbing chain: exactly the reachability
        shape where the exit triggers, checked against the dense oracle."""
        chain = Ctmc(
            ["up", "degraded", "down"],
            {"up": 1.0},
            {
                ("up", "degraded"): 0.4,
                ("degraded", "up"): 0.1,
                ("degraded", "down"): 0.7,
            },
            ["down"],
        )
        uni = transient_distribution(chain, t, method="uniformization")
        exp = transient_distribution(chain, t, method="expm")
        assert np.allclose(uni, exp, atol=1e-9)

    def test_reach_probability_agreement_after_exit(self):
        chain = _repairable(0.2, 1.0)
        # with_absorbing makes "fail" a fixed point → the exit path runs.
        a = reach_probability(chain, 500.0, method="uniformization")
        b = reach_probability(chain, 500.0, method="expm")
        assert a == pytest.approx(b, abs=1e-10)

    def test_converged_series_is_cut_far_below_the_term_limit(self):
        """A fast-absorbing chain over a huge horizon needs more Poisson
        terms than the guard allows — only the early exit lets the solve
        return (correctly) instead of raising."""
        chain = _birth(5.0)
        horizon = 1e6  # q*t ≈ 5.1e6 > _MAX_TERMS without the exit
        assert reach_probability(chain, horizon) == pytest.approx(1.0)

    def test_exit_respects_epsilon(self):
        chain = Ctmc(
            ["a", "b", "sink"],
            {"a": 1.0},
            {("a", "b"): 2.0, ("b", "a"): 0.5, ("b", "sink"): 3.0},
            ["sink"],
        )
        exact = transient_distribution(chain, 300.0, method="expm")
        for epsilon in (1e-6, 1e-10, 1e-13):
            approx = transient_distribution(chain, 300.0, epsilon=epsilon)
            assert np.abs(approx - exact).max() <= 10 * epsilon

    def test_no_absorbing_states_unaffected(self):
        """Fully mobile chains must never take the exit (the stiff-chain
        guard above still fires); the plain series result is unchanged."""
        chain = _repairable(0.5, 3.0)
        uni = transient_distribution(chain, 40.0)
        exp = transient_distribution(chain, 40.0, method="expm")
        assert np.allclose(uni, exp, atol=1e-9)


class TestOccupancy:
    from repro.ctmc.transient import occupancy_integrals

    def test_entries_sum_to_horizon(self):
        from repro.ctmc.transient import occupancy_integrals

        chain = _repairable(0.3, 1.0)
        occupancy = occupancy_integrals(chain, 17.0)
        assert occupancy.sum() == pytest.approx(17.0, abs=1e-6)

    def test_matches_downtime(self):
        """The failed-state occupancy is exactly the expected downtime."""
        from repro.ctmc.analysis import expected_downtime
        from repro.ctmc.transient import occupancy_integrals

        chain = _repairable(0.3, 1.0)
        occupancy = occupancy_integrals(chain, 40.0)
        downtime = expected_downtime(chain, 40.0)
        assert occupancy[chain.index["fail"]] == pytest.approx(downtime, rel=1e-6)

    def test_frozen_chain(self):
        from repro.ctmc.transient import occupancy_integrals

        chain = Ctmc(["a", "b"], {"a": 0.25, "b": 0.75}, {}, [])
        occupancy = occupancy_integrals(chain, 8.0)
        assert occupancy[0] == pytest.approx(2.0)
        assert occupancy[1] == pytest.approx(6.0)

    def test_zero_horizon(self):
        from repro.ctmc.transient import occupancy_integrals

        assert occupancy_integrals(_birth(), 0.0).sum() == 0.0

    @given(small_ctmcs(), st.floats(0.1, 15.0))
    def test_occupancy_vs_quadrature(self, chain, horizon):
        """The uniformization integral matches trapezoidal quadrature of
        the transient distribution."""
        from repro.ctmc.transient import occupancy_integrals

        occupancy = occupancy_integrals(chain, horizon)
        grid = np.linspace(0.0, horizon, 101)
        samples = np.array([transient_distribution(chain, u) for u in grid])
        quadrature = np.trapezoid(samples, grid, axis=0)
        assert np.allclose(occupancy, quadrature, atol=horizon * 2e-3)


class TestSteadyState:
    def test_two_state_balance(self):
        chain = _repairable(0.2, 1.0)
        pi = steady_state(chain)
        assert pi[1] == pytest.approx(0.2 / 1.2, abs=1e-10)

    def test_reducible_chain_rejected(self):
        chain = Ctmc(["a", "b"], {"a": 1.0}, {}, [])
        with pytest.raises(NumericalError):
            steady_state(chain)
