"""Unit tests of the run-health reporting (repro.robust.health)."""

from __future__ import annotations

from repro.robust.health import HealthEvent, HealthLog, HealthReport


def test_empty_report_is_clean():
    report = HealthReport()
    assert report.is_clean
    assert report.degradations == ()
    assert "clean" in report.summary()


def test_infos_do_not_dirty_the_report():
    log = HealthLog()
    log.info("checkpoint", "resumed from run.ckpt")
    assert log.freeze().is_clean


def test_any_recovery_dirties_the_report():
    for method in ("warning", "retry", "degradation", "budget"):
        log = HealthLog()
        getattr(log, method)("quantify", "something happened")
        assert not log.freeze().is_clean


def test_events_bucketed_by_kind():
    log = HealthLog()
    log.retry("quantify", "rung failed", cutset=frozenset({"b", "d"}), rung="exact")
    log.degradation("quantify", "fallback", cutset=frozenset({"b", "d"}), rung="bound")
    log.budget("mocus", "out of time")
    log.warning("transient", "stiff chain")
    report = log.freeze()
    assert len(report.retries) == 1
    assert len(report.degradations) == 1
    assert len(report.budget_hits) == 1
    assert len(report.warnings) == 1
    assert report.degraded_cutsets() == frozenset({frozenset({"b", "d"})})


def test_cutsets_stored_as_sorted_tuples():
    log = HealthLog()
    log.degradation("quantify", "fallback", cutset=frozenset({"d", "b"}))
    assert log.events[0].cutset == ("b", "d")


def test_event_str_mentions_everything():
    event = HealthEvent(
        "degradation", "quantify", "fallback", cutset=("b", "d"), rung="bound"
    )
    text = str(event)
    assert "degradation/quantify" in text
    assert "b+d" in text
    assert "via bound" in text


def test_summary_counts_and_lists_events():
    log = HealthLog()
    log.degradation("quantify", "fallback", cutset=frozenset({"b"}), rung="bound")
    log.budget("mocus", "out of time")
    summary = log.freeze().summary()
    assert "1 degradations" in summary
    assert "1 budget hits" in summary
    assert "out of time" in summary
