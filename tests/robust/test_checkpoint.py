"""Checkpoint/resume: manager unit tests and the kill/resume round trip."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.quantify import quantify_cutset
from repro.errors import CheckpointError, InjectedFaultError
from repro.robust import faults
from repro.robust.checkpoint import (
    CheckpointManager,
    model_fingerprint,
    record_from_dict,
    record_to_dict,
)

HORIZON = 24.0


# ----------------------------------------------------------------------
# Record serialisation
# ----------------------------------------------------------------------


def test_record_round_trip(cooling_sdft):
    record = quantify_cutset(cooling_sdft, frozenset({"b", "d"}), HORIZON)
    data = record_to_dict(record)
    json.dumps(data)  # must be JSON-serialisable as-is
    assert record_from_dict(data) == record


# ----------------------------------------------------------------------
# Manager behaviour
# ----------------------------------------------------------------------


def test_save_and_load_round_trip(tmp_path):
    manager = CheckpointManager(tmp_path / "run.ckpt", "fp")
    assert manager.load() is None
    manager.save("quantify", {"records": []})
    payload = manager.load()
    assert payload["phase"] == "quantify"
    assert payload["state"] == {"records": []}
    assert not (tmp_path / "run.ckpt.tmp").exists()


def test_load_rejects_other_fingerprints(tmp_path):
    CheckpointManager(tmp_path / "run.ckpt", "fp-a").save("mocus", {})
    with pytest.raises(CheckpointError, match="different"):
        CheckpointManager(tmp_path / "run.ckpt", "fp-b").load()


def test_load_rejects_other_format_versions(tmp_path):
    path = tmp_path / "run.ckpt"
    CheckpointManager(path, "fp").save("mocus", {})
    data = json.loads(path.read_text())
    data["version"] = 999
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="version"):
        CheckpointManager(path, "fp").load()


def test_load_rejects_corrupt_files(tmp_path):
    path = tmp_path / "run.ckpt"
    path.write_text("{not json")
    with pytest.raises(CheckpointError, match="cannot read"):
        CheckpointManager(path, "fp").load()


def test_maybe_save_is_throttled(tmp_path, fake_clock):
    manager = CheckpointManager(
        tmp_path / "run.ckpt", "fp", interval_seconds=10.0, clock=fake_clock
    )
    assert manager.maybe_save("quantify", lambda: {"n": 1})
    fake_clock.advance(5.0)
    assert not manager.maybe_save("quantify", lambda: {"n": 2})
    fake_clock.advance(5.0)
    assert manager.maybe_save("quantify", lambda: {"n": 3})
    assert manager.saves == 2
    assert manager.load()["state"] == {"n": 3}


def test_clear_is_idempotent(tmp_path):
    manager = CheckpointManager(tmp_path / "run.ckpt", "fp")
    manager.save("mocus", {})
    manager.clear()
    manager.clear()
    assert manager.load() is None


def test_write_failures_are_injectable(tmp_path):
    manager = CheckpointManager(tmp_path / "run.ckpt", "fp")
    with faults.inject("checkpoint"):
        with pytest.raises(InjectedFaultError):
            manager.save("mocus", {})
    assert manager.load() is None


def test_fingerprint_tracks_the_problem(cooling_sdft):
    base = model_fingerprint(cooling_sdft, HORIZON, 1e-15)
    assert base == model_fingerprint(cooling_sdft, HORIZON, 1e-15)
    assert base != model_fingerprint(cooling_sdft, 48.0, 1e-15)
    assert base != model_fingerprint(cooling_sdft, HORIZON, 1e-12)


# ----------------------------------------------------------------------
# The kill/resume round trip (acceptance criterion)
# ----------------------------------------------------------------------


def _checkpointed(tmp_path, **kw):
    return AnalysisOptions(
        horizon=HORIZON,
        checkpoint_path=str(tmp_path / "run.ckpt"),
        checkpoint_interval_seconds=0.0,
        **kw,
    )


def test_killed_run_resumes_and_matches_uninterrupted(cooling_sdft, tmp_path):
    clean = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
    opts = _checkpointed(tmp_path)

    # "Kill" the run mid-quantification: InjectedFaultError is outside
    # the families any recovery layer catches, so it escapes like a
    # crash would.  {b,c} is quantified after {b,d} and {a,d}, so the
    # snapshot already holds finished records when the run dies.
    target = frozenset({"b", "c"})
    with faults.inject(
        "transient_solve", when=lambda cutset=None, **_: cutset == target
    ):
        with pytest.raises(InjectedFaultError):
            analyze(cooling_sdft, opts)
    assert (tmp_path / "run.ckpt").exists()

    resumed = analyze(cooling_sdft, dataclasses.replace(opts, resume=True))
    assert resumed.failure_probability == pytest.approx(
        clean.failure_probability, rel=1e-12
    )
    assert {r.cutset for r in resumed.records} == {r.cutset for r in clean.records}
    assert not resumed.is_degraded  # a resumed clean run is still clean
    assert any("resumed" in e.message for e in resumed.health.events)
    # A finished run removes its snapshot.
    assert not (tmp_path / "run.ckpt").exists()


def test_restored_records_are_not_requantified(cooling_sdft, tmp_path):
    opts = _checkpointed(tmp_path)
    target = frozenset({"b", "c"})
    with faults.inject(
        "transient_solve", when=lambda cutset=None, **_: cutset == target
    ):
        with pytest.raises(InjectedFaultError):
            analyze(cooling_sdft, opts)
    saved = json.loads((tmp_path / "run.ckpt").read_text())
    n_saved = len(saved["state"]["records"])
    assert n_saved >= 1  # the kill must land after some finished work

    # Arm a fault for every cutset already in the snapshot: if the resume
    # re-solved them, it would crash.
    restored_names = {
        frozenset(r["cutset"]) for r in saved["state"]["records"]
    }
    with faults.inject(
        "transient_solve", when=lambda cutset=None, **_: cutset in restored_names
    ) as fault:
        resumed = analyze(cooling_sdft, dataclasses.replace(opts, resume=True))
    assert fault.trips == 0
    assert resumed.n_cutsets >= n_saved


def test_chaos_interrupted_run_resumes_bit_identical(cooling_sdft, tmp_path):
    """Chaos x verify x checkpoint: a silently-corrupted value trips the
    invariant guard (loud abort), and the resumed run — corruption gone —
    reproduces the uninterrupted answer bit for bit."""
    from repro.errors import InvariantViolation

    clean = analyze(
        cooling_sdft, AnalysisOptions(horizon=HORIZON, verify="cheap")
    )
    opts = _checkpointed(tmp_path, verify="cheap")

    target = frozenset({"b", "c"})
    with faults.inject_value(
        "solve_value",
        float("nan"),
        when=lambda cutset=None, **_: cutset == target,
    ):
        with pytest.raises(InvariantViolation):
            analyze(cooling_sdft, opts)
    assert (tmp_path / "run.ckpt").exists()

    resumed = analyze(cooling_sdft, dataclasses.replace(opts, resume=True))
    assert resumed.failure_probability == clean.failure_probability
    def essence(result):
        return sorted(
            (tuple(sorted(r.cutset)), r.probability, r.rung)
            for r in result.records
        )

    assert essence(resumed) == essence(clean)
    assert not (tmp_path / "run.ckpt").exists()


def test_resume_refuses_a_different_problem(cooling_sdft, tmp_path):
    opts = _checkpointed(tmp_path)
    with faults.inject("transient_solve"):
        with pytest.raises(InjectedFaultError):
            analyze(cooling_sdft, opts)
    other = dataclasses.replace(opts, horizon=48.0, resume=True)
    with pytest.raises(CheckpointError):
        analyze(cooling_sdft, other)


def test_resume_without_snapshot_runs_normally(cooling_sdft, tmp_path):
    clean = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
    result = analyze(
        cooling_sdft, _checkpointed(tmp_path, resume=True)
    )
    assert result.failure_probability == pytest.approx(
        clean.failure_probability, rel=1e-12
    )
    assert result.health.is_clean
