"""Invariant guards: module-level checks, the Verifier, analyzer wiring."""

from __future__ import annotations

import dataclasses
import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.quantify import McsQuantification
from repro.errors import InvariantViolation, NumericalError
from repro.obs.metrics import MetricsRegistry
from repro.robust import faults
from repro.robust.health import HealthLog
from repro.robust.verify import (
    MODES,
    Verifier,
    check_distribution,
    check_interval,
    check_probability,
    resolve_mode,
)
from tests.strategies import sd_fault_trees

HORIZON = 24.0


def _timeless(records):
    """Records with wall timings zeroed (the only run-to-run noise)."""
    return tuple(
        dataclasses.replace(record, solve_seconds=0.0) for record in records
    )


# ----------------------------------------------------------------------
# Module-level checks
# ----------------------------------------------------------------------


class TestResolveMode:
    @pytest.mark.parametrize("mode", MODES)
    def test_accepts_known_modes(self, mode):
        assert resolve_mode(mode) == mode

    @pytest.mark.parametrize("bad", ["", "on", "CHEAP", "paranoid"])
    def test_rejects_unknown_modes(self, bad):
        with pytest.raises(ValueError, match="verify mode"):
            resolve_mode(bad)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 1.0, 0.5, 1e-300, 1.0 + 1e-12])
    def test_accepts_probabilities(self, value):
        check_probability(value, "p")

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -float("inf"), -0.1, 1.1]
    )
    def test_rejects_non_probabilities(self, value):
        with pytest.raises(InvariantViolation):
            check_probability(value, "p")

    def test_message_names_the_quantity(self):
        with pytest.raises(InvariantViolation, match="p\\(pump\\)"):
            check_probability(2.0, "p(pump)")


class TestCheckDistribution:
    def test_accepts_a_distribution(self):
        check_distribution([0.25, 0.25, 0.5], "pi")

    def test_accepts_numpy_vectors(self):
        numpy = pytest.importorskip("numpy")
        check_distribution(numpy.array([0.5, 0.5]), "pi")

    @pytest.mark.parametrize(
        "entries, excerpt",
        [
            ([0.5, float("nan"), 0.5], "non-finite"),
            ([0.7, -0.2, 0.5], "negative"),
            ([0.2, 0.2], "mass"),
            ([0.7, 0.7], "mass"),
        ],
    )
    def test_rejects_broken_distributions(self, entries, excerpt):
        with pytest.raises(InvariantViolation, match=excerpt):
            check_distribution(entries, "pi")


class TestCheckInterval:
    def test_accepts_ordered_intervals(self):
        check_interval(0.1, 0.2, 0.3, "i")
        check_interval(0.2, 0.2, 0.2, "i")

    def test_slack_scales_with_magnitude(self):
        # 1e3 * default tolerance of rounding slack on large values.
        check_interval(1000.0 + 1e-7, 1000.0, 1000.0, "i")

    @pytest.mark.parametrize(
        "lo, est, hi",
        [
            (0.3, 0.2, 0.3),
            (0.1, 0.4, 0.3),
            (float("nan"), 0.2, 0.3),
            (0.1, 0.2, float("inf")),
        ],
    )
    def test_rejects_disordered_or_nonfinite(self, lo, est, hi):
        with pytest.raises(InvariantViolation):
            check_interval(lo, est, hi, "i")


# ----------------------------------------------------------------------
# The Verifier
# ----------------------------------------------------------------------


def _record(probability, *, rung="exact", lower=None, bounded=False):
    return McsQuantification(
        cutset=frozenset({"x", "y"}),
        probability=probability,
        is_dynamic=True,
        n_dynamic_in_cutset=1,
        n_dynamic_in_model=1,
        n_added_dynamic=0,
        chain_states=4,
        solve_seconds=0.0,
        rung=rung,
        bounded=bounded,
        lower_bound=lower,
    )


class TestVerifier:
    def test_off_mode_checks_nothing(self):
        verifier = Verifier("off")
        verifier.check_probability(float("nan"), "p")  # no raise
        assert verifier.record_violation(_record(float("nan"))) is None
        assert verifier.checks == 0

    def test_modes_expose_enabled_and_full(self):
        assert not Verifier("off").enabled
        assert Verifier("cheap").enabled and not Verifier("cheap").full
        assert Verifier("full").enabled and Verifier("full").full

    def test_counters_and_metrics_track_checks(self):
        metrics = MetricsRegistry()
        verifier = Verifier("cheap", metrics=metrics)
        verifier.check_probability(0.5, "p")
        with pytest.raises(InvariantViolation):
            verifier.check_probability(2.0, "p")
        assert (verifier.checks, verifier.violations) == (2, 1)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["verify.checks"] == 2
        assert snapshot["counters"]["verify.violations"] == 1
        assert "2 checks, 1 violations" in verifier.summary()

    def test_check_value_allows_sums_above_one(self):
        verifier = Verifier("cheap")
        verifier.check_value(3.7, "rare-event sum")
        with pytest.raises(InvariantViolation, match="negative"):
            verifier.check_value(-0.5, "rare-event sum")
        with pytest.raises(InvariantViolation, match="finite"):
            verifier.check_value(float("inf"), "rare-event sum")

    def test_value_violation_reports_instead_of_raising(self):
        verifier = Verifier("cheap")
        assert verifier.value_violation(0.5, "p") is None
        message = verifier.value_violation(float("nan"), "p")
        assert message is not None and "finite" in message
        assert verifier.violations == 1

    def test_record_violation_passes_clean_records(self):
        verifier = Verifier("cheap")
        assert verifier.record_violation(_record(1e-4), worst_case=1e-3) is None

    @pytest.mark.parametrize(
        "record",
        [
            _record(float("nan")),
            _record(-0.25),
            _record(1.5),
            _record(2e-4, lower=3e-4, bounded=True),  # P3: lower > value
        ],
    )
    def test_record_violation_catches_broken_records(self, record):
        assert Verifier("cheap").record_violation(record) is not None

    def test_worst_case_dominance_on_exact_records(self):
        verifier = Verifier("cheap")
        inflated = _record(5e-3)
        message = verifier.record_violation(inflated, worst_case=1e-3)
        assert message is not None and "worst-case" in message

    def test_worst_case_dominance_skips_bounded_records(self):
        """A §VIII interval's upper end may exceed the sharp worst case."""
        verifier = Verifier("cheap")
        bounded = _record(5e-3, lower=1e-4, bounded=True, rung="bound")
        assert verifier.record_violation(bounded, worst_case=1e-3) is None

    def test_worst_case_slack_tracks_tolerance(self):
        verifier = Verifier("cheap", tolerance=1e-2)
        nearly = _record(1.005e-3)
        assert verifier.record_violation(nearly, worst_case=1e-3) is None


# ----------------------------------------------------------------------
# Analyzer wiring
# ----------------------------------------------------------------------


class TestAnalyzerVerify:
    def test_rejects_unknown_mode_before_any_work(self, cooling_sdft):
        with pytest.raises(ValueError, match="verify mode"):
            analyze(cooling_sdft, AnalysisOptions(verify="always"))

    @pytest.mark.parametrize("mode", ["cheap", "full"])
    def test_verified_run_matches_unverified(self, cooling_sdft, mode):
        baseline = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        verified = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, verify=mode)
        )
        assert verified.failure_probability == baseline.failure_probability
        assert _timeless(verified.records) == _timeless(baseline.records)

    def test_verified_run_reports_its_check_count(self, cooling_sdft):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, verify="cheap")
        )
        messages = [e.message for e in result.health.events if e.stage == "verify"]
        assert any("violations" in m for m in messages)
        assert result.health.is_clean

    def test_corrupt_value_raises_without_isolation(self, cooling_sdft):
        with faults.inject_value("solve_value", float("nan")):
            with pytest.raises(InvariantViolation):
                analyze(
                    cooling_sdft,
                    AnalysisOptions(horizon=HORIZON, verify="cheap"),
                )

    def test_corrupt_value_degrades_under_isolation(self, cooling_sdft):
        clean = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        with faults.inject_value("solve_value", float("nan"), times=1):
            result = analyze(
                cooling_sdft,
                AnalysisOptions(
                    horizon=HORIZON, verify="cheap", fault_isolation=True
                ),
            )
        assert result.is_degraded
        assert result.n_degraded_cutsets == 1
        assert any(
            "invariant violation" in e.message for e in result.health.events
        )
        # The degraded record substitutes the conservative worst case, so
        # the interval still brackets the clean answer.
        lower, upper = result.failure_probability_interval()
        assert lower <= clean.failure_probability <= upper
        assert {r.cutset for r in result.records} == {
            r.cutset for r in clean.records
        }

    def test_without_verify_corruption_is_silent(self, cooling_sdft):
        """The failure mode the verify layer exists for: a NaN record is
        silently *excluded* from the rare-event sum (``nan > cutoff`` is
        false), shrinking the answer with a clean health report."""
        clean = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        with faults.inject_value("solve_value", float("nan"), times=1):
            result = analyze(
                cooling_sdft,
                AnalysisOptions(horizon=HORIZON, fault_isolation=True),
            )
        assert result.health.is_clean  # nothing noticed anything
        assert result.failure_probability < clean.failure_probability
        assert any(math.isnan(r.probability) for r in result.records)

    def test_parallel_run_verifies_pool_results(self, cooling_sdft):
        baseline = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        verified = analyze(
            cooling_sdft,
            AnalysisOptions(horizon=HORIZON, verify="cheap", jobs=2),
        )
        assert verified.failure_probability == baseline.failure_probability

    def test_corrupt_pool_value_is_resolved_in_parent(self, cooling_sdft):
        """A corrupted pool result is caught by P1 and re-solved in the
        parent: the final answer is unchanged and a warning says why.

        The predicate corrupts only inside worker processes, so the
        parent's recovery re-solve returns the genuine value.
        """
        baseline = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        parent = os.getpid()
        with faults.inject_value(
            "solve_value",
            float("nan"),
            when=lambda cutset=None, **_: os.getpid() != parent
            and cutset == frozenset({"b", "d"}),
        ):
            result = analyze(
                cooling_sdft,
                AnalysisOptions(horizon=HORIZON, verify="cheap", jobs=2),
            )
        assert result.failure_probability == baseline.failure_probability
        assert any(
            "re-solving in the parent" in e.message
            for e in result.health.events
        )


# ----------------------------------------------------------------------
# Hypothesis: verification never changes a clean result
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    sdft=sd_fault_trees(),
    horizon=st.sampled_from([6.0, 24.0, 96.0]),
    cutoff=st.sampled_from([0.0, 1e-9]),
    lump=st.booleans(),
)
def test_cheap_verify_is_an_observer(sdft, horizon, cutoff, lump):
    """``verify="cheap"`` is pure observation: bit-identical results."""
    base_opts = AnalysisOptions(horizon=horizon, cutoff=cutoff, lump_chains=lump)
    baseline = analyze(sdft, base_opts)
    verified = analyze(sdft, dataclasses.replace(base_opts, verify="cheap"))
    assert verified.failure_probability == baseline.failure_probability
    assert _timeless(verified.records) == _timeless(baseline.records)
    assert verified.failure_probability_interval() == (
        baseline.failure_probability_interval()
    )
