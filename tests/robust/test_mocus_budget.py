"""Budget interruption and resume of the MOCUS search."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, UnknownNodeError
from repro.ft.cutsets import cutset_probability
from repro.ft.mocus import mocus
from repro.robust.budget import Budget


def _interrupt(tree, **budget_kw):
    with pytest.raises(BudgetExceededError) as excinfo:
        mocus(tree, budget=Budget(**budget_kw))
    return excinfo.value


def test_cutset_budget_attaches_a_partial(cooling_tree):
    error = _interrupt(cooling_tree, max_cutsets=2)
    partial = error.partial
    assert partial is not None
    assert partial.result.truncated
    assert len(partial.result.cutsets) >= 2
    assert "frontier" in partial.frontier and "completed" in partial.frontier


def test_partial_cutsets_are_genuine(cooling_tree):
    full = {frozenset(c) for c in mocus(cooling_tree).cutsets}
    error = _interrupt(cooling_tree, max_cutsets=2)
    found = {frozenset(c) for c in error.partial.result.cutsets}
    assert found <= full


def test_remainder_bound_dominates_the_missed_mass(cooling_tree):
    probabilities = {
        name: event.probability for name, event in cooling_tree.events.items()
    }
    full = {frozenset(c) for c in mocus(cooling_tree).cutsets}
    error = _interrupt(cooling_tree, max_cutsets=2)
    found = {frozenset(c) for c in error.partial.result.cutsets}
    missed_mass = sum(cutset_probability(c, probabilities) for c in full - found)
    assert error.partial.result.remainder_bound >= missed_mass


def test_zero_wall_budget_interrupts_before_any_work(cooling_tree):
    error = _interrupt(cooling_tree, wall_seconds=0.0)
    partial = error.partial
    assert len(partial.result.cutsets) == 0
    # The untouched root partial bounds everything: remainder is 1.
    assert partial.result.remainder_bound == pytest.approx(1.0)


def test_resume_completes_the_interrupted_search(cooling_tree):
    full = mocus(cooling_tree)
    error = _interrupt(cooling_tree, max_cutsets=2)
    resumed = mocus(cooling_tree, resume=error.partial.frontier)
    assert not resumed.truncated
    assert {frozenset(c) for c in resumed.cutsets} == {
        frozenset(c) for c in full.cutsets
    }


def test_resume_rejects_snapshots_from_another_tree(cooling_tree):
    snapshot = {
        "completed": [["no-such-event"]],
        "frontier": [],
    }
    with pytest.raises(UnknownNodeError, match="no-such-event"):
        mocus(cooling_tree, resume=snapshot)


def test_progress_snapshots_lose_no_cutsets(cooling_tree):
    # Regression: a snapshot taken mid-expansion used to drop the
    # in-flight partial, so a resume from it silently lost every cutset
    # below that partial.  Every periodic snapshot must resume to the
    # exact full result.
    full = {frozenset(c) for c in mocus(cooling_tree).cutsets}
    snapshots = []
    mocus(
        cooling_tree,
        on_progress=lambda build: snapshots.append(build()),
        progress_every=1,
    )
    assert snapshots  # the hook must actually fire on this tree
    for snapshot in snapshots:
        resumed = mocus(cooling_tree, resume=snapshot)
        assert {frozenset(c) for c in resumed.cutsets} == full


def test_unlimited_budget_changes_nothing(cooling_tree):
    plain = mocus(cooling_tree)
    budgeted = mocus(cooling_tree, budget=Budget())
    assert {frozenset(c) for c in plain.cutsets} == {
        frozenset(c) for c in budgeted.cutsets
    }
    assert not budgeted.truncated
    assert budgeted.remainder_bound == 0.0
