"""Shared fixtures for the robustness tests."""

from __future__ import annotations

import pytest

from repro.robust import faults


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Safety net: no test leaks an armed fault into the next one."""
    yield
    faults.clear()


class FakeClock:
    """A manually-advanced monotonic clock for deterministic deadlines."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()
