"""Unit tests of the cooperative budget (repro.robust.budget)."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError
from repro.robust.budget import UNLIMITED, Budget


class TestUnlimited:
    def test_all_checks_are_noops(self, fake_clock):
        budget = Budget(clock=fake_clock)
        fake_clock.advance(1e9)
        budget.check_deadline("anywhere")
        budget.charge_states(10**9, "anywhere")
        for _ in range(1000):
            budget.charge_cutset("anywhere")
        assert budget.unlimited
        assert not budget.expired()
        assert budget.remaining_seconds() is None

    def test_shared_unlimited_instance(self):
        assert UNLIMITED.unlimited

    def test_any_axis_makes_it_limited(self):
        assert not Budget(wall_seconds=1.0).unlimited
        assert not Budget(max_total_states=1).unlimited
        assert not Budget(max_cutsets=1).unlimited


class TestDeadline:
    def test_ok_before_expiry(self, fake_clock):
        budget = Budget(wall_seconds=10.0, clock=fake_clock)
        fake_clock.advance(9.9)
        budget.check_deadline("mocus")
        assert not budget.expired()
        assert budget.remaining_seconds() == pytest.approx(0.1)

    def test_raises_after_expiry(self, fake_clock):
        budget = Budget(wall_seconds=10.0, clock=fake_clock)
        fake_clock.advance(10.5)
        assert budget.expired()
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.check_deadline("mocus")
        assert excinfo.value.stage == "mocus"
        assert "10" in str(excinfo.value)

    def test_elapsed_tracks_clock(self, fake_clock):
        budget = Budget(clock=fake_clock)
        fake_clock.advance(3.25)
        assert budget.elapsed_seconds() == pytest.approx(3.25)

    def test_zero_deadline_expires_immediately(self, fake_clock):
        budget = Budget(wall_seconds=0.0, clock=fake_clock)
        assert budget.expired()

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            Budget(wall_seconds=-1.0)


class TestStateBudget:
    def test_accumulates_until_cap(self):
        budget = Budget(max_total_states=100)
        budget.charge_states(60, "quantify")
        budget.charge_states(40, "quantify")
        assert budget.states_charged == 100
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge_states(1, "quantify")
        assert excinfo.value.stage == "quantify"


class TestCutsetBudget:
    def test_counts_completions(self):
        budget = Budget(max_cutsets=3)
        for _ in range(3):
            budget.charge_cutset("mocus")
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge_cutset("mocus")
        assert excinfo.value.stage == "mocus"
        assert budget.cutsets_charged == 4


def test_repr_names_the_configured_axes():
    assert "unlimited" in repr(Budget())
    text = repr(Budget(wall_seconds=5.0, max_cutsets=7))
    assert "wall=5s" in text
    assert "cutsets<=7" in text
