"""Chaos campaigns: classification, determinism, the no-silent-corruption bar."""

from __future__ import annotations

import json

import pytest

from repro.core.analyzer import AnalysisOptions
from repro.robust.chaos import CampaignReport, RunOutcome, run_campaign

HORIZON = 24.0


@pytest.fixture
def campaign(cooling_sdft):
    return run_campaign(
        cooling_sdft,
        runs=20,
        seed=11,
        options=AnalysisOptions(horizon=HORIZON),
    )


class TestRunCampaign:
    def test_twenty_runs_no_silent_corruption(self, campaign):
        """The acceptance bar: every faulted run fails loudly or brackets."""
        assert campaign.runs == 20
        assert len(campaign.outcomes) == 20
        assert campaign.ok
        counts = campaign.counts()
        assert counts.get("silent", 0) == 0
        assert counts.get("contract", 0) == 0
        # The schedule must actually bite: not every run stays clean.
        assert counts.get("loud", 0) + counts.get("bracketed", 0) >= 1

    def test_same_seed_reproduces_the_campaign(self, cooling_sdft, campaign):
        again = run_campaign(
            cooling_sdft,
            runs=20,
            seed=11,
            options=AnalysisOptions(horizon=HORIZON),
        )
        assert [o.faults for o in again.outcomes] == [
            o.faults for o in campaign.outcomes
        ]
        assert [o.outcome for o in again.outcomes] == [
            o.outcome for o in campaign.outcomes
        ]
        assert again.clean_probability == campaign.clean_probability

    def test_different_seeds_draw_different_schedules(self, cooling_sdft):
        a = run_campaign(
            cooling_sdft, runs=6, seed=1, options=AnalysisOptions(horizon=HORIZON)
        )
        b = run_campaign(
            cooling_sdft, runs=6, seed=2, options=AnalysisOptions(horizon=HORIZON)
        )
        assert [o.faults for o in a.outcomes] != [o.faults for o in b.outcomes]

    def test_bracketed_runs_keep_every_cutset(self, campaign):
        for outcome in campaign.outcomes:
            if outcome.outcome == "bracketed":
                lower, upper = outcome.interval
                assert lower <= campaign.clean_probability <= upper

    def test_report_json_round_trips(self, campaign, tmp_path):
        data = json.loads(campaign.to_json())
        assert data["ok"] is True
        assert data["runs"] == 20
        assert len(data["outcomes"]) == 20
        assert data["clean_probability"] == campaign.clean_probability
        assert sum(data["counts"].values()) == 20

    def test_summary_names_the_verdict(self, campaign):
        text = campaign.summary()
        assert "20 runs" in text
        assert "no silent corruption" in text

    def test_parallel_campaign_with_process_faults(self, cooling_sdft):
        """jobs > 1 arms worker-kill and hang faults; the farm absorbs them."""
        report = run_campaign(
            cooling_sdft,
            runs=4,
            seed=5,
            options=AnalysisOptions(horizon=HORIZON),
            jobs=2,
        )
        assert report.ok
        assert report.jobs == 2

    def test_rejects_zero_runs(self, cooling_sdft):
        with pytest.raises(ValueError, match="runs"):
            run_campaign(cooling_sdft, runs=0)

    def test_rejects_unknown_verify_mode(self, cooling_sdft):
        with pytest.raises(ValueError, match="verify mode"):
            run_campaign(cooling_sdft, runs=1, verify="sometimes")


class TestClassification:
    def test_silent_outcomes_fail_the_report(self):
        good = RunOutcome(0, ("f",), "loud", "ok")
        bad = RunOutcome(1, ("f",), "silent", "missed")
        report = CampaignReport(
            model="m",
            runs=2,
            seed=0,
            jobs=1,
            verify="cheap",
            clean_probability=1e-5,
            clean_interval=(1e-5, 1e-5),
            clean_cutsets=3,
            outcomes=(good, bad),
            elapsed_seconds=0.1,
        )
        assert not report.ok
        assert report.counts() == {"loud": 1, "silent": 1}
        assert "FAILED" in report.summary()
        assert "missed" in report.summary()

    @pytest.mark.parametrize(
        "outcome, ok",
        [
            ("clean", True),
            ("loud", True),
            ("bracketed", True),
            ("silent", False),
            ("contract", False),
        ],
    )
    def test_outcome_acceptability(self, outcome, ok):
        assert RunOutcome(0, (), outcome, "").ok is ok
