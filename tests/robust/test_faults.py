"""Unit tests of the fault-injection hook (repro.robust.faults)."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFaultError, NumericalError
from repro.robust import faults


def test_check_is_a_noop_when_unarmed():
    faults.check("transient_solve")
    faults.check("anything", cutset=frozenset({"x"}))


def test_inject_raises_within_block_only():
    with faults.inject("transient_solve"):
        with pytest.raises(InjectedFaultError):
            faults.check("transient_solve")
    faults.check("transient_solve")


def test_other_stages_unaffected():
    with faults.inject("transient_solve"):
        faults.check("chain_build")
        faults.check("mocus")


def test_instance_is_raised_as_is():
    error = NumericalError("forced")
    with faults.inject("lump", error):
        with pytest.raises(NumericalError) as excinfo:
            faults.check("lump")
        assert excinfo.value is error


def test_class_is_instantiated_per_trip():
    with faults.inject("lump", NumericalError):
        with pytest.raises(NumericalError, match="trip 1"):
            faults.check("lump")
        with pytest.raises(NumericalError, match="trip 2"):
            faults.check("lump")


def test_times_limits_trips():
    with faults.inject("transient_solve", times=2) as fault:
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                faults.check("transient_solve")
        faults.check("transient_solve")
        assert fault.trips == 2


def test_when_predicate_gates_on_context():
    target = frozenset({"b", "d"})
    with faults.inject(
        "transient_solve", when=lambda cutset=None, **_: cutset == target
    ) as fault:
        faults.check("transient_solve", cutset=frozenset({"a", "d"}))
        with pytest.raises(InjectedFaultError):
            faults.check("transient_solve", cutset=target)
        assert fault.trips == 1
        assert faults.trip_count("transient_solve") == 1


def test_nested_injections_unwind_independently():
    with faults.inject("mocus", times=0):
        with faults.inject("mocus"):
            with pytest.raises(InjectedFaultError):
                faults.check("mocus")
        # Inner disarmed, outer (exhausted) stays armed but never trips.
        faults.check("mocus")


def test_clear_disarms_everything():
    with faults.inject("mocus"), faults.inject("checkpoint"):
        faults.clear()
        faults.check("mocus")
        faults.check("checkpoint")
