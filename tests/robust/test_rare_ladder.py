"""The rare-event engine inside the ladder, the analyzer and the crosschecks.

End-to-end coverage of ISSUE 6's integration surface: the Monte-Carlo
rung delegating to :mod:`repro.ctmc.rare`, health reporting of the
achieved precision, bit-determinism across ``--jobs``, the P3
interval-order guard against inverted IS intervals, and the full-mode
statistical crosscheck.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.quantify import quantify_cutset
from repro.ctmc.builders import exponential_failure
from repro.errors import CrosscheckError, NumericalError
from repro.robust import faults
from repro.robust.ladder import quantify_with_ladder

HORIZON = 24.0
RARE_LAMBDA = 1.25e-5


@pytest.fixture
def rare_pair():
    from repro.core.sdft import SdFaultTreeBuilder

    b = SdFaultTreeBuilder("rare-pair")
    b.dynamic_event("x", exponential_failure(RARE_LAMBDA))
    b.dynamic_event("y", exponential_failure(RARE_LAMBDA))
    b.and_("top", "x", "y")
    return b.build("top")


class TestLadderRung:
    def test_rare_cutset_brackets_on_the_monte_carlo_rung(self, rare_pair):
        """At p ~ 9e-8 the rewired rung still brackets the exact value."""
        cutset = frozenset({"x", "y"})
        exact = quantify_cutset(rare_pair, cutset, HORIZON).probability
        assert exact <= 1e-7
        with faults.inject("transient_solve", NumericalError("forced")):
            outcome = quantify_with_ladder(
                rare_pair, cutset, HORIZON, monte_carlo_runs=20_000
            )
        assert outcome.rung == "monte_carlo"
        record = outcome.record
        assert record.bounded
        assert record.lower_bound > 0.0  # crude would report a hollow zero
        assert record.lower_bound <= exact <= record.probability
        assert "engine=is" in outcome.note
        assert "achieved_rel_error=" in outcome.note

    def test_engine_override_is_respected(self, cooling_sdft):
        with faults.inject("transient_solve", NumericalError("forced")):
            outcome = quantify_with_ladder(
                cooling_sdft,
                frozenset({"b", "d"}),
                HORIZON,
                monte_carlo_engine="crude",
            )
        assert outcome.rung == "monte_carlo"
        assert "engine=crude" in outcome.note

    def test_health_report_names_engine_and_achieved_precision(self, rare_pair):
        opts = AnalysisOptions(
            horizon=HORIZON, fault_isolation=True, monte_carlo_runs=20_000
        )
        with faults.inject("transient_solve", NumericalError("forced")):
            result = analyze(rare_pair, opts)
        degradations = [
            e for e in result.health.degradations if e.rung == "monte_carlo"
        ]
        assert degradations
        assert "engine=is" in degradations[0].message
        assert "achieved_rel_error=" in degradations[0].message


class TestJobsDeterminism:
    def test_monte_carlo_records_bit_identical_across_jobs(self, cooling_sdft):
        """The acceptance criterion's --jobs 1|2 clause.

        Workers fail (the armed fault is inherited across fork), the
        parent recovers every cutset through the ladder — so the rare
        engine always runs in the parent with per-cutset mixed seeds,
        and the records must match the serial run bit for bit.
        """
        base = AnalysisOptions(horizon=HORIZON, fault_isolation=True)
        with faults.inject("transient_solve", NumericalError("forced")):
            serial = analyze(cooling_sdft, dataclasses.replace(base, jobs=1))
            parallel = analyze(cooling_sdft, dataclasses.replace(base, jobs=2))
        strip = lambda r: dataclasses.replace(r, solve_seconds=0.0)  # noqa: E731
        assert [strip(r) for r in serial.records] == [
            strip(r) for r in parallel.records
        ]
        assert serial.failure_probability == parallel.failure_probability
        assert any(r.rung == "monte_carlo" for r in serial.records)


class TestInvariantGuard:
    def test_p3_catches_an_inverted_is_interval(self, cooling_sdft):
        """Silent weight inflation yields lower > upper; P3 must fire."""
        clean = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        opts = AnalysisOptions(
            horizon=HORIZON, fault_isolation=True, verify="cheap"
        )
        with faults.inject(
            "transient_solve", NumericalError("forced")
        ), faults.inject_value(
            "rare_event_estimate", lambda p: p * 1e12 + 1.1, times=1
        ):
            result = analyze(cooling_sdft, opts)
        violations = [
            e
            for e in result.health.degradations
            if "invariant violation" in e.message
        ]
        assert violations, "the inverted interval must be caught, not shipped"
        # The conservative substitute keeps the final interval honest.
        lower, upper = result.failure_probability_interval()
        assert lower <= clean.failure_probability <= upper


class TestStatisticalCrosscheck:
    def test_full_verify_cross_checks_a_rare_event_estimate(self, cooling_sdft):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, verify="full")
        )
        notes = [
            e.message
            for e in result.health.events
            if "crosscheck:" in e.message
        ]
        assert notes
        assert "1 rare-event estimates cross-checked" in notes[0]

    def test_corrupted_estimator_fails_the_crosscheck(self, cooling_sdft):
        """N-sigma disagreement with uniformization raises CrosscheckError."""
        with faults.inject_value(
            "rare_event_estimate", lambda p: p * 50.0 + 1e-3
        ), pytest.raises(CrosscheckError, match="rare-event estimate"):
            analyze(
                cooling_sdft, AnalysisOptions(horizon=HORIZON, verify="full")
            )
