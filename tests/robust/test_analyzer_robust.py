"""Acceptance tests: the resilient pipeline end to end.

The scenarios mirror the issue's acceptance criteria: inject faults in
three distinct pipeline stages (transient solve, chain build, MOCUS
budget) and check that ``analyze`` still returns a result whose health
report enumerates every degradation and whose interval contains the
fault-free answer.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.errors import AnalysisError, NumericalError
from repro.robust import faults

HORIZON = 24.0
FALLBACK_RUNGS = ("monte_carlo", "bound", "skipped")


@pytest.fixture
def clean(cooling_sdft):
    return analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))


def _assert_degraded_but_bracketing(result, clean):
    """The three acceptance properties of every fault scenario."""
    assert result.is_degraded
    lower, upper = result.failure_probability_interval()
    assert lower <= clean.failure_probability <= upper
    # Every record on a fallback rung is enumerated in the health report
    # (budget-skipped cutsets show up as budget hits instead).
    fallback = {r.cutset for r in result.records if r.rung in FALLBACK_RUNGS}
    enumerated = result.health.degraded_cutsets() | {
        frozenset(e.cutset)
        for e in result.health.budget_hits
        if e.cutset is not None
    }
    assert fallback <= enumerated or result.mcs_truncated


def test_transient_solve_fault_degrades_not_crashes(cooling_sdft, clean):
    with faults.inject("transient_solve", NumericalError("forced")):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, fault_isolation=True)
        )
    _assert_degraded_but_bracketing(result, clean)
    # Every dynamic cutset needed the simulation rung; statics stay exact.
    assert result.n_degraded_cutsets == result.n_dynamic_cutsets > 0
    assert all(
        r.rung == "monte_carlo" for r in result.records if r.rung in FALLBACK_RUNGS
    )
    assert result.health.retries  # the failed exact/lumped attempts


def test_chain_build_fault_degrades_not_crashes(cooling_sdft, clean):
    with faults.inject("chain_build", AnalysisError("forced")):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, fault_isolation=True)
        )
    _assert_degraded_but_bracketing(result, clean)
    assert result.n_degraded_cutsets > 0


def test_oversized_chains_degrade_not_crash(cooling_sdft, clean):
    # A real (non-injected) failure mode: every product chain exceeds the
    # per-cutset state guard, so both solver rungs fail structurally.
    result = analyze(
        cooling_sdft,
        AnalysisOptions(horizon=HORIZON, fault_isolation=True, max_chain_states=1),
    )
    _assert_degraded_but_bracketing(result, clean)


def test_mocus_budget_yields_truncated_result(cooling_sdft, clean):
    result = analyze(
        cooling_sdft,
        AnalysisOptions(horizon=HORIZON, fault_isolation=True, budget_cutsets=2),
    )
    assert result.mcs_truncated
    assert result.mcs_remainder_bound > 0.0
    assert result.n_cutsets < clean.n_cutsets
    assert result.health.budget_hits
    _assert_degraded_but_bracketing(result, clean)


def test_expired_deadline_yields_partial_result(cooling_sdft, clean):
    result = analyze(
        cooling_sdft,
        AnalysisOptions(horizon=HORIZON, fault_isolation=True, wall_seconds=0.0),
    )
    assert result.mcs_truncated
    assert result.health.budget_hits
    lower, upper = result.failure_probability_interval()
    assert lower <= clean.failure_probability <= upper


def test_combined_faults_and_budget(cooling_sdft, clean):
    with faults.inject("transient_solve", NumericalError("forced")):
        result = analyze(
            cooling_sdft,
            AnalysisOptions(
                horizon=HORIZON, fault_isolation=True, budget_cutsets=3
            ),
        )
    assert result.mcs_truncated
    _assert_degraded_but_bracketing(result, clean)


def test_without_isolation_faults_still_crash(cooling_sdft):
    with faults.inject("transient_solve", NumericalError("forced")):
        with pytest.raises(NumericalError, match="forced"):
            analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))


def test_clean_run_reports_clean_health(clean):
    assert not clean.is_degraded
    assert clean.health.is_clean
    assert clean.n_degraded_cutsets == 0
    lower, upper = clean.failure_probability_interval()
    assert lower == upper == pytest.approx(clean.failure_probability)


def test_degraded_summary_is_loud(cooling_sdft):
    with faults.inject("transient_solve", NumericalError("forced")):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, fault_isolation=True)
        )
    summary = result.summary()
    assert "DEGRADED" in summary
    assert "run health" in summary


def test_isolated_clean_run_matches_plain_run(cooling_sdft, clean):
    # Fault isolation must be free when nothing goes wrong.
    result = analyze(
        cooling_sdft, AnalysisOptions(horizon=HORIZON, fault_isolation=True)
    )
    assert not result.is_degraded
    assert result.failure_probability == pytest.approx(
        clean.failure_probability, rel=1e-12
    )
