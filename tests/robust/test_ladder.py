"""The degradation ladder on the paper's cooling example.

Each test forces failures at a specific rung via fault injection and
checks both the rung the ladder lands on and that the degraded value
still brackets the exact (fault-free) answer.
"""

from __future__ import annotations

import pytest

from repro.core.quantify import quantify_cutset
from repro.errors import NumericalError
from repro.robust import faults
from repro.robust.budget import Budget
from repro.robust.ladder import quantify_with_ladder

CUTSET = frozenset({"b", "d"})
HORIZON = 24.0


@pytest.fixture
def clean_value(cooling_sdft):
    """The exact p̃({b,d}) with nothing injected."""
    return quantify_cutset(cooling_sdft, CUTSET, HORIZON).probability


def test_clean_run_stays_on_the_exact_rung(cooling_sdft, clean_value):
    outcome = quantify_with_ladder(cooling_sdft, CUTSET, HORIZON)
    assert outcome.rung == "exact"
    assert not outcome.degraded
    assert outcome.attempts == ()
    assert outcome.record.probability == pytest.approx(clean_value)


def test_single_failure_recovers_on_the_lumped_rung(cooling_sdft, clean_value):
    with faults.inject("transient_solve", NumericalError("forced"), times=1):
        outcome = quantify_with_ladder(cooling_sdft, CUTSET, HORIZON)
    assert outcome.rung == "lumped"
    assert outcome.degraded
    assert [a.rung for a in outcome.attempts] == ["exact"]
    assert "forced" in outcome.attempts[0].error
    # Lumping is exact: the recovered value matches the clean one.
    assert outcome.record.probability == pytest.approx(clean_value, rel=1e-9)


def test_persistent_solver_failure_lands_on_monte_carlo(cooling_sdft, clean_value):
    with faults.inject("transient_solve", NumericalError("forced")):
        outcome = quantify_with_ladder(cooling_sdft, CUTSET, HORIZON)
    assert outcome.rung == "monte_carlo"
    assert [a.rung for a in outcome.attempts] == ["exact", "lumped"]
    record = outcome.record
    assert record.bounded
    assert record.lower_bound <= clean_value <= record.probability


def test_monte_carlo_rung_is_deterministic(cooling_sdft):
    import dataclasses

    with faults.inject("transient_solve", NumericalError("forced")):
        first = quantify_with_ladder(cooling_sdft, CUTSET, HORIZON)
        second = quantify_with_ladder(cooling_sdft, CUTSET, HORIZON)
    # Identical up to wall-clock timing: the per-cutset seed mixing makes
    # the simulation rung reproducible.
    strip = lambda r: dataclasses.replace(r, solve_seconds=0.0)  # noqa: E731
    assert strip(first.record) == strip(second.record)


def test_everything_failing_lands_on_the_bound_rung(cooling_sdft, clean_value):
    with faults.inject("transient_solve", NumericalError("forced")), faults.inject(
        "monte_carlo", NumericalError("forced")
    ):
        outcome = quantify_with_ladder(cooling_sdft, CUTSET, HORIZON)
    assert outcome.rung == "bound"
    assert [a.rung for a in outcome.attempts] == ["exact", "lumped", "monte_carlo"]
    record = outcome.record
    assert record.bounded
    assert record.lower_bound <= clean_value <= record.probability


def test_expired_budget_skips_monte_carlo(cooling_sdft, clean_value):
    # An already-expired wall clock fails the solver rungs and makes the
    # ladder jump straight past the (slow) simulation to the cheap bound.
    outcome = quantify_with_ladder(
        cooling_sdft, CUTSET, HORIZON, budget=Budget(wall_seconds=0.0)
    )
    assert outcome.rung == "bound"
    skipped = [a for a in outcome.attempts if a.rung == "monte_carlo"]
    assert skipped and "skipped" in skipped[0].error
    assert outcome.record.lower_bound <= clean_value <= outcome.record.probability


def test_static_cutsets_never_degrade(cooling_sdft):
    with faults.inject("transient_solve", NumericalError("forced")):
        outcome = quantify_with_ladder(cooling_sdft, frozenset({"e"}), HORIZON)
    assert outcome.rung == "exact"
    assert outcome.record.probability == pytest.approx(3e-6)
