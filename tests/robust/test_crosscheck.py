"""Differential cross-checks: re-quantification, BDD oracle, brackets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.to_static import to_static
from repro.errors import CrosscheckError
from repro.ft.mocus import MocusOptions, mocus
from repro.robust.crosscheck import (
    CrosscheckSummary,
    run_crosschecks,
)
from repro.robust.health import HealthLog

HORIZON = 24.0


def _analysis_pieces(sdft, opts):
    """The inputs run_crosschecks receives from the analyzer."""
    result = analyze(sdft, opts)
    tree = to_static(sdft, opts.horizon).tree
    mocus_result = mocus(tree, MocusOptions(cutoff=opts.cutoff))
    return tree, mocus_result, result


class TestRunCrosschecks:
    def test_clean_run_passes_every_check(self, cooling_sdft):
        opts = AnalysisOptions(horizon=HORIZON)
        tree, mocus_result, result = _analysis_pieces(cooling_sdft, opts)
        health = HealthLog()
        summary = run_crosschecks(
            cooling_sdft, tree, mocus_result, result.records, opts, health
        )
        assert summary.rechecked >= 1
        assert summary.bdd_checked  # 5 events: well under the ceiling
        assert summary.bracketed >= 1
        assert any("crosscheck" in e.message for e in health.freeze().events)

    def test_detects_a_corrupted_record(self, cooling_sdft):
        """A silently-inflated stored value disagrees with the re-solve."""
        opts = AnalysisOptions(horizon=HORIZON)
        tree, mocus_result, result = _analysis_pieces(cooling_sdft, opts)
        doctored = tuple(
            dataclasses.replace(r, probability=r.probability * 1.01)
            if r.is_dynamic
            else r
            for r in result.records
        )
        with pytest.raises(CrosscheckError, match="disagrees"):
            run_crosschecks(
                cooling_sdft, tree, mocus_result, doctored, opts, HealthLog()
            )

    def test_big_trees_run_the_bdd_oracle_now(self):
        """The 24-event ceiling is gone: the BWR model compiles and checks."""
        from repro.models.bwr import build_bwr

        big_sdft = build_bwr()
        big_opts = AnalysisOptions(horizon=HORIZON, cutoff=1e-7)
        big_tree, big_mocus, big_result = _analysis_pieces(big_sdft, big_opts)
        assert len(big_tree.events) > 24  # the old oracle would have skipped
        summary = run_crosschecks(
            big_sdft,
            big_tree,
            big_mocus,
            big_result.records,
            big_opts,
            HealthLog(),
        )
        assert summary.bdd_checked
        assert not any("BDD oracle" in s for s in summary.skipped)

    def test_tiny_node_budget_skips_the_oracle_with_a_note(self, cooling_sdft):
        """The only size gate left is the node budget, and it skips cleanly."""
        opts = AnalysisOptions(horizon=HORIZON, bdd_node_budget=1)
        tree, mocus_result, result = _analysis_pieces(cooling_sdft, opts)
        summary = run_crosschecks(
            cooling_sdft, tree, mocus_result, result.records, opts, HealthLog()
        )
        assert not summary.bdd_checked
        assert any("node budget" in s for s in summary.skipped)

    def test_static_only_records_skip_with_notes(self, cooling_sdft):
        """With nothing dynamic to re-solve, both samplers note the skip."""
        opts = AnalysisOptions(horizon=HORIZON)
        tree, mocus_result, result = _analysis_pieces(cooling_sdft, opts)
        static_only = tuple(r for r in result.records if not r.is_dynamic)
        summary = run_crosschecks(
            cooling_sdft, tree, mocus_result, static_only, opts, HealthLog()
        )
        assert summary.rechecked == 0
        assert summary.bracketed == 0
        assert len(summary.skipped) >= 2

    def test_summary_message_is_informative(self):
        summary = CrosscheckSummary(5, True, 3, ("BDD oracle: nope",))
        message = summary.message()
        assert "5 cutsets re-quantified" in message
        assert "BDD oracle checked" in message
        assert "skipped" in message


class TestAnalyzerFullMode:
    def test_full_mode_runs_and_logs_crosschecks(self, cooling_sdft):
        result = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, verify="full")
        )
        assert any(
            "crosscheck" in e.message for e in result.health.events
        )
        assert result.health.is_clean

    def test_full_mode_matches_off_mode(self, cooling_sdft):
        baseline = analyze(cooling_sdft, AnalysisOptions(horizon=HORIZON))
        full = analyze(
            cooling_sdft, AnalysisOptions(horizon=HORIZON, verify="full")
        )
        assert full.failure_probability == baseline.failure_probability
