"""Observability overhead: the disabled path must cost <= 2% — proven.

The observability layer (:mod:`repro.obs`) promises that an untraced
analysis pays essentially nothing for the instrumentation now threaded
through MOCUS, the quantification loop, the transient solver, the
ladder and the budgets.  This benchmark *proves* the bound instead of
eyeballing an A/B run (the uninstrumented code no longer exists to A/B
against, and run-to-run noise on small models dwarfs sub-percent
effects):

1. measure the per-call cost of every disabled primitive the hot paths
   invoke — entering/exiting the shared null span, ``NULL_METRICS``
   counter/observe calls, the ``obs or NULL_OBS`` resolution;
2. count how often an analysis actually invokes each primitive, taken
   from a *metered* run of the same analysis (spans recorded, metric
   call sites enumerated — the collection design emits once per solve
   or per run, never inside inner loops);
3. assert ``sum(cost x calls) <= 2%`` of the measured quantification
   wall time.

Run as a script::

    python benchmarks/bench_obs_overhead.py [--json]

or through pytest (``pytest benchmarks/bench_obs_overhead.py -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: The promised ceiling on disabled-path overhead.
OVERHEAD_BUDGET = 0.02


def _time_per_call(fn, n: int = 200_000) -> float:
    """Median-of-5 per-call wall time of ``fn`` over ``n`` iterations."""
    timings = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        timings.append((time.perf_counter() - start) / n)
    return sorted(timings)[2]


def measure_null_primitives() -> dict:
    """Per-call wall cost of each disabled observability primitive."""
    from repro.obs.core import NULL_OBS
    from repro.obs.metrics import NULL_METRICS
    from repro.obs.trace import NULL_TRACER

    def null_span():
        with NULL_TRACER.span("x", attr=1):
            pass

    def null_count():
        NULL_METRICS.count("x", 3)

    def null_observe():
        NULL_METRICS.observe("x", 1.0)

    def resolve():
        obs = None
        obs = obs if obs is not None else NULL_OBS
        return obs

    return {
        "span": _time_per_call(null_span),
        "count": _time_per_call(null_count),
        "observe": _time_per_call(null_observe),
        "resolve": _time_per_call(resolve),
    }


def build_model():
    """The fictive BWR study — the reference workload of the repo."""
    from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

    return build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES))


def instrumentation_call_counts(sdft, options_kwargs) -> dict:
    """How often one analysis touches each disabled primitive.

    Derived from a metered run of the same analysis: every recorded
    span is one null-span enter/exit in the disabled run; every metric
    registry call site fires a bounded number of times (once per run,
    per solve or per cutset — by design never inside an inner loop).
    """
    from repro.core.analyzer import AnalysisOptions, analyze

    result = analyze(
        sdft, AnalysisOptions(collect_metrics=True, **options_kwargs)
    )
    counters = result.metrics["counters"]
    histograms = result.metrics["histograms"]
    solves = result.cache_misses
    n_records = len(result.records)

    # Spans: the phase spans (analyze/translate/mocus/quantify) plus one
    # quantify.solve per actual chain solve.  Cache hits and static
    # cutsets return before the span in quantify_model — but budget the
    # worst case anyway: one span attempt per record.
    spans = 4 + solves + n_records
    # Counters: mocus emits its six totals once per run; the dedup pair
    # once per run; budget charges once per solve and per cutset (upper
    # bound: every counter key that exists fired once per record).
    counts = len(counters) + 2 * n_records
    # Observations: series-terms once per solve, early-exit at most once
    # per solve; pool metrics are absent in the serial path.
    observes = len(histograms) + 2 * solves
    # ``obs or NULL_OBS``-style resolutions: a handful per quantified
    # cutset across quantify_cutset/quantify_model/_uniformization.
    resolves = 4 * n_records

    return {
        "spans": spans,
        "counts": counts,
        "observes": observes,
        "resolves": resolves,
        "quantify_seconds": result.timings.quantification_seconds,
        "total_seconds": result.timings.total_seconds,
        "n_records": n_records,
        "n_solves": solves,
    }


def overhead_report(primitives: dict, calls: dict) -> dict:
    """The projected disabled-path overhead against the 2% budget."""
    projected = (
        calls["spans"] * primitives["span"]
        + calls["counts"] * primitives["count"]
        + calls["observes"] * primitives["observe"]
        + calls["resolves"] * primitives["resolve"]
    )
    baseline = calls["quantify_seconds"]
    return {
        "projected_overhead_seconds": projected,
        "quantify_seconds": baseline,
        "overhead_fraction": projected / baseline if baseline > 0 else 0.0,
        "budget_fraction": OVERHEAD_BUDGET,
    }


def run(options_kwargs=None) -> dict:
    primitives = measure_null_primitives()
    calls = instrumentation_call_counts(build_model(), options_kwargs or {})
    report = overhead_report(primitives, calls)
    return {
        "benchmark": "obs_overhead",
        "primitives_seconds_per_call": primitives,
        "calls": calls,
        "report": report,
    }


def test_disabled_overhead_within_budget():
    """The <= 2% guarantee documented in docs/observability.md."""
    payload = run()
    report = payload["report"]
    assert report["overhead_fraction"] <= OVERHEAD_BUDGET, (
        f"disabled observability projected at "
        f"{report['overhead_fraction']:.2%} of quantification time, "
        f"budget is {OVERHEAD_BUDGET:.0%}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", action="store_true", help="emit the payload as JSON"
    )
    args = parser.parse_args(argv)
    payload = run()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        primitives = payload["primitives_seconds_per_call"]
        report = payload["report"]
        print("disabled-primitive costs (per call):")
        for name, cost in primitives.items():
            print(f"  {name:10s} {cost * 1e9:8.1f} ns")
        calls = payload["calls"]
        print(
            f"instrumentation touches per analysis: "
            f"{calls['spans']} spans, {calls['counts']} counts, "
            f"{calls['observes']} observations, {calls['resolves']} resolutions"
        )
        print(
            f"projected disabled overhead: "
            f"{report['projected_overhead_seconds'] * 1e3:.3f} ms over a "
            f"{report['quantify_seconds']:.3f} s quantification phase "
            f"= {report['overhead_fraction']:.3%} "
            f"(budget {report['budget_fraction']:.0%})"
        )
    ok = payload["report"]["overhead_fraction"] <= OVERHEAD_BUDGET
    print("PASS" if ok else "FAIL: overhead budget exceeded")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
