"""E4 — Section VI-B table: sweeping the share of dynamic basic events.

Paper values (model 1, k = 1, horizon 24 h):

| % dyn. BE | % trig. BE | failure freq. | analysis time |
|-----------|------------|---------------|---------------|
| 0         | 0          | 1.50e-9 (*)   | –             |
| 10        | 1          | 1.45e-9 (*)   | 15 s          |
| 20        | 2          | 1.10e-5 (*)   | 40 s          |
| 30        | 3          | 6.45e-6 (*)   | 1m 53s        |
| 40        | 4          | 5.89e-6 (*)   | 1m 26s        |
| 50        | 5          | 5.78e-6 (*)   | 1m 36s        |
| 100       | 10         | 5.71e-6 (*)   | 2m 12s        |

(*) the magnitudes in the paper's scan are OCR-garbled; the shape it
describes in prose is unambiguous: the frequency *decreases
monotonically*, "adding the first 40 % of dynamic basic events has the
highest impact", and "the analysis time does not substantially change
after we reach 30 %".  Those three shapes are what this benchmark
reproduces on the synthetic stand-in.
"""

import pytest

from benchmarks.conftest import emit, scaled_model_1, static_cutsets_model_1
from repro.core.analyzer import AnalysisOptions, analyze
from repro.models.enrich import dynamize, plan_dynamization

OPTIONS = AnalysisOptions(horizon=24.0)
PERCENTS = (10, 20, 30, 40, 50, 100)


def _enriched(percent: int):
    cutsets = static_cutsets_model_1()
    plan = plan_dynamization(
        cutsets, dynamic_fraction=percent / 100.0, triggered_fraction=0.1
    )
    return plan, dynamize(scaled_model_1(), plan, horizon=OPTIONS.horizon)


def bench_dynamic_share_static_row(benchmark):
    cutsets = benchmark.pedantic(static_cutsets_model_1, rounds=1, iterations=1)
    emit(
        benchmark,
        "E4/0%",
        failure_frequency=f"{cutsets.rare_event():.3e}",
        dynamic_events=0,
        triggered_events=0,
    )


@pytest.mark.parametrize("percent", PERCENTS)
def bench_dynamic_share_row(benchmark, percent):
    plan, sdft = _enriched(percent)
    result = benchmark.pedantic(
        lambda: analyze(sdft, OPTIONS), rounds=1, iterations=1
    )
    mean_total, mean_added = result.mean_dynamic_events()
    emit(
        benchmark,
        f"E4/{percent}%",
        failure_frequency=f"{result.failure_probability:.3e}",
        dynamic_events=len(plan.dynamic_events),
        triggered_events=plan.n_triggered,
        dynamic_cutsets=result.n_dynamic_cutsets,
        mean_dynamic_per_cutset=f"{mean_total:.2f}",
    )


def bench_dynamic_share_shape_check(benchmark):
    """The three qualitative claims of the paper's prose in one pass."""

    def run():
        static_value = static_cutsets_model_1().rare_event()
        values = {0: static_value}
        for percent in (20, 40, 100):
            _, sdft = _enriched(percent)
            values[percent] = analyze(sdft, OPTIONS).failure_probability
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    assert values[20] < values[0]
    assert values[40] < values[20]
    assert values[100] <= values[40] * 1.001
    # "The first 40 % have the highest impact": the drop from 0 to 40 %
    # dwarfs the drop from 40 to 100 %.
    early_drop = values[0] - values[40]
    late_drop = values[40] - values[100]
    assert early_drop > late_drop
    emit(
        benchmark,
        "E4/shape",
        monotone=True,
        early_drop=f"{early_drop:.3e}",
        late_drop=f"{late_drop:.3e}",
    )
