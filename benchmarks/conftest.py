"""Shared infrastructure of the experiment benchmarks.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  The printed rows
appear with ``pytest benchmarks/ --benchmark-only -s``; without ``-s``
the same numbers are attached to each benchmark's ``extra_info`` and
land in pytest-benchmark's report.

Scaling: the synthetic industrial models accept a scale factor through
the ``REPRO_BENCH_SCALE`` environment variable (default ``0.6``).  At
``1.0`` the stand-in studies have ~40k/60k minimal cutsets and the
sweeps take tens of minutes — closer to the paper's magnitudes; the
default keeps a full benchmark run in the minutes range on one core.
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache

import pytest

#: Default scale of the synthetic industrial models in benchmarks.
DEFAULT_SCALE = 0.6


def bench_scale() -> float:
    """The synthetic-model scale factor (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", str(DEFAULT_SCALE)))


@lru_cache(maxsize=None)
def scaled_model_1():
    """The model-1 stand-in at the benchmark scale (cached per session)."""
    from repro.models.synthetic import model_1

    return model_1(bench_scale())


@lru_cache(maxsize=None)
def scaled_model_2():
    """The model-2 stand-in at the benchmark scale (cached per session)."""
    from repro.models.synthetic import model_2

    return model_2(bench_scale())


@lru_cache(maxsize=None)
def static_cutsets_model_1():
    """Minimal cutsets of the scaled model 1 (cached per session)."""
    from repro.ft.mocus import mocus

    return mocus(scaled_model_1()).cutsets


def emit(benchmark, label: str, **fields) -> None:
    """Print one table row and attach it to the benchmark report."""
    parts = [f"{key}={value}" for key, value in fields.items()]
    line = f"[{label}] " + "  ".join(parts)
    print(line, file=sys.stderr)
    if benchmark is not None:
        benchmark.extra_info.update({"label": label, **fields})


@pytest.fixture(scope="session")
def bwr_full():
    """The fully dynamic BWR study (all trigger stages)."""
    from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

    return build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES))
