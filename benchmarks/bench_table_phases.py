"""E7 — Section VI-B: analysis time vs phase count k on both models.

The paper compares analysis times for k = 1, 2, 3 phases per dynamic
basic event on both studies and concludes the time "grows exponentially
when increasing the size of Markov models of MCSs" — larger k multiplies
every per-cutset chain's state space.

One benchmark per (model, k); the shape check asserts the monotone
growth.  Dynamization is fixed at 40 % dynamic / 10 % triggered, k
varied.
"""

import pytest

from benchmarks.conftest import (
    emit,
    scaled_model_1,
    scaled_model_2,
    static_cutsets_model_1,
)
from repro.core.analyzer import AnalysisOptions, analyze
from repro.ft.mocus import mocus
from repro.models.enrich import dynamize, plan_dynamization

OPTIONS = AnalysisOptions(horizon=24.0)
PHASE_COUNTS = (1, 2, 3)

_cutsets_cache = {}


def _enriched(model_name: str, phases: int):
    """The dynamized model plus the paper's "static cutoff" options.

    The MCS list must not depend on the phase count (the paper keeps
    the static cutoff in all experiments), so the original static
    probabilities of the dynamized events override the k-phase worst
    case during MOCUS; only the quantification sees the Erlang chains.
    """
    if model_name == "model-1":
        tree = scaled_model_1()
        cutsets = static_cutsets_model_1()
    else:
        tree = scaled_model_2()
        if "model-2" not in _cutsets_cache:
            _cutsets_cache["model-2"] = mocus(tree).cutsets
        cutsets = _cutsets_cache["model-2"]
    plan = plan_dynamization(cutsets, 0.4, 0.1)
    sdft = dynamize(tree, plan, horizon=OPTIONS.horizon, phases=phases)
    overrides = {
        name: tree.events[name].probability for name in plan.dynamic_events
    }
    options = AnalysisOptions(
        horizon=OPTIONS.horizon, mocus_probability_overrides=overrides
    )
    return sdft, options


@pytest.mark.parametrize("phases", PHASE_COUNTS)
@pytest.mark.parametrize("model_name", ["model-1", "model-2"])
def bench_phase_count(benchmark, model_name, phases):
    sdft, options = _enriched(model_name, phases)
    result = benchmark.pedantic(
        lambda: analyze(sdft, options), rounds=1, iterations=1
    )
    emit(
        benchmark,
        f"E7/{model_name}-k{phases}",
        failure_frequency=f"{result.failure_probability:.3e}",
        quantification_seconds=f"{result.timings.quantification_seconds:.2f}",
        chain_solves=result.cache_misses,
    )


def bench_phase_shape_check(benchmark):
    """Quantification cost grows with k (chain sizes multiply)."""

    def run():
        times = []
        for phases in (1, 3):
            sdft, options = _enriched("model-1", phases)
            result = analyze(sdft, options)
            times.append(result.timings.quantification_seconds)
        return times

    t1, t3 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t3 > t1, (t1, t3)
    emit(benchmark, "E7/shape", k1_seconds=f"{t1:.2f}", k3_seconds=f"{t3:.2f}")
