"""P1 — parallel cutset quantification: dedup, farm and cache speedup.

Measures the full :func:`repro.core.analyzer.analyze` pipeline per
stage (translate / MOCUS / quantify / other) across worker counts and
across persistent-cache temperatures, and records the signature-dedup
statistics that make the solver farm worthwhile.  Run as a script::

    python benchmarks/bench_parallel_quantify.py --output BENCH_quantify.json

Each case runs three phases against one ephemeral cache directory:

1. **cold** — ``jobs=1`` with an empty cache: the honest baseline, and
   the run that populates the solve/MOCUS/records layers;
2. **warm-solve** — the remaining ``--jobs`` values with the records
   layer scrubbed between runs, so translate/MOCUS/quantify all execute
   but every unique-model solve is served from the persistent solve
   layer (and the cutset list from the MOCUS layer).  This is the
   speedup a re-analysis with *changed run options* sees;
3. **warm-full** — an identical rerun against the intact cache: the
   records layer restores the entire result, the end-to-end speedup a
   byte-identical re-analysis sees.

The payload records honest numbers for the machine it ran on —
``cpu_count`` is part of the output, so a single-core runner showing no
*parallel* speedup is a property of the runner, not of the code; the
cache speedups are machine-independent.  The script also *asserts* the
determinism contract: every jobs setting and every cache temperature
must reproduce the cold records bit for bit (wall-clock fields
excluded).

``--tiny`` restricts the sweep to the small cooling model (seconds, for
CI smoke jobs); the default sweep runs the fictive BWR study and a
dynamized synthetic PSA model.  ``--min-warm-speedup X`` turns the
warm-full end-to-end speedup into a gate: exit non-zero if any
non-trivial case rewarms slower than ``X``x (the CI bench-smoke floor).
``validate_payload`` is the schema check the CI smoke job runs against
the emitted file.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import shutil
import sqlite3
import sys
import tempfile
import time

#: Pre-cache translate+MOCUS seconds of the BWR case recorded on the CI
#: reference runner before the MOCUS subsumption-skip/memo work (the
#: jobs=1 run of the previous BENCH_quantify.json: 2.1355s wall minus
#: 0.2990s quantification).  Kept so the release-over-release reduction
#: is visible in the payload itself.
BWR_TRANSLATE_MOCUS_BASELINE_SECONDS = 1.8365

#: Models too small for the warm-full speedup to beat process noise;
#: they are exempt from the ``--min-warm-speedup`` gate.
_GATE_EXEMPT = ("cooling",)


def _masked_records(result):
    return [
        dataclasses.replace(r, solve_seconds=0.0) for r in result.records
    ]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _scrub_records_layer(cache_dir: str) -> None:
    """Drop the records layer so a rerun re-executes the pipeline.

    Leaves the solve and MOCUS layers intact — exactly the state a user
    sees after changing a run option that is part of the records key
    but not of the per-model solve keys.
    """
    db = os.path.join(cache_dir, "solve-cache.sqlite")
    if not os.path.exists(db):
        return
    with sqlite3.connect(db) as connection:
        connection.execute("DELETE FROM entries WHERE kind = 'records'")


def _stages(result, wall: float) -> dict:
    """Per-stage wall breakdown of one analysis run."""
    translate = result.timings.translation_seconds
    mocus = result.timings.mcs_generation_seconds
    quantify = result.timings.quantification_seconds
    return {
        "wall_seconds": round(wall, 4),
        "translate_seconds": round(translate, 4),
        "mocus_seconds": round(mocus, 4),
        "quantification_seconds": round(quantify, 4),
        "other_seconds": round(
            max(0.0, wall - translate - mocus - quantify), 4
        ),
    }


def build_cases(scale: float, tiny: bool):
    """``(name, sdft, options_kwargs)`` triples of the sweep."""
    from repro.core.sdft import SdFaultTreeBuilder
    from repro.ctmc.builders import repairable, triggered_repairable

    b = SdFaultTreeBuilder("cooling-sd")
    b.static_event("a", 3e-3).static_event("c", 3e-3).static_event("e", 3e-6)
    b.dynamic_event("b", repairable(0.001, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")
    cooling = b.build("cooling")
    cases = [("cooling", cooling, {})]
    if tiny:
        return cases

    from repro.ft.mocus import MocusOptions, mocus
    from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr
    from repro.models.enrich import dynamize, plan_dynamization
    from repro.models.synthetic import model_1

    bwr = build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES))
    cases.append(("bwr", bwr, {}))

    tree = model_1(scale)
    cutsets = mocus(tree, MocusOptions(cutoff=1e-10)).cutsets
    plan = plan_dynamization(cutsets, 0.3, 0.5)
    cases.append(
        ("synthetic-1-dynamized", dynamize(tree, plan, 24.0), {"cutoff": 1e-10})
    )
    return cases


def run_case(name: str, sdft, jobs_list, options_kwargs) -> dict:
    """Sweep one model over jobs and cache temperatures; assert identity."""
    from repro.core.analyzer import AnalysisOptions, analyze

    cache_dir = tempfile.mkdtemp(prefix=f"bench-cache-{name}-")
    runs = []
    try:
        # Phase 1 — cold baseline: empty cache, serial.
        started = time.perf_counter()
        baseline = analyze(
            sdft,
            AnalysisOptions(
                jobs=jobs_list[0], cache_dir=cache_dir, **options_kwargs
            ),
        )
        cold_wall = time.perf_counter() - started
        cold = _stages(baseline, cold_wall)
        cold_quantify = baseline.timings.quantification_seconds
        runs.append({"jobs": baseline.perf.jobs, "cache": "cold", **cold})
        print(
            f"[{name}] jobs={jobs_list[0]} cold: total {cold_wall:.2f}s "
            f"(translate {cold['translate_seconds']:.2f}s, "
            f"mocus {cold['mocus_seconds']:.2f}s, "
            f"quantify {cold['quantification_seconds']:.2f}s)",
            flush=True,
        )

        # Phase 2 — warm solve/MOCUS layers under the remaining jobs
        # values: the records layer is scrubbed before each run so the
        # pipeline executes, but every unique solve is a cache hit.
        for jobs in jobs_list[1:]:
            _scrub_records_layer(cache_dir)
            started = time.perf_counter()
            result = analyze(
                sdft,
                AnalysisOptions(
                    jobs=jobs, cache_dir=cache_dir, **options_kwargs
                ),
            )
            wall = time.perf_counter() - started
            assert (
                result.failure_probability == baseline.failure_probability
            ), f"{name}: jobs={jobs} changed the failure probability"
            assert _masked_records(result) == _masked_records(baseline), (
                f"{name}: jobs={jobs} changed the per-cutset records"
            )
            stages = _stages(result, wall)
            quantify = result.timings.quantification_seconds
            runs.append(
                {
                    "jobs": result.perf.jobs,
                    "cache": "warm-solve",
                    **stages,
                    "quantification_speedup": round(
                        cold_quantify / quantify, 3
                    )
                    if quantify > 0.0
                    else 1.0,
                }
            )
            print(
                f"[{name}] jobs={jobs} warm-solve: total {wall:.2f}s, "
                f"quantification {quantify:.2f}s "
                f"({runs[-1]['quantification_speedup']}x vs cold)",
                flush=True,
            )

        # Phase 3 — warm-full rerun: the records layer restores the
        # whole result; the end-to-end speedup of a byte-identical
        # re-analysis.
        started = time.perf_counter()
        rewarm = analyze(
            sdft,
            AnalysisOptions(
                jobs=jobs_list[0], cache_dir=cache_dir, **options_kwargs
            ),
        )
        warm_wall = time.perf_counter() - started
        assert (
            rewarm.failure_probability == baseline.failure_probability
        ), f"{name}: the cached rerun changed the failure probability"
        assert _masked_records(rewarm) == _masked_records(baseline), (
            f"{name}: the cached rerun changed the per-cutset records"
        )
        restored = any(
            "full-result hit" in event.message
            for event in rewarm.health.events
            if event.stage == "cache"
        )
        warm_cache = {
            "cold_wall_seconds": round(cold_wall, 4),
            "warm_wall_seconds": round(warm_wall, 4),
            "end_to_end_speedup": round(cold_wall / warm_wall, 2)
            if warm_wall > 0.0
            else 1.0,
            "records_restored": restored,
            "identical_to_cold": True,
        }
        print(
            f"[{name}] warm-full rerun: {warm_wall:.3f}s vs cold "
            f"{cold_wall:.2f}s ({warm_cache['end_to_end_speedup']}x)",
            flush=True,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    states_solved = sum(
        r.chain_states for r in baseline.records if not r.cache_hit
    )
    verify = measure_verify_overhead(name, sdft, options_kwargs)
    case = {
        "model": name,
        "n_cutsets": baseline.n_cutsets,
        "n_dynamic_cutsets": baseline.n_dynamic_cutsets,
        "dynamic_solves": baseline.perf.dynamic_solves,
        "unique_models_solved": baseline.perf.unique_models_solved,
        "dedup_ratio": round(baseline.perf.dedup_ratio, 4),
        "states_solved": states_solved,
        "failure_probability": baseline.failure_probability,
        "identical_across_jobs": True,
        "runs": runs,
        "warm_cache": warm_cache,
        "verify_overhead": verify,
    }
    if name == "bwr":
        translate_mocus = cold["translate_seconds"] + cold["mocus_seconds"]
        case["translate_mocus_seconds"] = round(translate_mocus, 4)
        case["translate_mocus_baseline_seconds"] = (
            BWR_TRANSLATE_MOCUS_BASELINE_SECONDS
        )
        case["translate_mocus_reduction_pct"] = round(
            100.0
            * (1.0 - translate_mocus / BWR_TRANSLATE_MOCUS_BASELINE_SECONDS),
            1,
        )
        print(
            f"[{name}] translate+mocus: {translate_mocus:.2f}s vs recorded "
            f"baseline {BWR_TRANSLATE_MOCUS_BASELINE_SECONDS:.2f}s "
            f"({case['translate_mocus_reduction_pct']:+.1f}% reduction)",
            flush=True,
        )
    return case


def measure_verify_overhead(
    name: str, sdft, options_kwargs, repeats: int = 3
) -> dict:
    """Cost of ``verify="cheap"`` relative to ``verify="off"`` (serial).

    The invariant guards run on the hot per-record path, so their cost
    must stay in the noise (the acceptance budget is 5 %).  Runs are
    interleaved and the minimum wall time of each mode is compared —
    the standard way to suppress scheduler noise in a micro-ish
    benchmark.  Also asserts the observer property: cheap verification
    must not change a single analysis value.  Runs cache-less — the
    point is the guard overhead, not cache temperature.
    """
    from repro.core.analyzer import AnalysisOptions, analyze

    timings = {"off": [], "cheap": []}
    results = {}
    for _ in range(repeats):
        for mode in ("off", "cheap"):
            started = time.perf_counter()
            result = analyze(
                sdft, AnalysisOptions(jobs=1, verify=mode, **options_kwargs)
            )
            timings[mode].append(time.perf_counter() - started)
            results[mode] = result
    assert (
        results["cheap"].failure_probability
        == results["off"].failure_probability
    ), f"{name}: verify='cheap' changed the failure probability"
    assert _masked_records(results["cheap"]) == _masked_records(
        results["off"]
    ), f"{name}: verify='cheap' changed the per-cutset records"
    off_best = min(timings["off"])
    cheap_best = min(timings["cheap"])
    overhead_pct = (
        100.0 * (cheap_best - off_best) / off_best if off_best > 0.0 else 0.0
    )
    print(
        f"[{name}] verify overhead: off {off_best:.3f}s, "
        f"cheap {cheap_best:.3f}s ({overhead_pct:+.1f}%)",
        flush=True,
    )
    return {
        "off_seconds": round(off_best, 4),
        "cheap_seconds": round(cheap_best, 4),
        "overhead_pct": round(overhead_pct, 2),
        "identical_to_off": True,
    }


def measure_static_engines(horizon: float = 24.0) -> dict:
    """BDD-exact vs cutset quantification on the static BWR tree.

    Compiles the trigger-free BWR model's static translation with the
    production BDD quantifier and compares value, wall time and the
    served estimator against the classical MOCUS + aggregation path.
    Asserts the soundness bracket the analyzer relies on:
    ``largest single cutset <= exact <= cutset estimate``.
    """
    from repro.bdd.quantify import quantify_static_tree
    from repro.core.to_static import to_static
    from repro.ft.mocus import MocusOptions, mocus
    from repro.models.bwr import BwrConfig, build_bwr

    sdft = build_bwr(BwrConfig(triggers=()))
    tree = to_static(sdft, horizon).tree

    started = time.perf_counter()
    exact = quantify_static_tree(tree)
    bdd_wall = time.perf_counter() - started

    started = time.perf_counter()
    cutsets = mocus(tree, MocusOptions(cutoff=1e-12)).cutsets
    estimate, estimator = cutsets.sound_estimate()
    mcs_wall = time.perf_counter() - started

    slack = 1e-9 * max(1.0, exact.probability)
    assert estimate >= exact.probability - slack, (
        "cutset estimate fell below the exact BDD probability"
    )
    assert cutsets.largest_cutset_probability() <= exact.probability + slack, (
        "exact BDD probability fell below the largest single cutset"
    )
    overestimate_pct = (
        100.0 * (estimate - exact.probability) / exact.probability
        if exact.probability > 0.0
        else 0.0
    )
    print(
        f"[bwr-static] bdd-exact {exact.probability:.6e} "
        f"({exact.node_count} nodes, order {exact.ordering}, "
        f"{exact.n_modules} modules, {bdd_wall:.3f}s) vs "
        f"mcs {estimate:.6e} ({estimator}, {len(cutsets)} cutsets, "
        f"{mcs_wall:.3f}s; +{overestimate_pct:.3f}% over exact)",
        flush=True,
    )
    return {
        "model": "bwr-static",
        "horizon": horizon,
        "bdd": {
            "probability": exact.probability,
            "nodes": exact.node_count,
            "ordering": exact.ordering,
            "modules": exact.n_modules,
            "wall_seconds": round(bdd_wall, 4),
        },
        "mcs": {
            "estimate": estimate,
            "estimator": estimator,
            "n_cutsets": len(cutsets),
            "wall_seconds": round(mcs_wall, 4),
        },
        "rare_event_overestimate_pct": round(overestimate_pct, 4),
        "bracket_holds": True,
    }


def validate_payload(payload: dict) -> None:
    """Schema check of an emitted ``BENCH_quantify.json`` (raises on error)."""

    def expect(condition, message):
        if not condition:
            raise ValueError(f"BENCH_quantify.json schema: {message}")

    expect(isinstance(payload, dict), "payload must be an object")
    expect(
        payload.get("benchmark") == "parallel_quantify",
        "benchmark must be 'parallel_quantify'",
    )
    for key, kind in (
        ("cpu_count", int),
        ("python", str),
        ("platform", str),
        ("jobs_swept", list),
        ("cases", list),
    ):
        expect(isinstance(payload.get(key), kind), f"{key} must be {kind.__name__}")
    expect(payload["cpu_count"] >= 1, "cpu_count must be positive")
    expect(len(payload["cases"]) >= 1, "at least one case required")
    engines = payload.get("static_engine")
    expect(
        isinstance(engines, dict), "static_engine comparison must be present"
    )
    for side, fields in (
        ("bdd", ("probability", "nodes", "wall_seconds")),
        ("mcs", ("estimate", "n_cutsets", "wall_seconds")),
    ):
        block = engines.get(side)
        expect(isinstance(block, dict), f"static_engine.{side} must be an object")
        for key in fields:
            expect(
                isinstance(block.get(key), (int, float)),
                f"static_engine.{side}.{key} missing",
            )
    expect(
        isinstance(engines["bdd"].get("ordering"), str),
        "static_engine.bdd.ordering must name the heuristic used",
    )
    expect(
        engines.get("bracket_holds") is True,
        "static_engine: the soundness bracket failed",
    )
    for case in payload["cases"]:
        for key, kind in (
            ("model", str),
            ("n_cutsets", int),
            ("n_dynamic_cutsets", int),
            ("dynamic_solves", int),
            ("unique_models_solved", int),
            ("dedup_ratio", (int, float)),
            ("states_solved", int),
            ("failure_probability", (int, float)),
            ("runs", list),
        ):
            expect(
                isinstance(case.get(key), kind),
                f"case {case.get('model')!r}: {key} must be {kind}",
            )
        expect(
            case["identical_across_jobs"] is True,
            f"case {case['model']!r}: results differed across jobs",
        )
        expect(
            0.0 <= case["dedup_ratio"] < 1.0,
            f"case {case['model']!r}: dedup_ratio out of range",
        )
        expect(
            case["unique_models_solved"] <= case["dynamic_solves"],
            f"case {case['model']!r}: more unique solves than dynamic solves",
        )
        expect(len(case["runs"]) >= 1, f"case {case['model']!r}: no runs")
        verify = case.get("verify_overhead")
        expect(
            isinstance(verify, dict),
            f"case {case['model']!r}: verify_overhead must be an object",
        )
        for key in ("off_seconds", "cheap_seconds", "overhead_pct"):
            expect(
                isinstance(verify.get(key), (int, float)),
                f"case {case['model']!r}: verify_overhead.{key} missing",
            )
        expect(
            verify["identical_to_off"] is True,
            f"case {case['model']!r}: verify='cheap' changed results",
        )
        expect(
            case["runs"][0].get("cache") == "cold",
            f"case {case['model']!r}: first run must be the cold baseline",
        )
        for run in case["runs"]:
            for key in (
                "jobs",
                "wall_seconds",
                "translate_seconds",
                "mocus_seconds",
                "quantification_seconds",
                "other_seconds",
            ):
                expect(
                    isinstance(run.get(key), (int, float)),
                    f"case {case['model']!r}: run field {key} missing",
                )
            expect(
                run.get("cache") in ("cold", "warm-solve"),
                f"case {case['model']!r}: bad run cache label",
            )
        warm = case.get("warm_cache")
        expect(
            isinstance(warm, dict),
            f"case {case['model']!r}: warm_cache must be an object",
        )
        for key in (
            "cold_wall_seconds",
            "warm_wall_seconds",
            "end_to_end_speedup",
        ):
            expect(
                isinstance(warm.get(key), (int, float)),
                f"case {case['model']!r}: warm_cache.{key} missing",
            )
        expect(
            warm["identical_to_cold"] is True,
            f"case {case['model']!r}: the cached rerun changed results",
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        default="1,2,4",
        help="comma-separated worker counts to sweep (first is the baseline)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.6")),
        help="synthetic-model scale factor",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small cooling model only (CI smoke: seconds instead of minutes)",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=None,
        help="fail unless every non-trivial case rewarms at least this "
        "many times faster end-to-end than its cold run",
    )
    parser.add_argument(
        "--output",
        default="BENCH_quantify.json",
        help="path of the JSON payload",
    )
    args = parser.parse_args(argv)
    jobs_list = [int(value) for value in args.jobs.split(",") if value.strip()]
    if not jobs_list:
        parser.error("--jobs must name at least one worker count")

    cases = [
        run_case(name, sdft, jobs_list, options)
        for name, sdft, options in build_cases(args.scale, args.tiny)
    ]
    payload = {
        "benchmark": "parallel_quantify",
        "created_unix": int(time.time()),
        "cpu_count": _cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": args.scale,
        "tiny": args.tiny,
        "jobs_swept": jobs_list,
        "cases": cases,
        "static_engine": measure_static_engines(),
    }
    validate_payload(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} ({len(cases)} cases, cpus={payload['cpu_count']})")
    if args.min_warm_speedup is not None:
        gated = [
            case for case in cases if case["model"] not in _GATE_EXEMPT
        ]
        if not gated:
            print(
                "note: --min-warm-speedup gates no case in this sweep "
                "(all models are too small to time reliably)",
                flush=True,
            )
        slow = [
            case
            for case in gated
            if case["warm_cache"]["end_to_end_speedup"] < args.min_warm_speedup
        ]
        for case in slow:
            print(
                f"FAIL [{case['model']}]: warm-cache speedup "
                f"{case['warm_cache']['end_to_end_speedup']}x is below the "
                f"{args.min_warm_speedup}x floor",
                flush=True,
            )
        if slow:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
