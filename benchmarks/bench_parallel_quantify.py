"""P1 — parallel cutset quantification: dedup + solver-farm speedup.

Measures the quantification phase of :func:`repro.core.analyzer.analyze`
across worker counts (``jobs=1`` is the serial in-process loop, higher
counts the dedup + process-pool farm of :mod:`repro.perf`) and records
the signature-dedup statistics that make the farm worthwhile.  Run as a
script::

    python benchmarks/bench_parallel_quantify.py --output BENCH_quantify.json

The payload records honest numbers for the machine it ran on —
``cpu_count`` is part of the output, so a single-core runner showing no
speedup is a property of the runner, not of the code.  The script also
*asserts* the determinism contract: every jobs setting must reproduce
the serial records bit for bit (wall-clock fields excluded).

``--tiny`` restricts the sweep to the small cooling model (seconds, for
CI smoke jobs); the default sweep runs the fictive BWR study and a
dynamized synthetic PSA model.  ``validate_payload`` is the schema
check the CI smoke job runs against the emitted file.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time


def _masked_records(result):
    return [
        dataclasses.replace(r, solve_seconds=0.0) for r in result.records
    ]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def build_cases(scale: float, tiny: bool):
    """``(name, sdft, options_kwargs)`` triples of the sweep."""
    from repro.core.sdft import SdFaultTreeBuilder
    from repro.ctmc.builders import repairable, triggered_repairable

    b = SdFaultTreeBuilder("cooling-sd")
    b.static_event("a", 3e-3).static_event("c", 3e-3).static_event("e", 3e-6)
    b.dynamic_event("b", repairable(0.001, 0.05))
    b.dynamic_event("d", triggered_repairable(0.001, 0.05))
    b.or_("pump1", "a", "b").or_("pump2", "c", "d")
    b.and_("pumps", "pump1", "pump2")
    b.or_("cooling", "pumps", "e")
    b.trigger("pump1", "d")
    cooling = b.build("cooling")
    cases = [("cooling", cooling, {})]
    if tiny:
        return cases

    from repro.ft.mocus import MocusOptions, mocus
    from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr
    from repro.models.enrich import dynamize, plan_dynamization
    from repro.models.synthetic import model_1

    bwr = build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES))
    cases.append(("bwr", bwr, {}))

    tree = model_1(scale)
    cutsets = mocus(tree, MocusOptions(cutoff=1e-10)).cutsets
    plan = plan_dynamization(cutsets, 0.3, 0.5)
    cases.append(
        ("synthetic-1-dynamized", dynamize(tree, plan, 24.0), {"cutoff": 1e-10})
    )
    return cases


def run_case(name: str, sdft, jobs_list, options_kwargs) -> dict:
    """Sweep one model over the jobs list; assert identical results."""
    from repro.core.analyzer import AnalysisOptions, analyze

    runs = []
    baseline = None
    baseline_quantify = None
    for jobs in jobs_list:
        started = time.perf_counter()
        result = analyze(sdft, AnalysisOptions(jobs=jobs, **options_kwargs))
        wall = time.perf_counter() - started
        if baseline is None:
            baseline = result
            baseline_quantify = result.timings.quantification_seconds
        else:
            assert (
                result.failure_probability == baseline.failure_probability
            ), f"{name}: jobs={jobs} changed the failure probability"
            assert _masked_records(result) == _masked_records(baseline), (
                f"{name}: jobs={jobs} changed the per-cutset records"
            )
        quantify_seconds = result.timings.quantification_seconds
        runs.append(
            {
                "jobs": result.perf.jobs,
                "wall_seconds": round(wall, 4),
                "quantification_seconds": round(quantify_seconds, 4),
                "quantification_speedup": round(
                    baseline_quantify / quantify_seconds, 3
                )
                if quantify_seconds > 0.0
                else 1.0,
            }
        )
        print(
            f"[{name}] jobs={jobs}: total {wall:.2f}s, "
            f"quantification {quantify_seconds:.2f}s",
            flush=True,
        )
    states_solved = sum(
        r.chain_states for r in baseline.records if not r.cache_hit
    )
    verify = measure_verify_overhead(name, sdft, options_kwargs)
    return {
        "model": name,
        "n_cutsets": baseline.n_cutsets,
        "n_dynamic_cutsets": baseline.n_dynamic_cutsets,
        "dynamic_solves": baseline.perf.dynamic_solves,
        "unique_models_solved": baseline.perf.unique_models_solved,
        "dedup_ratio": round(baseline.perf.dedup_ratio, 4),
        "states_solved": states_solved,
        "failure_probability": baseline.failure_probability,
        "identical_across_jobs": True,
        "runs": runs,
        "verify_overhead": verify,
    }


def measure_verify_overhead(
    name: str, sdft, options_kwargs, repeats: int = 3
) -> dict:
    """Cost of ``verify="cheap"`` relative to ``verify="off"`` (serial).

    The invariant guards run on the hot per-record path, so their cost
    must stay in the noise (the acceptance budget is 5 %).  Runs are
    interleaved and the minimum wall time of each mode is compared —
    the standard way to suppress scheduler noise in a micro-ish
    benchmark.  Also asserts the observer property: cheap verification
    must not change a single analysis value.
    """
    from repro.core.analyzer import AnalysisOptions, analyze

    timings = {"off": [], "cheap": []}
    results = {}
    for _ in range(repeats):
        for mode in ("off", "cheap"):
            started = time.perf_counter()
            result = analyze(
                sdft, AnalysisOptions(jobs=1, verify=mode, **options_kwargs)
            )
            timings[mode].append(time.perf_counter() - started)
            results[mode] = result
    assert (
        results["cheap"].failure_probability
        == results["off"].failure_probability
    ), f"{name}: verify='cheap' changed the failure probability"
    assert _masked_records(results["cheap"]) == _masked_records(
        results["off"]
    ), f"{name}: verify='cheap' changed the per-cutset records"
    off_best = min(timings["off"])
    cheap_best = min(timings["cheap"])
    overhead_pct = (
        100.0 * (cheap_best - off_best) / off_best if off_best > 0.0 else 0.0
    )
    print(
        f"[{name}] verify overhead: off {off_best:.3f}s, "
        f"cheap {cheap_best:.3f}s ({overhead_pct:+.1f}%)",
        flush=True,
    )
    return {
        "off_seconds": round(off_best, 4),
        "cheap_seconds": round(cheap_best, 4),
        "overhead_pct": round(overhead_pct, 2),
        "identical_to_off": True,
    }


def validate_payload(payload: dict) -> None:
    """Schema check of an emitted ``BENCH_quantify.json`` (raises on error)."""

    def expect(condition, message):
        if not condition:
            raise ValueError(f"BENCH_quantify.json schema: {message}")

    expect(isinstance(payload, dict), "payload must be an object")
    expect(
        payload.get("benchmark") == "parallel_quantify",
        "benchmark must be 'parallel_quantify'",
    )
    for key, kind in (
        ("cpu_count", int),
        ("python", str),
        ("platform", str),
        ("jobs_swept", list),
        ("cases", list),
    ):
        expect(isinstance(payload.get(key), kind), f"{key} must be {kind.__name__}")
    expect(payload["cpu_count"] >= 1, "cpu_count must be positive")
    expect(len(payload["cases"]) >= 1, "at least one case required")
    for case in payload["cases"]:
        for key, kind in (
            ("model", str),
            ("n_cutsets", int),
            ("n_dynamic_cutsets", int),
            ("dynamic_solves", int),
            ("unique_models_solved", int),
            ("dedup_ratio", (int, float)),
            ("states_solved", int),
            ("failure_probability", (int, float)),
            ("runs", list),
        ):
            expect(
                isinstance(case.get(key), kind),
                f"case {case.get('model')!r}: {key} must be {kind}",
            )
        expect(
            case["identical_across_jobs"] is True,
            f"case {case['model']!r}: results differed across jobs",
        )
        expect(
            0.0 <= case["dedup_ratio"] < 1.0,
            f"case {case['model']!r}: dedup_ratio out of range",
        )
        expect(
            case["unique_models_solved"] <= case["dynamic_solves"],
            f"case {case['model']!r}: more unique solves than dynamic solves",
        )
        expect(len(case["runs"]) >= 1, f"case {case['model']!r}: no runs")
        verify = case.get("verify_overhead")
        expect(
            isinstance(verify, dict),
            f"case {case['model']!r}: verify_overhead must be an object",
        )
        for key in ("off_seconds", "cheap_seconds", "overhead_pct"):
            expect(
                isinstance(verify.get(key), (int, float)),
                f"case {case['model']!r}: verify_overhead.{key} missing",
            )
        expect(
            verify["identical_to_off"] is True,
            f"case {case['model']!r}: verify='cheap' changed results",
        )
        for run in case["runs"]:
            for key in ("jobs", "wall_seconds", "quantification_seconds"):
                expect(
                    isinstance(run.get(key), (int, float)),
                    f"case {case['model']!r}: run field {key} missing",
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        default="1,2,4",
        help="comma-separated worker counts to sweep (first is the baseline)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.6")),
        help="synthetic-model scale factor",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small cooling model only (CI smoke: seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_quantify.json",
        help="path of the JSON payload",
    )
    args = parser.parse_args(argv)
    jobs_list = [int(value) for value in args.jobs.split(",") if value.strip()]
    if not jobs_list:
        parser.error("--jobs must name at least one worker count")

    cases = [
        run_case(name, sdft, jobs_list, options)
        for name, sdft, options in build_cases(args.scale, args.tiny)
    ]
    payload = {
        "benchmark": "parallel_quantify",
        "created_unix": int(time.time()),
        "cpu_count": _cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": args.scale,
        "tiny": args.tiny,
        "jobs_swept": jobs_list,
        "cases": cases,
    }
    validate_payload(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} ({len(cases)} cases, cpus={payload['cpu_count']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
