"""E2 — Section VI-A table: repairs and triggers added one by one.

The paper's table (k = 1 phase, 24 h horizon) starts from the static
analysis ("no timing"), then turns the pump fail-in-operation events
dynamic with increasing repair rates, then adds the six trigger stages
cumulatively (FEED&BLEED, RHR, EFW, ECC, SWS, CCW).  The reported shape:
the failure frequency falls monotonically down the rows while the
analysis time stays in the seconds range.

One benchmark per row; the frequency is attached to each row's output.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.analyzer import AnalysisOptions, analyze, analyze_static
from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

OPTIONS = AnalysisOptions(horizon=24.0)

ROWS = [
    ("no-timing", None),
    ("no-repair", BwrConfig(repair_rate=None)),
    ("repair-1-per-1000h", BwrConfig(repair_rate=1e-3)),
    ("repair-1-per-100h", BwrConfig(repair_rate=1e-2)),
    ("repair-1-per-20h", BwrConfig(repair_rate=5e-2)),
]
for i in range(1, len(TRIGGER_STAGES) + 1):
    ROWS.append(
        (
            f"+{TRIGGER_STAGES[i - 1]}-trigger",
            BwrConfig(repair_rate=5e-2, triggers=TRIGGER_STAGES[:i]),
        )
    )


@pytest.mark.parametrize("label,config", ROWS, ids=[r[0] for r in ROWS])
def bench_bwr_dynamics_row(benchmark, label, config):
    if config is None:
        sdft = build_bwr(BwrConfig(dynamic=False))
        frequency = benchmark.pedantic(
            lambda: analyze_static(sdft, OPTIONS), rounds=1, iterations=1
        )
        emit(benchmark, f"E2/{label}", failure_frequency=f"{frequency:.3e}")
        return
    sdft = build_bwr(config)
    result = benchmark.pedantic(
        lambda: analyze(sdft, OPTIONS), rounds=1, iterations=1
    )
    emit(
        benchmark,
        f"E2/{label}",
        failure_frequency=f"{result.failure_probability:.3e}",
        dynamic_cutsets=result.n_dynamic_cutsets,
        cutsets=result.n_cutsets,
    )


def bench_bwr_dynamics_shape_check(benchmark):
    """Assert the table's monotone shape in one pass (the headline
    qualitative claim of Section VI-A)."""

    def run():
        values = [analyze_static(build_bwr(BwrConfig(dynamic=False)), OPTIONS)]
        values.append(
            analyze(build_bwr(BwrConfig(repair_rate=5e-2)), OPTIONS).failure_probability
        )
        for i in (2, len(TRIGGER_STAGES)):
            config = BwrConfig(repair_rate=5e-2, triggers=TRIGGER_STAGES[:i])
            values.append(analyze(build_bwr(config), OPTIONS).failure_probability)
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier * 1.0001, values
    emit(
        benchmark,
        "E2/shape",
        monotone_decrease=True,
        static_to_full_ratio=f"{values[0] / values[-1]:.2f}",
    )
