"""P10 — incremental what-if re-analysis vs cold analysis.

Measures the :class:`repro.service.session.AnalysisSession` warm path:
analyze once, apply a single edit, ``reanalyze()`` — against a cold
``analyze()`` of the edited model.  Run as a script::

    python benchmarks/bench_incremental.py --output BENCH_incremental.json

Cases (each on a fresh session, persistent cache off, so the measured
speedup is the incremental engine's own — family reuse, retruncation
and record-level reuse — not disk-cache warmth):

* ``rate-decrease`` — scale one dynamic event's rates down.  Static
  translation probabilities are non-increasing, so the previous
  pre-truncation family retruncates without any MOCUS search, and every
  record whose dependencies exclude the edited event is reused outright.
  This is the headline case the ``--min-speedup`` CI gate applies to.
* ``probability-decrease`` — lower one static event's probability
  (same retruncate path, different edit vocabulary).
* ``rate-increase`` — scale rates *up*.  New cutsets may appear, so
  retruncation must refuse; the modular path or a cold fallback serves
  instead.  Recorded informationally: on models whose top region
  dominates (the BWR has only a couple of non-trivial modules) this is
  legitimately not faster than cold — the point is that it is never
  *wrong*, which the bit-identity assertion proves.

Every case *asserts* bit-identity between the warm result and the cold
reference (:func:`repro.service.session.assert_bit_identical`) — a
mismatch is an error, not a data point.  ``validate_payload`` is the
schema check the CI smoke job runs against the emitted file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

SCHEMA = "repro-bench-incremental/1"

#: Dynamic / static BWR events the scripted edits touch.
_BWR_DYNAMIC_EDIT = "ECC-A-PUMP-FTR"
_BWR_STATIC_EDIT = "ECC-A-BREAKER"


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _cases(model):
    from repro.service.edits import ScaleRates, SetProbability

    dynamic = (
        _BWR_DYNAMIC_EDIT
        if _BWR_DYNAMIC_EDIT in model.dynamic_events
        else sorted(model.dynamic_events)[0]
    )
    static = (
        _BWR_STATIC_EDIT
        if _BWR_STATIC_EDIT in model.static_events
        else sorted(model.static_events)[0]
    )
    half_p = model.static_events[static].probability * 0.5
    return [
        ("rate-decrease", ScaleRates(dynamic, 0.5), True),
        ("probability-decrease", SetProbability(static, half_p), True),
        ("rate-increase", ScaleRates(dynamic, 2.0), False),
    ]


def run_case(model, options, name, edit, gated):
    from repro.core.analyzer import analyze
    from repro.service.edits import apply_edits, edit_to_dict
    from repro.service.session import AnalysisSession, assert_bit_identical

    session = AnalysisSession(model, options)
    started = time.perf_counter()
    session.analyze()
    cold_seconds = time.perf_counter() - started

    session.edit(edit)
    started = time.perf_counter()
    warm = session.reanalyze()
    warm_seconds = time.perf_counter() - started

    edited = apply_edits(model, [edit])
    started = time.perf_counter()
    cold = analyze(edited, options)
    cold_edited_seconds = time.perf_counter() - started

    assert_bit_identical(warm, cold)  # raises CrosscheckError on drift
    return {
        "name": name,
        "edit": edit_to_dict(edit),
        "mode": session.last_mode,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold_edited_seconds": round(cold_edited_seconds, 4),
        "speedup": round(cold_edited_seconds / max(warm_seconds, 1e-9), 2),
        "gated": gated,
        "bit_identical": True,
        "n_cutsets": len(warm.records),
        "probability": warm.failure_probability,
    }


def build_payload(tiny: bool, min_speedup: float | None) -> dict:
    from repro.core.analyzer import AnalysisOptions

    if tiny:
        from repro.ctmc.builders import repairable, triggered_repairable
        from repro.core.sdft import SdFaultTreeBuilder

        b = SdFaultTreeBuilder("cooling-sd")
        b.static_event("a", 3e-3).static_event("c", 3e-3)
        b.static_event("e", 3e-6)
        b.dynamic_event("b", repairable(0.001, 0.05))
        b.dynamic_event("d", triggered_repairable(0.001, 0.05))
        b.or_("pump1", "a", "b").or_("pump2", "c", "d")
        b.and_("pumps", "pump1", "pump2")
        b.or_("cooling", "pumps", "e")
        b.trigger("pump1", "d")
        model = b.build("cooling")
    else:
        from repro.models.bwr import build_bwr

        model = build_bwr()
    options = AnalysisOptions(horizon=24.0, cutoff=1e-15)

    cases = [
        run_case(model, options, name, edit, gated)
        for name, edit, gated in _cases(model)
    ]
    gated_speedups = [c["speedup"] for c in cases if c["gated"]]
    return {
        "schema": SCHEMA,
        "model": model.name,
        "horizon": options.horizon,
        "cutoff": options.cutoff,
        "tiny": tiny,
        "host": {
            "cpu_count": _cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "cases": cases,
        "headline_speedup": max(gated_speedups) if gated_speedups else None,
        "min_speedup": min_speedup,
    }


def validate_payload(payload: dict) -> None:
    """Schema check for the CI smoke job (raises AssertionError)."""
    assert payload["schema"] == SCHEMA, payload.get("schema")
    assert payload["cases"], "no cases recorded"
    for case in payload["cases"]:
        for key in (
            "name",
            "edit",
            "mode",
            "cold_seconds",
            "warm_seconds",
            "cold_edited_seconds",
            "speedup",
            "gated",
            "bit_identical",
            "n_cutsets",
            "probability",
        ):
            assert key in case, f"case {case.get('name')!r} misses {key!r}"
        assert case["bit_identical"] is True
    assert any(c["gated"] for c in payload["cases"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_incremental.json")
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="run on the small cooling model (seconds; no speedup gate "
        "— the model is too small to beat process noise)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every *gated* case (the retruncate-path "
        "edits) re-analyses at least X times faster than cold",
    )
    args = parser.parse_args(argv)

    min_speedup = None if args.tiny else args.min_speedup
    payload = build_payload(args.tiny, min_speedup)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    for case in payload["cases"]:
        print(
            f"{case['name']:22s} mode={case['mode']:10s} "
            f"cold {case['cold_edited_seconds']:.3f}s -> warm "
            f"{case['warm_seconds']:.3f}s  ({case['speedup']:.1f}x)"
        )
    print(f"payload written to {args.output}")

    if min_speedup is not None:
        slow = [
            c
            for c in payload["cases"]
            if c["gated"] and c["speedup"] < min_speedup
        ]
        if slow:
            for case in slow:
                print(
                    f"FAIL: {case['name']} speedup {case['speedup']:.1f}x "
                    f"< floor {min_speedup}x",
                    file=sys.stderr,
                )
            return 1
        print(f"gated cases clear the {min_speedup}x floor")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    sys.exit(main())
