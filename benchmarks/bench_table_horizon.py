"""E8 — Section VI-B: analysis horizon sweep on model 2.

Paper values (model 2, k = 1):

| horizon | failure frequency | analysis time |
|---------|-------------------|---------------|
| 24 h    | 1.86e-6           |  9m 31s       |
| 48 h    | 4.67e-6           | 12m 47s       |
| 72 h    | 7.56e-6           | 16m 59s       |
| 96 h    | 1.05e-5           | 19m 14s       |

Two shapes to reproduce: the frequency grows with the horizon (more
time to fail) and the analysis time grows only *roughly linearly* —
uniformization's cost is linear in q·t — which is the paper's
post-Fukushima "longer horizons are affordable" message.
"""

import pytest

from benchmarks.conftest import emit, scaled_model_2
from repro.core.analyzer import AnalysisOptions, analyze
from repro.ft.mocus import mocus
from repro.models.enrich import dynamize, plan_dynamization

HORIZONS = (24.0, 48.0, 72.0, 96.0)
PAPER = {24.0: "1.86e-6", 48.0: "4.67e-6", 72.0: "7.56e-6", 96.0: "1.05e-5"}

_cache = {}


def _enriched(horizon: float):
    if "cutsets" not in _cache:
        _cache["tree"] = scaled_model_2()
        _cache["cutsets"] = mocus(_cache["tree"]).cutsets
    plan = plan_dynamization(_cache["cutsets"], 0.4, 0.1)
    # Rates are calibrated against the 24 h baseline so that only the
    # evaluation horizon varies across rows, as in the paper.
    return dynamize(_cache["tree"], plan, horizon=24.0)


@pytest.mark.parametrize("horizon", HORIZONS)
def bench_horizon(benchmark, horizon):
    sdft = _enriched(horizon)
    options = AnalysisOptions(horizon=horizon)
    result = benchmark.pedantic(
        lambda: analyze(sdft, options), rounds=1, iterations=1
    )
    emit(
        benchmark,
        f"E8/{int(horizon)}h",
        failure_frequency=f"{result.failure_probability:.3e}",
        quantification_seconds=f"{result.timings.quantification_seconds:.2f}",
        paper_frequency=PAPER[horizon],
    )


def bench_horizon_shape_check(benchmark):
    """Frequency grows with horizon; time grows sub-exponentially."""

    def run():
        rows = {}
        sdft = _enriched(24.0)
        for horizon in (24.0, 96.0):
            result = analyze(sdft, AnalysisOptions(horizon=horizon))
            rows[horizon] = (
                result.failure_probability,
                result.timings.quantification_seconds,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    p24, t24 = rows[24.0]
    p96, t96 = rows[96.0]
    assert p96 > p24
    # "Roughly linear": a 4x horizon must not cost anywhere near
    # exponentially more; allow up to ~6x.
    assert t96 < 6.0 * max(t24, 0.05)
    emit(
        benchmark,
        "E8/shape",
        frequency_growth=f"{p96 / p24:.2f}x",
        time_growth=f"{t96 / max(t24, 1e-9):.2f}x",
    )
