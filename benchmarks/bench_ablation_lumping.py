"""A5 — ablation: exact lumping of per-cutset chains.

The BDMP line of work the paper compares against gets its mileage from
"massive state-space reduction" of the generated Markov chains.  The
per-cutset chains of the SD analysis carry the same symmetry (redundant
trains are identical hardware), so exact ordinary lumping can shrink
them before the transient solve.  This ablation measures the solve with
and without lumping on symmetric cutsets of growing width and reports
the reduction factor; correctness (identical probabilities) is
asserted.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.quantify import quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable

WIDTHS = (3, 5, 7)


def _symmetric(width: int):
    b = SdFaultTreeBuilder(f"sym-{width}")
    names = []
    for i in range(width):
        name = f"d{i}"
        b.dynamic_event(name, repairable(0.02, 0.3))
        names.append(name)
    b.and_("top", *names)
    return b.build("top"), frozenset(names)


@pytest.mark.parametrize("width", WIDTHS)
def bench_plain_solve(benchmark, width):
    sdft, cutset = _symmetric(width)
    record = benchmark(lambda: quantify_cutset(sdft, cutset, 24.0))
    emit(
        benchmark,
        f"A5/plain-{width}",
        chain_states=record.chain_states,
        probability=f"{record.probability:.3e}",
    )


@pytest.mark.parametrize("width", WIDTHS)
def bench_lumped_solve(benchmark, width):
    sdft, cutset = _symmetric(width)
    record = benchmark(
        lambda: quantify_cutset(sdft, cutset, 24.0, lump_chains=True)
    )
    emit(
        benchmark,
        f"A5/lumped-{width}",
        chain_states=record.chain_states,
        probability=f"{record.probability:.3e}",
    )


def bench_lumping_correctness(benchmark):
    def run():
        worst = 0.0
        reductions = []
        for width in WIDTHS:
            sdft, cutset = _symmetric(width)
            plain = quantify_cutset(sdft, cutset, 24.0)
            lumped = quantify_cutset(sdft, cutset, 24.0, lump_chains=True)
            worst = max(
                worst,
                abs(plain.probability - lumped.probability)
                / max(plain.probability, 1e-300),
            )
            reductions.append(plain.chain_states / max(lumped.chain_states, 1))
        return worst, reductions

    worst, reductions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst < 1e-9
    # Symmetric width-n chains reduce from 2^n toward n+1.
    assert reductions[-1] > reductions[0]
    emit(
        benchmark,
        "A5/agreement",
        max_relative_difference=f"{worst:.2e}",
        reduction_factors=str([f"{r:.1f}" for r in reductions]),
    )
