"""A2 — ablation: uniformization vs dense matrix exponential.

The per-cutset quantification's inner loop is the transient solve.
Uniformization (our default, also PRISM's) works on the sparse rate
matrix and is linear in q·t; scipy's ``expm`` densifies the generator
and is cubic in the state count.  The crossover justifies the default:
for the chain sizes per-cutset analysis produces (tens to thousands of
states), uniformization wins increasingly with size.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import erlang_failure
from repro.ctmc.product import build_product
from repro.ctmc.transient import reach_probability

SIZES = (2, 4, 6, 8)  # number of 3-state components: 9..6561 states


@pytest.fixture(scope="module")
def chains():
    built = {}
    for n in SIZES:
        b = SdFaultTreeBuilder(f"chain-{n}")
        names = []
        for i in range(n):
            name = f"d{i}"
            b.dynamic_event(name, erlang_failure(2, 0.01 + 0.002 * i, 0.1))
            names.append(name)
        b.and_("top", *names)
        built[n] = build_product(b.build("top")).chain
    return built


@pytest.mark.parametrize("n", SIZES)
def bench_uniformization(benchmark, chains, n):
    chain = chains[n]
    value = benchmark(lambda: reach_probability(chain, 24.0, method="uniformization"))
    emit(benchmark, f"A2/uniformization-{chain.n_states}states", probability=f"{value:.3e}")


@pytest.mark.parametrize("n", SIZES[:3])  # expm beyond ~700 states is painful
def bench_expm(benchmark, chains, n):
    chain = chains[n]
    value = benchmark.pedantic(
        lambda: reach_probability(chain, 24.0, method="expm"), rounds=2, iterations=1
    )
    emit(benchmark, f"A2/expm-{chain.n_states}states", probability=f"{value:.3e}")


def bench_backends_agree(benchmark, chains):
    def run():
        diffs = []
        for n in SIZES[:3]:
            a = reach_probability(chains[n], 24.0, method="uniformization")
            b = reach_probability(chains[n], 24.0, method="expm")
            diffs.append(abs(a - b))
        return max(diffs)

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst < 1e-8
    emit(benchmark, "A2/agreement", max_abs_difference=f"{worst:.2e}")
