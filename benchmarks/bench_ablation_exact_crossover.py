"""A4 — ablation: per-cutset decomposition vs the full product chain.

The paper's core scalability argument: the exact product chain of an SD
fault tree is exponential in the number of basic events ("2^2500 states"
for a real study), while the per-cutset decomposition solves many small
chains instead.  This ablation grows a redundant-pair tree and measures
both methods until the exact one falls off the cliff; it also checks
that the two values agree (decomposition over-approximates slightly).
"""

import pytest

from benchmarks.conftest import emit
from repro.core.analyzer import AnalysisOptions, analyze, analyze_exact
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable
from repro.errors import AnalysisError

OPTIONS = AnalysisOptions(horizon=24.0)

PAIRS = (2, 3, 4, 5, 6)


def _redundant_pairs(n_pairs: int):
    """n cooling subsystems, each a primary pump with a triggered spare."""
    b = SdFaultTreeBuilder(f"pairs-{n_pairs}")
    subsystem_gates = []
    for i in range(n_pairs):
        primary = f"p{i}"
        spare = f"q{i}"
        b.dynamic_event(primary, repairable(0.01 + 0.001 * i, 0.1))
        b.dynamic_event(spare, triggered_repairable(0.01 + 0.001 * i, 0.1))
        b.or_(f"primary{i}", primary)
        b.and_(f"sub{i}", f"primary{i}", spare)
        b.trigger(f"primary{i}", spare)
        subsystem_gates.append(f"sub{i}")
    b.or_("top", *subsystem_gates)
    return b.build("top")


@pytest.mark.parametrize("n_pairs", PAIRS)
def bench_per_cutset(benchmark, n_pairs):
    sdft = _redundant_pairs(n_pairs)
    result = benchmark(lambda: analyze(sdft, OPTIONS))
    emit(
        benchmark,
        f"A4/per-cutset-{2 * n_pairs}events",
        probability=f"{result.failure_probability:.3e}",
        largest_chain=max(r.chain_states for r in result.records),
    )


@pytest.mark.parametrize("n_pairs", PAIRS[:3])
def bench_exact_product(benchmark, n_pairs):
    sdft = _redundant_pairs(n_pairs)
    value = benchmark.pedantic(
        lambda: analyze_exact(sdft, OPTIONS.horizon), rounds=1, iterations=1
    )
    emit(
        benchmark,
        f"A4/exact-product-{2 * n_pairs}events",
        probability=f"{value:.3e}",
    )


def bench_exact_wall(benchmark):
    """The product chain hits the state cap where the decomposition
    keeps cruising — the paper's whole point, in one assertion."""

    def run():
        sdft = _redundant_pairs(8)  # 16 events, 6^8 > 1.6M raw states
        decomposed = analyze(sdft, OPTIONS).failure_probability
        try:
            analyze_exact(sdft, OPTIONS.horizon, max_states=50_000)
            exact_exploded = False
        except AnalysisError:
            exact_exploded = True
        return decomposed, exact_exploded

    decomposed, exploded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exploded, "expected the product chain to exceed the state cap"
    emit(
        benchmark,
        "A4/wall",
        per_cutset_probability=f"{decomposed:.3e}",
        exact_product="exceeds 50k states",
    )


def bench_methods_agree(benchmark):
    def run():
        ratios = []
        for n_pairs in PAIRS[:3]:
            sdft = _redundant_pairs(n_pairs)
            decomposed = analyze(sdft, OPTIONS).failure_probability
            exact = analyze_exact(sdft, OPTIONS.horizon)
            ratios.append(decomposed / exact)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for ratio in ratios:
        assert 1.0 - 1e-9 <= ratio < 1.2, ratios
    emit(benchmark, "A4/agreement", ratios=str([f"{r:.4f}" for r in ratios]))
