"""Rare-event Monte-Carlo: crude vs importance-sampling runs-to-target.

Measures :func:`repro.ctmc.rare.estimate_failure_probability` on a
synthetic PSA-scale cutset — an AND of two slow exponential failures
with exact probability ~ 9e-8 at the 24 h horizon — and records how
many trajectories each engine needs to reach the 10 % relative-error
target.  Run as a script::

    python benchmarks/bench_rare_event.py --output BENCH_rare_event.json

Crude sampling is expected to *fail* here: at p ~ 1e-7 a 20k-run budget
observes zero failures and reports only the rule-of-three bound, while
the failure-biased importance sampler converges in a few thousand runs.
The script asserts both halves of that story (the acceptance criterion
of the rare-event issue), plus the bracketing contract: every emitted
interval must contain the exact uniformization value.

``--tiny`` shrinks the budgets and replicate count (seconds, for CI
smoke jobs); ``validate_payload`` is the schema check the CI smoke job
runs against the emitted file.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

HORIZON = 24.0

#: AND of two slow exponentials: p(24h) ~ (lam*t)^2 ~ 9e-8.
RARE_LAMBDA = 1.25e-5


def build_rare_pair():
    from repro.core.sdft import SdFaultTreeBuilder
    from repro.ctmc.builders import exponential_failure

    b = SdFaultTreeBuilder("rare-pair")
    b.dynamic_event("x", exponential_failure(RARE_LAMBDA))
    b.dynamic_event("y", exponential_failure(RARE_LAMBDA))
    b.and_("top", "x", "y")
    return b.build("top")


def exact_probability(sdft) -> float:
    from repro.ctmc.product import build_product
    from repro.ctmc.transient import reach_probability

    return float(reach_probability(build_product(sdft).chain, HORIZON))


def run_engine(sdft, exact: float, engine: str, max_runs: int, seed: int) -> dict:
    from repro.ctmc.rare import RareEventConfig, estimate_failure_probability

    config = RareEventConfig(engine=engine, max_runs=max_runs)
    started = time.perf_counter()
    result = estimate_failure_probability(sdft, HORIZON, config, seed=seed)
    wall = time.perf_counter() - started
    lower, upper = result.interval(sigmas=4.0)
    brackets = lower <= exact <= upper
    rel_error = result.achieved_rel_error
    print(
        f"[{engine}] seed={seed}: runs={result.n_runs} "
        f"failures={result.n_failures} estimate={result.estimate:.3e} "
        f"rel_error={rel_error if rel_error != float('inf') else float('inf'):.3g} "
        f"converged={result.converged} brackets={brackets} ({wall:.2f}s)",
        flush=True,
    )
    return {
        "engine": result.engine,
        "seed": seed,
        "max_runs": max_runs,
        "runs": result.n_runs,
        "failures": result.n_failures,
        "estimate": result.estimate,
        "standard_error": result.standard_error,
        "achieved_rel_error": rel_error if rel_error != float("inf") else None,
        "converged": result.converged,
        "interval": [lower, upper],
        "brackets_exact": brackets,
        "wall_seconds": round(wall, 4),
    }


def run(tiny: bool = False) -> dict:
    """Build the payload: crude vs IS (vs splitting) at PSA probability."""
    sdft = build_rare_pair()
    exact = exact_probability(sdft)
    max_runs = 4_000 if tiny else 20_000
    seeds = [7] if tiny else [7, 11, 42]

    crude_runs = [run_engine(sdft, exact, "crude", max_runs, s) for s in seeds]
    is_runs = [run_engine(sdft, exact, "is", max_runs, s) for s in seeds]
    split_runs = (
        [] if tiny else [run_engine(sdft, exact, "splitting", max_runs, 7)]
    )

    # The acceptance story: crude starves while IS converges and brackets.
    assert all(r["failures"] == 0 for r in crude_runs), (
        "crude unexpectedly observed failures at PSA probability — "
        "the case is no longer rare enough to stress the engine"
    )
    assert all(r["converged"] for r in is_runs), (
        "importance sampling missed the relative-error target"
    )
    assert all(r["brackets_exact"] for r in is_runs + split_runs), (
        "a converged interval failed to contain the exact value"
    )

    converged_runs = [r["runs"] for r in is_runs]
    return {
        "benchmark": "rare_event",
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "tiny": tiny,
        "horizon_hours": HORIZON,
        "exact_probability": exact,
        "target_rel_error": 0.10,
        "crude": crude_runs,
        "importance_sampling": is_runs,
        "splitting": split_runs,
        "is_runs_to_target_max": max(converged_runs),
        "crude_budget_wasted": max_runs,
    }


def validate_payload(payload: dict) -> None:
    """Schema check of an emitted ``BENCH_rare_event.json`` (raises on error)."""

    def expect(condition, message):
        if not condition:
            raise ValueError(f"BENCH_rare_event.json schema: {message}")

    expect(isinstance(payload, dict), "payload must be an object")
    expect(
        payload.get("benchmark") == "rare_event",
        "benchmark must be 'rare_event'",
    )
    for key, kind in (
        ("python", str),
        ("platform", str),
        ("exact_probability", float),
        ("target_rel_error", float),
        ("crude", list),
        ("importance_sampling", list),
        ("splitting", list),
        ("is_runs_to_target_max", int),
        ("crude_budget_wasted", int),
    ):
        expect(isinstance(payload.get(key), kind), f"{key} must be {kind.__name__}")
    expect(
        0.0 < payload["exact_probability"] <= 1e-7,
        "exact probability must stay at PSA scale (<= 1e-7)",
    )
    expect(len(payload["crude"]) >= 1, "at least one crude run required")
    expect(
        len(payload["importance_sampling"]) >= 1,
        "at least one importance-sampling run required",
    )
    for run_ in payload["crude"]:
        expect(run_["failures"] == 0, "crude must starve at PSA probability")
        expect(run_["converged"] is False, "crude must not claim convergence")
    for run_ in payload["importance_sampling"] + payload["splitting"]:
        expect(run_["converged"] is True, "biased engines must converge")
        expect(run_["brackets_exact"] is True, "interval must contain exact")
        expect(
            run_["achieved_rel_error"] <= payload["target_rel_error"],
            "achieved relative error above target",
        )
    expect(
        payload["is_runs_to_target_max"] <= payload["crude_budget_wasted"],
        "IS must reach target within the budget crude wastes",
    )


def test_rare_event_payload():
    """Pytest entry point: the tiny sweep must validate end to end."""
    validate_payload(run(tiny=True))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="single seed and small budgets (CI smoke: a few seconds)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_rare_event.json",
        help="path of the JSON payload",
    )
    args = parser.parse_args(argv)

    payload = run(tiny=args.tiny)
    validate_payload(payload)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.output}: IS reached the target in "
        f"<= {payload['is_runs_to_target_max']} runs where crude wasted "
        f"{payload['crude_budget_wasted']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
