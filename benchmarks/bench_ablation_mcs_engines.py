"""A1 — ablation: MOCUS (the paper's engine) vs exact BDD compilation.

DESIGN.md calls out the cutset-engine choice: the paper follows the
commercial tools (MOCUS with a probabilistic cutoff), this package also
implements exact BDD minimal solutions.  The trade: BDD is exact and
fast on small/medium trees, MOCUS's cutoff is what survives industrial
sizes where the exact cutset family is astronomically large.
"""

import pytest

from benchmarks.conftest import emit, scaled_model_1
from repro.bdd.ft_bdd import compile_tree
from repro.core.to_static import to_static
from repro.ft.mocus import MocusOptions, mocus
from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr


@pytest.fixture(scope="module")
def bwr_tree():
    sdft = build_bwr(BwrConfig(repair_rate=0.05, triggers=TRIGGER_STAGES))
    return to_static(sdft, 24.0).tree


def bench_mocus_with_cutoff_bwr(benchmark, bwr_tree):
    result = benchmark(lambda: mocus(bwr_tree))
    emit(benchmark, "A1/mocus-cutoff-bwr", mcs=len(result.cutsets))


def bench_mocus_exact_bwr(benchmark, bwr_tree):
    result = benchmark.pedantic(
        lambda: mocus(bwr_tree, MocusOptions(cutoff=0.0)), rounds=2, iterations=1
    )
    emit(benchmark, "A1/mocus-exact-bwr", mcs=len(result.cutsets))


def bench_bdd_exact_bwr(benchmark, bwr_tree):
    compiled = benchmark(lambda: compile_tree(bwr_tree))
    emit(
        benchmark,
        "A1/bdd-exact-bwr",
        bdd_nodes=compiled.node_count,
        exact_probability=f"{compiled.probability():.3e}",
    )


def bench_bdd_mcs_extraction_bwr(benchmark, bwr_tree):
    compiled = compile_tree(bwr_tree)
    cutsets = benchmark(compiled.minimal_cutsets)
    emit(benchmark, "A1/bdd-minsol-bwr", mcs=len(cutsets))


def bench_engines_agree(benchmark, bwr_tree):
    """Cross-check attached to the ablation: identical exact MCS sets."""

    def run():
        exact_mocus = set(mocus(bwr_tree, MocusOptions(cutoff=0.0)).cutsets.cutsets)
        exact_bdd = set(compile_tree(bwr_tree).minimal_cutsets().cutsets)
        return exact_mocus == exact_bdd, len(exact_bdd)

    agree, count = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agree
    emit(benchmark, "A1/agreement", identical_mcs_families=True, mcs=count)


def bench_mocus_cutoff_synthetic(benchmark):
    """On the industrial stand-in the cutoff is what keeps MOCUS alive;
    the BDD route is measured on the BWR only (its exact cutset family
    explodes here)."""
    tree = scaled_model_1()
    result = benchmark.pedantic(lambda: mocus(tree), rounds=1, iterations=1)
    emit(benchmark, "A1/mocus-cutoff-synthetic", mcs=len(result.cutsets))
