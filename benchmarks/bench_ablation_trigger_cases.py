"""A3 — ablation: the cost of the three trigger-condition cases.

The heart of Section V-A: the syntactic class of a triggering gate
decides how many events the per-cutset model ``FT_C`` must contain —

* static branching: only the cutset's own events,
* static joins: plus the sibling dynamic events of the trigger subtree,
* general case: plus the static guards.

This ablation quantifies one comparable cutset under each class and
reports model sizes, chain sizes and solve times, making the blow-up
the paper's restrictions avoid directly visible.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.quantify import quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_repairable


def _static_branching():
    """Trigger = OR(static..., one dynamic)."""
    b = SdFaultTreeBuilder("branching")
    b.dynamic_event("head", repairable(0.01, 0.1))
    for i in range(3):
        b.static_event(f"s{i}", 0.01)
    b.dynamic_event("tail", triggered_repairable(0.02, 0.1))
    b.or_("trig", "head", "s0", "s1", "s2")
    b.and_("top", "head", "tail")
    b.trigger("trig", "tail")
    return b.build("top"), frozenset({"head", "tail"})


def _static_joins():
    """Trigger = OR over four dynamic events."""
    b = SdFaultTreeBuilder("joins")
    names = []
    for i in range(4):
        name = f"d{i}"
        b.dynamic_event(name, repairable(0.01 + 0.002 * i, 0.1))
        names.append(name)
    b.dynamic_event("tail", triggered_repairable(0.02, 0.1))
    b.or_("trig", *names)
    b.and_("top", "d0", "tail")
    b.trigger("trig", "tail")
    return b.build("top"), frozenset({"d0", "tail"})


def _general():
    """Trigger mixes an AND with dynamics and an OR with two dynamics."""
    b = SdFaultTreeBuilder("general")
    b.dynamic_event("d0", repairable(0.01, 0.1))
    b.dynamic_event("d1", repairable(0.012, 0.1))
    b.dynamic_event("d2", repairable(0.014, 0.1))
    for i in range(2):
        b.static_event(f"s{i}", 0.05)
    b.dynamic_event("tail", triggered_repairable(0.02, 0.1))
    b.or_("inner", "d1", "d2", "s0")
    b.and_("trig", "d0", "inner", "s1#wrap")
    b.or_("s1#wrap", "s1")
    b.and_("top", "d0", "tail")
    b.trigger("trig", "tail")
    return b.build("top"), frozenset({"d0", "tail"})


CASES = {
    "static-branching": _static_branching,
    "static-joins": _static_joins,
    "general": _general,
}


@pytest.mark.parametrize("case", sorted(CASES))
def bench_trigger_case(benchmark, case):
    sdft, cutset = CASES[case]()
    record = benchmark(lambda: quantify_cutset(sdft, cutset, 24.0))
    emit(
        benchmark,
        f"A3/{case}",
        dynamic_in_cutset=record.n_dynamic_in_cutset,
        dynamic_in_model=record.n_dynamic_in_model,
        added=record.n_added_dynamic,
        chain_states=record.chain_states,
        probability=f"{record.probability:.3e}",
    )


def bench_trigger_case_shape(benchmark):
    """Chain sizes must grow branching < joins <= general."""

    def run():
        sizes = {}
        for case, build in CASES.items():
            sdft, cutset = build()
            sizes[case] = quantify_cutset(sdft, cutset, 24.0).chain_states
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sizes["static-branching"] < sizes["static-joins"]
    assert sizes["static-joins"] <= sizes["general"] * 2  # same order or worse
    emit(benchmark, "A3/shape", **sizes)
