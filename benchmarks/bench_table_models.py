"""E3 — Section VI-B model table: MCS generation on the two studies.

Paper values (cutoff 1e-15):

| model | #BE   | #gates | #MCS   | MCS generation time |
|-------|-------|--------|--------|---------------------|
| 1     | 2,995 | 52,213 | 74,130 | 4,327 s             |
| 2     | 2,040 | 56,863 | 76,921 | 16,680 s            |

The real studies are proprietary; the synthetic stand-ins reproduce the
*relationship* — similar sizes and MCS counts between the two models,
yet model 2's generation several times slower (deeper support chaining
widens the partial-cutset frontier).  The benchmark scale (default 0.6,
env ``REPRO_BENCH_SCALE``) shrinks both proportionally.
"""

import pytest

from benchmarks.conftest import emit, scaled_model_1, scaled_model_2
from repro.ft.mocus import mocus
from repro.ft.validate import tree_stats

PAPER = {
    "model-1": {"be": 2995, "gates": 52213, "mcs": 74130, "seconds": 4327},
    "model-2": {"be": 2040, "gates": 56863, "mcs": 76921, "seconds": 16680},
}


@pytest.mark.parametrize(
    "name,builder",
    [("model-1", scaled_model_1), ("model-2", scaled_model_2)],
    ids=["model-1", "model-2"],
)
def bench_mcs_generation(benchmark, name, builder):
    tree = builder()
    result = benchmark.pedantic(lambda: mocus(tree), rounds=1, iterations=1)
    stats = tree_stats(tree)
    emit(
        benchmark,
        f"E3/{name}",
        basic_events=stats.n_events,
        gates=stats.n_gates,
        mcs=len(result.cutsets),
        rare_event=f"{result.cutsets.rare_event():.3e}",
        paper_be=PAPER[name]["be"],
        paper_gates=PAPER[name]["gates"],
        paper_mcs=PAPER[name]["mcs"],
        paper_seconds=PAPER[name]["seconds"],
    )
