"""E5 — Figure 2: histograms of dynamic basic events per minimal cutset.

The paper's Figure 2 shows six histograms (one per dynamization level)
of how many dynamic basic events the per-cutset Markov models contain.
The figure's message: the distribution shifts right as more events are
dynamised but *stops changing* around the 30–40 % mark — which is why
the analysis time flattens (each chart bar is a chain-size class with a
fixed solve cost).

The benchmark regenerates the histogram series and prints each level's
distribution; the shape check asserts the right-shift and the
stabilisation.
"""

import pytest

from benchmarks.conftest import emit, scaled_model_1, static_cutsets_model_1
from repro.core.analyzer import AnalysisOptions, analyze
from repro.models.enrich import dynamize, plan_dynamization

OPTIONS = AnalysisOptions(horizon=24.0)
LEVELS = (10, 20, 30, 40, 50, 100)


def _histogram(percent: int):
    cutsets = static_cutsets_model_1()
    plan = plan_dynamization(cutsets, percent / 100.0, 0.1)
    sdft = dynamize(scaled_model_1(), plan, horizon=OPTIONS.horizon)
    result = analyze(sdft, OPTIONS)
    return result.dynamic_event_histogram()


@pytest.mark.parametrize("percent", LEVELS)
def bench_fig2_histogram(benchmark, percent):
    histogram = benchmark.pedantic(
        lambda: _histogram(percent), rounds=1, iterations=1
    )
    total = sum(histogram.values())
    emit(
        benchmark,
        f"Fig2/{percent}%",
        histogram=str(histogram),
        dynamic_cutsets=total,
        mean=f"{sum(k * v for k, v in histogram.items()) / max(total, 1):.2f}",
    )


def bench_fig2_shape_check(benchmark):
    """Right-shift up to ~40 %, then stabilisation (paper's reading)."""

    def run():
        return {p: _histogram(p) for p in (10, 40, 100)}

    histograms = benchmark.pedantic(run, rounds=1, iterations=1)

    def mean_of(histogram):
        total = sum(histogram.values())
        return sum(k * v for k, v in histogram.items()) / max(total, 1)

    m10, m40, m100 = (mean_of(histograms[p]) for p in (10, 40, 100))
    assert m40 > m10, "distribution must shift right as dynamization grows"
    # Stabilisation: the 40->100 change is small relative to 10->40.
    assert abs(m100 - m40) < (m40 - m10) * 1.5
    emit(
        benchmark,
        "Fig2/shape",
        mean_10=f"{m10:.2f}",
        mean_40=f"{m40:.2f}",
        mean_100=f"{m100:.2f}",
    )
