"""E6 — Figure 3: per-cutset chain solve time vs size and phase count.

The paper's Figure 3 plots (log scale) the time to analyse one minimal
cutset's Markov model against the number of dynamic basic events in the
cutset, for several phase counts k.  Its message: the chain size — and
hence the solve time — is exponential with the number of dynamic events
as the exponent and the phase count driving the base, so "for larger
models it is infeasible to model each failure using Markov chains with
many states".

This benchmark times exactly that object: a single cutset of n
repairable Erlang-k components, quantified through the real pipeline
(FT_C construction, product chain, transient analysis).
"""

import pytest

from benchmarks.conftest import emit
from repro.core.quantify import quantify_cutset
from repro.core.sdft import SdFaultTreeBuilder
from repro.ctmc.builders import erlang_failure

SIZES = (1, 2, 3, 4, 5)
PHASES = (1, 2, 3)


def _cutset_model(n_dynamic: int, phases: int):
    b = SdFaultTreeBuilder(f"mcs-{n_dynamic}x{phases}")
    names = []
    for i in range(n_dynamic):
        name = f"d{i}"
        b.dynamic_event(name, erlang_failure(phases, 0.002 + 0.001 * i, 0.05))
        names.append(name)
    b.and_("top", *names)
    return b.build("top"), frozenset(names)


@pytest.mark.parametrize("phases", PHASES)
@pytest.mark.parametrize("n_dynamic", SIZES)
def bench_single_mcs_quantification(benchmark, n_dynamic, phases):
    if (phases + 1) ** n_dynamic > 5000:
        pytest.skip("chain beyond the plotted range")
    sdft, cutset = _cutset_model(n_dynamic, phases)
    record = benchmark(lambda: quantify_cutset(sdft, cutset, 24.0))
    emit(
        benchmark,
        f"Fig3/n{n_dynamic}-k{phases}",
        chain_states=record.chain_states,
        probability=f"{record.probability:.3e}",
    )


def bench_fig3_shape_check(benchmark):
    """Chain size grows exponentially in the cutset's dynamic events,
    with the phase count as the base (the figure's caption)."""

    def run():
        sizes = {}
        for phases in (1, 2):
            for n in (1, 2, 3, 4):
                sdft, cutset = _cutset_model(n, phases)
                sizes[(n, phases)] = quantify_cutset(sdft, cutset, 24.0).chain_states
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    # Exponent: adding a dynamic event multiplies the state count.
    for phases in (1, 2):
        base = phases + 1
        for n in (1, 2, 3, 4):
            assert sizes[(n, phases)] == base**n
    emit(benchmark, "Fig3/shape", exponential_in_events=True, base_is_phases_plus_1=True)
