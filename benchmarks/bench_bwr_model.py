"""E1 — Section VI-A model statistics.

Paper values: the fictive BWR study has 68 basic events and 122 gates;
generating its 11,142 minimal cutsets above the 1e-15 cutoff "takes
less than a second" and the rare-event core-damage frequency is
4.09e-9 (with the authors' proprietary failure data).

This benchmark measures MCS generation on our rebuild of the study and
prints the same statistics.  Absolute frequency differs (public
placeholder failure data); the things to compare are the model scale,
the sub-minute generation time and the cutset-count magnitude.
"""

from benchmarks.conftest import emit
from repro.core.to_static import to_static
from repro.ft.mocus import mocus
from repro.ft.validate import tree_stats


def bench_bwr_mcs_generation(benchmark, bwr_full):
    translation = to_static(bwr_full, horizon=24.0)
    result = benchmark.pedantic(
        lambda: mocus(translation.tree), rounds=3, iterations=1
    )
    stats = tree_stats(bwr_full.structure)
    emit(
        benchmark,
        "E1/bwr-model",
        basic_events=stats.n_events,
        gates=stats.n_gates,
        mcs=len(result.cutsets),
        rare_event_frequency=f"{result.cutsets.rare_event():.3e}",
        paper_basic_events=68,
        paper_gates=122,
        paper_mcs=11142,
        paper_frequency="4.09e-9",
    )
