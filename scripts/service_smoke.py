"""CI service-smoke driver: a real `sdft serve` daemon under crash fire.

Exercises the full analysis-as-a-service contract end to end, out of
process, exactly as a client would see it:

1. **Healthy phase** — start the daemon, load the BWR demo model over
   stdio, run a scripted edit / re-quantify loop, and check every
   served probability bit-for-bit against an in-process cold
   ``analyze(apply_edits(...))`` reference.
2. **Crash phase** — start a second daemon on the *same* journal with
   the ``REPRO_SERVICE_KILL_AFTER=journal_begin:reanalyze`` chaos hook
   armed, and send a re-analysis: the daemon SIGKILLs itself between
   writing the journal ``begin`` record and committing the result.
3. **Recovery phase** — restart on the same journal and assert the
   daemon replays every completed load/edit, aborts the in-flight
   request (visible in ``stats``), and re-answers the killed request
   bit-identically to the reference.

All three daemons append to one request-trace JSONL file, which the CI
job uploads as an artifact.  Exit code 0 iff every check passes.

Usage::

    python scripts/service_smoke.py --workdir /tmp/svc [--cutoff 1e-10]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO / "src"))

from repro.core.analyzer import AnalysisOptions, analyze  # noqa: E402
from repro.models.bwr import build_bwr  # noqa: E402
from repro.models.formats import sdft_from_dict, sdft_to_dict  # noqa: E402
from repro.service.edits import apply_edits, edit_from_dict  # noqa: E402

#: The scripted what-if ladder the loop drives (applied cumulatively).
_EDIT_LADDER = [
    {"kind": "scale-rates", "event": "ECC-A-PUMP-FTR", "factor": 0.5},
    {"kind": "set-probability", "event": "ECC-A-BREAKER",
     "probability": 2e-4},
    {"kind": "scale-rates", "event": "EFW-B-PUMP-FTR", "factor": 1.5},
]
_KILL_WAIT_SECONDS = 180.0


class Client:
    """A line-oriented stdio client for one daemon subprocess."""

    def __init__(self, args: list[str], env: dict) -> None:
        self.process = subprocess.Popen(
            args,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self._next_id = 0

    def call(self, request: dict) -> dict:
        """Send one request and block for the response with its id."""
        self._next_id += 1
        request = dict(request, id=self._next_id)
        assert self.process.stdin is not None
        assert self.process.stdout is not None
        self.process.stdin.write(json.dumps(request) + "\n")
        self.process.stdin.flush()
        while True:
            line = self.process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"daemon EOF awaiting response to {request['op']!r}: "
                    f"{(self.process.stderr.read() or '').strip()}"
                )
            response = json.loads(line)
            if response.get("id") == self._next_id:
                return response

    def send_only(self, request: dict) -> None:
        """Fire a request without waiting (for the kill scenario)."""
        self._next_id += 1
        assert self.process.stdin is not None
        self.process.stdin.write(
            json.dumps(dict(request, id=self._next_id)) + "\n"
        )
        self.process.stdin.flush()

    def shutdown(self) -> None:
        response = self.call({"op": "shutdown"})
        assert response["ok"], response
        self.process.wait(timeout=60.0)
        assert self.process.stdin is not None
        self.process.stdin.close()

    def wait_killed(self) -> int:
        deadline = time.monotonic() + _KILL_WAIT_SECONDS
        while time.monotonic() < deadline:
            code = self.process.poll()
            if code is not None:
                return code
            time.sleep(0.05)
        self.process.kill()
        raise RuntimeError("daemon did not die within the kill window")


def _daemon_args(workdir: Path, cutoff: float) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--cutoff",
        str(cutoff),
        "--journal",
        str(workdir / "journal.jsonl"),
        "--request-trace",
        str(workdir / "request-trace.jsonl"),
        "--cache-dir",
        str(workdir / "solve-cache"),
    ]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_REPO / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.pop("REPRO_SERVICE_KILL_AFTER", None)
    return env


def _check(label: str, ok: bool, detail: str = "") -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f": {detail}" if detail else ""))
    if not ok:
        raise SystemExit(f"service smoke failed at: {label} {detail}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="directory for journal/trace/cache artifacts")
    parser.add_argument("--cutoff", type=float, default=1e-10)
    parser.add_argument("--horizon", type=float, default=24.0)
    args = parser.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="service-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    options = AnalysisOptions(horizon=args.horizon, cutoff=args.cutoff)
    daemon_args = _daemon_args(workdir, args.cutoff)

    # In-process references — on the dict round-trip of the model, so
    # numbers went through exactly the serialization the daemon sees.
    model_dict = sdft_to_dict(build_bwr())
    model = sdft_from_dict(json.loads(json.dumps(model_dict)))
    references = []
    edited = model
    for step in _EDIT_LADDER:
        edited = apply_edits(edited, [edit_from_dict(step)])
        references.append(analyze(edited, options).failure_probability)

    print("phase 1: healthy edit / re-quantify loop")
    client = Client(daemon_args, _env())
    loaded = client.call({"op": "load", "model": model_dict})
    _check("load", loaded.get("ok", False), str(loaded.get("error", "")))
    session = loaded["session"]
    cold = client.call({"op": "analyze", "session": session})
    _check(
        "cold analyze bit-identical",
        cold.get("probability") == analyze(model, options).failure_probability,
        f"served {cold.get('probability')!r}",
    )
    for step, reference in zip(_EDIT_LADDER, references):
        edit = client.call({"op": "edit", "session": session, "edits": [step]})
        _check(f"edit {step['event']}", edit.get("ok", False),
               str(edit.get("error", "")))
        warm = client.call(
            {"op": "reanalyze", "session": session, "crosscheck": True}
        )
        _check(
            f"reanalyze after {step['event']} bit-identical "
            f"(mode={warm.get('mode')})",
            warm.get("probability") == reference,
            f"served {warm.get('probability')!r} want {reference!r}",
        )
    client.shutdown()

    print("phase 2: SIGKILL between journal begin and commit")
    kill_env = _env()
    kill_env["REPRO_SERVICE_KILL_AFTER"] = "journal_begin:reanalyze"
    client = Client(daemon_args, kill_env)
    stats = client.call({"op": "stats"})
    _check(
        "restart replays the load and every edit",
        stats["counters"]["replayed"] == 1 + len(_EDIT_LADDER),
        json.dumps(stats["counters"]),
    )
    client.send_only({"op": "reanalyze", "session": session})
    code = client.wait_killed()
    _check("daemon SIGKILLed mid-request", code == -9, f"exit {code}")

    print("phase 3: restart, recover, re-answer")
    client = Client(daemon_args, _env())
    stats = client.call({"op": "stats"})
    _check(
        "in-flight request aborted on replay",
        stats["counters"]["aborted_in_flight"] >= 1,
        json.dumps(stats["counters"]),
    )
    _check(
        "completed history replayed again",
        stats["counters"]["replayed"] == 1 + len(_EDIT_LADDER),
        json.dumps(stats["counters"]),
    )
    answer = client.call(
        {"op": "reanalyze", "session": session, "crosscheck": True}
    )
    _check(
        "post-recovery answer bit-identical to reference",
        answer.get("probability") == references[-1],
        f"served {answer.get('probability')!r} want {references[-1]!r}",
    )
    client.shutdown()

    trace = workdir / "request-trace.jsonl"
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    _check("request trace written", len(records) >= 8, f"{len(records)} records")
    print(f"service smoke passed; trace at {trace} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
