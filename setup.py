"""Setuptools entry point.

Kept alongside ``pyproject.toml`` (which holds all metadata) so that
``pip install -e .`` works in fully offline environments: without a
``[build-system]`` table pip falls back to the legacy ``setup.py
develop`` path, which needs no isolated build environment and therefore
no network access.
"""

from setuptools import setup

setup()
