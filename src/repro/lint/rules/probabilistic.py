"""Probabilistic rules (SD2xx): numbers that undermine the analysis.

The rare-event sum of Section IV, the MOCUS cutoff of Section V and the
uniformization solver all rest on quantitative assumptions a model can
silently violate.  These rules compare the worst-case event
probabilities (the exact numbers the static translation will use) and
the raw chain rates against the configured horizon and cutoff — before
a single cutset is generated.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.registry import rule

__all__: list[str] = []


@rule(
    "SD201",
    "rare-event-degraded",
    Severity.WARNING,
    "Worst-case event probability is large; the rare-event sum degrades.",
)
def check_rare_event_threshold(ctx: LintContext) -> Iterator[Diagnostic]:
    threshold = ctx.config.rare_event_threshold
    for name in sorted(ctx.sdft.all_event_names):
        if name not in ctx.effective_reachable:
            continue
        probability = ctx.worst_case(name)
        if probability is None or probability <= threshold:
            continue
        if ctx.sdft.is_static(name) and probability == 1.0:
            continue  # SD202's finding
        if ctx.sdft.is_dynamic(name):
            chain = ctx.sdft.dynamic_events[name].chain
            if all(state in chain.failed for state in chain.initial):
                continue  # SD209's finding
        yield Diagnostic(
            "SD201",
            Severity.WARNING,
            name,
            f"worst-case probability {probability:.3g} over the "
            f"{ctx.config.horizon} h horizon exceeds {threshold:g}; the "
            f"rare-event approximation over-counts cutsets containing "
            f"this event",
            path=ctx.path_to(name),
            hint="shorten the horizon, lower the failure rate, or read "
            "the result as an upper bound only",
        )


@rule(
    "SD202",
    "certain-event",
    Severity.WARNING,
    "Static basic event with probability one is certain to fail.",
)
def check_certain_events(ctx: LintContext) -> Iterator[Diagnostic]:
    for name, event in sorted(ctx.sdft.static_events.items()):
        if event.probability != 1.0:
            continue
        yield Diagnostic(
            "SD202",
            Severity.WARNING,
            name,
            "probability 1: the event is certain, so it adds nothing to "
            "AND logic and saturates every OR above it",
            path=ctx.path_to(name),
            hint="model certainties structurally (drop the event) or "
            "give the event its real probability",
        )


@rule(
    "SD203",
    "zero-probability-event",
    Severity.INFO,
    "Static basic event with probability zero can never contribute.",
)
def check_zero_probability_events(ctx: LintContext) -> Iterator[Diagnostic]:
    for name, event in sorted(ctx.sdft.static_events.items()):
        if event.probability != 0.0:
            continue
        yield Diagnostic(
            "SD203",
            Severity.INFO,
            name,
            "probability 0: the event can never contribute to a cutset",
            path=ctx.path_to(name),
            hint="delete the event or give it a real probability",
        )


@rule(
    "SD204",
    "cutoff-empties-mcs",
    Severity.ERROR,
    "The cutoff exceeds every event's worst-case probability: the "
    "cutset list is guaranteed empty.",
)
def check_cutoff_empties_mcs(ctx: LintContext) -> Iterator[Diagnostic]:
    cutoff = ctx.config.cutoff
    if cutoff <= 0.0:
        return
    best = 0.0
    solved_any = False
    for name in ctx.sdft.all_event_names:
        if name not in ctx.effective_reachable:
            continue
        probability = ctx.worst_case(name)
        if probability is None:
            # An unsolvable chain leaves the bound unknown; stay silent
            # rather than reject a model on a guess.
            return
        solved_any = True
        best = max(best, probability)
    if solved_any and best < cutoff:
        yield Diagnostic(
            "SD204",
            Severity.ERROR,
            ctx.tree.top,
            f"cutoff {cutoff:g} exceeds the largest worst-case event "
            f"probability {best:.3g}; every cutset falls below the "
            f"cutoff and MOCUS silently returns an empty list",
            path=(ctx.tree.top,),
            hint=f"lower the cutoff below {best:.3g} or fix the event "
            f"probabilities",
        )


@rule(
    "SD205",
    "event-below-cutoff",
    Severity.WARNING,
    "Event's worst-case probability is below the cutoff; it can never "
    "appear in a reported cutset.",
)
def check_events_below_cutoff(ctx: LintContext) -> Iterator[Diagnostic]:
    cutoff = ctx.config.cutoff
    if cutoff <= 0.0:
        return
    for name in sorted(ctx.sdft.all_event_names):
        if name not in ctx.effective_reachable:
            continue
        probability = ctx.worst_case(name)
        if probability is None or probability == 0.0 or probability >= cutoff:
            continue
        yield Diagnostic(
            "SD205",
            Severity.WARNING,
            name,
            f"worst-case probability {probability:.3g} is below the "
            f"cutoff {cutoff:g}; a cutset's probability never exceeds "
            f"its rarest member, so this event is invisible to the "
            f"analysis",
            path=ctx.path_to(name),
            hint="lower the cutoff or accept that the event is ignored",
        )


@rule(
    "SD206",
    "stiff-chain",
    Severity.WARNING,
    "Chain rates are extreme against the horizon; the transient solve "
    "will be expensive.",
)
def check_stiff_chains(ctx: LintContext) -> Iterator[Diagnostic]:
    threshold = ctx.config.stiffness_threshold
    horizon = ctx.config.horizon
    for name, event in sorted(ctx.sdft.dynamic_events.items()):
        exposure = ctx.max_exit_rate(event.chain) * horizon
        if exposure <= threshold:
            continue
        yield Diagnostic(
            "SD206",
            Severity.WARNING,
            name,
            f"max exit rate x horizon = {exposure:.3g} exceeds "
            f"{threshold:g}; uniformization needs on the order of that "
            f"many matrix-vector products per solve of any cutset chain "
            f"containing this event",
            path=ctx.path_to(name),
            hint="rescale near-instantaneous transitions (model them as "
            "switches or static events) or shorten the horizon",
        )


@rule(
    "SD207",
    "inert-chain",
    Severity.WARNING,
    "Dynamic event whose chain can never reach a failed state.",
)
def check_inert_chains(ctx: LintContext) -> Iterator[Diagnostic]:
    for name in sorted(ctx.sdft.dynamic_events):
        if ctx.chain_can_fail(name):
            continue
        yield Diagnostic(
            "SD207",
            Severity.WARNING,
            name,
            "no failed state is reachable from the chain's initial "
            "states; the event can never fail and is dead weight in "
            "every cutset",
            path=ctx.path_to(name),
            hint="add the missing failure transitions or declare the "
            "component as a static event",
        )


@rule(
    "SD208",
    "negligible-rates",
    Severity.INFO,
    "Chain rates are negligible against the horizon; the event "
    "effectively never moves within the mission.",
)
def check_negligible_rates(ctx: LintContext) -> Iterator[Diagnostic]:
    threshold = ctx.config.negligible_exposure
    horizon = ctx.config.horizon
    for name, event in sorted(ctx.sdft.dynamic_events.items()):
        if not ctx.chain_can_fail(name):
            continue  # SD207's finding; no rate tuning will matter
        exposure = ctx.max_exit_rate(event.chain) * horizon
        if exposure == 0.0 or exposure >= threshold:
            continue
        yield Diagnostic(
            "SD208",
            Severity.INFO,
            name,
            f"max exit rate x horizon = {exposure:.3g} is below "
            f"{threshold:g}; the chain is effectively frozen over the "
            f"mission and the event contributes nothing measurable",
            path=ctx.path_to(name),
            hint="check the rate units (per hour expected) against the "
            "horizon",
        )


@rule(
    "SD209",
    "initially-failed-event",
    Severity.INFO,
    "Dynamic event starts failed (initiating-event shape); its static "
    "stand-in is probability one.",
)
def check_initially_failed_events(ctx: LintContext) -> Iterator[Diagnostic]:
    for name, event in sorted(ctx.sdft.dynamic_events.items()):
        chain = event.chain
        if not all(state in chain.failed for state in chain.initial):
            continue
        yield Diagnostic(
            "SD209",
            Severity.INFO,
            name,
            "the chain starts in its failed states — an initiating-event "
            "shape; the static translation assigns it worst-case "
            "probability 1, so the rare-event bound for its cutsets "
            "leans entirely on the other members",
            path=ctx.path_to(name),
            hint="intentional for initiating events; otherwise check the "
            "chain's initial distribution",
        )
