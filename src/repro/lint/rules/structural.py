"""Structural rules (SD1xx): dead weight and degenerate logic.

These rules look only at the gate graph and the constant-propagation
fixpoints of :class:`~repro.lint.context.LintContext` — no probability
is ever solved for.  Reachability is the *effective* kind: the static
translation pulls every trigger gate's subtree into the cutsets of its
triggered events, so a trigger-only subtree is alive, not dangling.
"""

from __future__ import annotations

from typing import Iterator

from repro.ft.tree import GateType
from repro.lint.context import LintContext
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.registry import rule

__all__: list[str] = []  # rules register themselves; nothing to import by name


@rule(
    "SD101",
    "unreachable-gate",
    Severity.WARNING,
    "Gate is not reachable from the top gate (nor through any trigger).",
)
def check_unreachable_gates(ctx: LintContext) -> Iterator[Diagnostic]:
    for name in sorted(ctx.tree.gates):
        if name not in ctx.effective_reachable:
            yield Diagnostic(
                "SD101",
                Severity.WARNING,
                name,
                "gate is dead weight: no path from the top gate reaches it "
                "and no trigger pulls it into any cutset",
                path=ctx.path_to(name),
                hint="wire the gate into the tree or delete it",
            )


@rule(
    "SD102",
    "unreachable-event",
    Severity.WARNING,
    "Basic event is not an input of any live gate (dangling input).",
)
def check_unreachable_events(ctx: LintContext) -> Iterator[Diagnostic]:
    for name in sorted(ctx.sdft.all_event_names):
        if name in ctx.effective_reachable:
            continue
        if ctx.tree.parents(name):
            message = (
                "basic event only feeds unreachable gates; it can never "
                "contribute to a cutset"
            )
        else:
            message = (
                "basic event is declared but never used as a gate input"
            )
        yield Diagnostic(
            "SD102",
            Severity.WARNING,
            name,
            message,
            path=ctx.path_to(name),
            hint="connect the event to a live gate or delete it",
        )


@rule(
    "SD103",
    "single-child-gate",
    Severity.INFO,
    "Gate with one input acts as a pass-through.",
)
def check_single_child_gates(ctx: LintContext) -> Iterator[Diagnostic]:
    for name, gate in sorted(ctx.tree.gates.items()):
        if len(gate.children) != 1:
            continue
        yield Diagnostic(
            "SD103",
            Severity.INFO,
            name,
            f"{gate.gate_type.value.upper()} gate has a single input "
            f"{gate.children[0]!r} and merely passes it through",
            path=ctx.path_to(name),
            hint=f"reference {gate.children[0]!r} directly and drop the gate",
        )


@rule(
    "SD104",
    "degenerate-atleast",
    Severity.WARNING,
    "ATLEAST gate with k=1 or k=n is an OR or AND in disguise.",
)
def check_degenerate_atleast(ctx: LintContext) -> Iterator[Diagnostic]:
    for name, gate in sorted(ctx.tree.gates.items()):
        if gate.gate_type is not GateType.ATLEAST or len(gate.children) < 2:
            continue
        assert gate.k is not None
        if gate.k == 1:
            equivalent = "OR"
        elif gate.k == len(gate.children):
            equivalent = "AND"
        else:
            continue
        yield Diagnostic(
            "SD104",
            Severity.WARNING,
            name,
            f"ATLEAST gate with k={gate.k} of {len(gate.children)} inputs "
            f"is exactly an {equivalent} gate",
            path=ctx.path_to(name),
            hint=f"declare the gate as {equivalent}: the trigger "
            f"classification treats proper voting gates conservatively, "
            f"so the disguise can cost the general case",
        )


@rule(
    "SD105",
    "vacuous-gate",
    Severity.WARNING,
    "Gate can never fail (a constant-false input makes it vacuous).",
)
def check_vacuous_gates(ctx: LintContext) -> Iterator[Diagnostic]:
    never = ctx.never_fails
    for name, gate in sorted(ctx.tree.gates.items()):
        if name not in ctx.effective_reachable or not never[name]:
            continue
        # Report only where the constancy originates: a vacuous gate
        # whose vacuity is inherited from a vacuous child gate adds
        # noise, not information.
        if any(ctx.tree.is_gate(c) and never[c] for c in gate.children):
            continue
        culprits = sorted(c for c in gate.children if never[c])
        if gate.gate_type is GateType.AND:
            reason = f"its input(s) {culprits} can never fail"
        else:
            reason = "none of its inputs can ever fail"
        yield Diagnostic(
            "SD105",
            Severity.WARNING,
            name,
            f"gate can never fail: {reason}",
            path=ctx.path_to(name),
            hint="remove the gate or give the constant events a real "
            "probability / a failable chain",
        )


@rule(
    "SD106",
    "constant-gate",
    Severity.WARNING,
    "Gate is certainly failed from time zero on.",
)
def check_constant_gates(ctx: LintContext) -> Iterator[Diagnostic]:
    always = ctx.always_fails
    for name, gate in sorted(ctx.tree.gates.items()):
        if name not in ctx.effective_reachable or not always[name]:
            continue
        if any(ctx.tree.is_gate(c) and always[c] for c in gate.children):
            continue
        culprits = sorted(c for c in gate.children if always[c])
        yield Diagnostic(
            "SD106",
            Severity.WARNING,
            name,
            f"gate is certainly failed at time zero: input(s) {culprits} "
            f"are certain to be failed",
            path=ctx.path_to(name),
            hint="a constant gate hides all other inputs from OR logic; "
            "check the probability-1 events feeding it",
        )


@rule(
    "SD107",
    "top-never-fails",
    Severity.ERROR,
    "The top gate can never fail: every analysis is trivially zero.",
)
def check_top_never_fails(ctx: LintContext) -> Iterator[Diagnostic]:
    top = ctx.tree.top
    if ctx.never_fails[top]:
        yield Diagnostic(
            "SD107",
            Severity.ERROR,
            top,
            "the top gate can never fail; MOCUS would return an empty "
            "cutset list and the failure probability is identically zero",
            path=(top,),
            hint="the model is vacuous: check for probability-0 events "
            "and chains without reachable failed states on every path",
        )


@rule(
    "SD108",
    "top-always-fails",
    Severity.ERROR,
    "The top gate is certainly failed at time zero.",
)
def check_top_always_fails(ctx: LintContext) -> Iterator[Diagnostic]:
    top = ctx.tree.top
    if ctx.always_fails[top]:
        yield Diagnostic(
            "SD108",
            Severity.ERROR,
            top,
            "the top gate is certainly failed from time zero on; the "
            "failure probability is identically one and the rare-event "
            "sum is meaningless",
            path=(top,),
            hint="check the probability-1 events and initially-failed "
            "chains feeding the top gate",
        )
