"""Classification-preview rules (SD4xx): predicted quantification cost.

Section V-A's syntactic conditions — static branching, static joins,
uniform triggering — decide per trigger gate whether its cutsets get
the cheap chain construction or the expensive general case.  These
rules run :mod:`repro.core.classify` over the model *before* any
analysis and turn the outcome into diagnostics with a cost estimate,
so a modeller learns about a general-case trigger from ``sdft lint``
instead of from a slow run.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.classify import TriggerClass
from repro.ft.tree import GateType
from repro.lint.context import LintContext
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.registry import rule

__all__: list[str] = []


@rule(
    "SD401",
    "general-case-trigger",
    Severity.WARNING,
    "Trigger gate needs the general (most expensive) quantification case.",
)
def check_general_case_triggers(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate_name, trigger_class in sorted(ctx.classification.by_gate.items()):
        if trigger_class is not TriggerClass.GENERAL:
            continue
        dynamic = ctx.sdft.dynamic_under(gate_name)
        static = ctx.sdft.static_under(gate_name)
        estimate = ctx.mcs_estimate(gate_name)
        cap = ctx.config.mcs_estimate_cap
        about = f"~{estimate}" if estimate < cap else f">={cap}"
        yield Diagnostic(
            "SD401",
            Severity.WARNING,
            gate_name,
            f"trigger gate has neither static branching nor static "
            f"joins: every cutset touching its {len(dynamic)} dynamic "
            f"event(s) pulls in up to {len(static)} static guard(s) as "
            f"extra chain dimensions ({about} cutset combinations under "
            f"the gate, pre-minimisation)",
            path=ctx.path_to(gate_name),
            hint="restructure so OR gates under the trigger have at most "
            "one dynamic child (static branching) or keep dynamic "
            "events out of AND gates (static joins)",
        )


@rule(
    "SD402",
    "nonuniform-static-joins",
    Severity.INFO,
    "Static joins without uniform triggering: chained triggers fall "
    "back to the general case.",
)
def check_nonuniform_static_joins(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate_name, trigger_class in sorted(ctx.classification.by_gate.items()):
        if trigger_class is not TriggerClass.STATIC_JOINS:
            continue
        dynamic = sorted(ctx.sdft.dynamic_under(gate_name))
        untriggered = [n for n in dynamic if ctx.sdft.trigger_of.get(n) is None]
        sources = sorted(
            {
                source
                for source in map(ctx.sdft.trigger_of.get, dynamic)
                if source is not None
            }
        )
        if untriggered:
            reason = (
                f"dynamic event(s) {', '.join(untriggered)} under it are "
                f"not triggered at all"
            )
        else:
            reason = (
                f"its dynamic events are switched by different gates "
                f"({', '.join(sources)})"
            )
        yield Diagnostic(
            "SD402",
            Severity.INFO,
            gate_name,
            f"the gate has static joins but not uniform triggering: "
            f"{reason}; added trigger gates on top of this one would "
            f"quantify as the general case",
            path=ctx.path_to(gate_name),
            hint="uniform triggering needs every dynamic event in the "
            "subtree switched by one common gate",
        )


@rule(
    "SD403",
    "voting-gate-over-dynamic",
    Severity.INFO,
    "Proper voting gate above dynamic events is classified "
    "conservatively (general case).",
)
def check_voting_over_dynamic(ctx: LintContext) -> Iterator[Diagnostic]:
    seen: set[str] = set()
    for trigger_gate in ctx.classification.by_gate:
        for name in sorted(ctx.tree.gates_under(trigger_gate)):
            if name in seen:
                continue
            gate = ctx.tree.gates[name]
            if gate.gate_type is not GateType.ATLEAST:
                continue
            assert gate.k is not None
            if gate.k == 1 or gate.k == len(gate.children):
                continue  # degenerate: classify resolves these exactly
            if not any(
                ctx.sdft.dynamic_under_node(child) for child in gate.children
            ):
                continue
            seen.add(name)
            yield Diagnostic(
                "SD403",
                Severity.INFO,
                name,
                f"proper {gate.k}-of-{len(gate.children)} voting gate "
                f"with dynamic inputs under trigger gate "
                f"{trigger_gate!r}: the classification treats it as "
                f"violating both static branching and static joins, "
                f"routing the trigger to the general case",
                path=ctx.path_to(name),
                hint="normalise the voting gate into AND/OR logic if the "
                "cheap quantification classes matter here",
            )
