"""Rule modules of the model linter.

Importing this package registers every built-in rule with
:mod:`repro.lint.registry` (each module's ``@rule`` decorators run at
import time).  The grouping mirrors the diagnostic-code ranges:

* :mod:`repro.lint.rules.structural` — SD1xx, dead weight and
  degenerate logic;
* :mod:`repro.lint.rules.probabilistic` — SD2xx, numbers vs the
  rare-event approximation, the cutoff and the horizon;
* :mod:`repro.lint.rules.dynamic` — SD3xx, the trigger graph;
* :mod:`repro.lint.rules.classification` — SD4xx, the Section V-A
  quantification-cost preview;
* :mod:`repro.lint.rules.semantic` — SD5xx, BDD-verified facts about
  the denoted structure function and the trigger semantics.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import side effect: registration)
    classification,
    dynamic,
    probabilistic,
    semantic,
    structural,
)

__all__ = ["classification", "dynamic", "probabilistic", "semantic", "structural"]
