"""Semantic rules (SD5xx): what the model *means*, proved by BDDs.

The SD1xx–SD4xx rules judge shape — reachability, numbers, wiring.
These rules judge the denoted structure function and the trigger
semantics, via :mod:`repro.sem`: order-sensitive trigger races the
builder's acyclicity check cannot rule out, operands that contribute
nothing to their gate (verified by BDD identity, not pattern matching),
events outside the top function's support, interval bounds that refute
the rare-event approximation before anything is solved, and the
equivalence-checked diet preview.

Every BDD-backed fact is budget-guarded through
``LintConfig.sem_node_budget``: on overrun the context properties
return ``None`` and the rules silently skip — lint never raises.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.registry import rule

__all__: list[str] = []


@rule(
    "SD501",
    "trigger-order-race",
    Severity.WARNING,
    "Two triggers can fire at one instant and the order is observable.",
)
def check_trigger_races(ctx: LintContext) -> Iterator[Diagnostic]:
    for race in ctx.trigger_report.races:
        yield Diagnostic(
            "SD501",
            Severity.WARNING,
            race.first,
            race.describe(),
            path=ctx.path_to(race.first),
            hint="decouple the gates' supports, give the switched chain "
            "a non-failed switch-on state, or document the intended "
            "update order",
        )


@rule(
    "SD502",
    "instant-failure-on-trigger",
    Severity.INFO,
    "A triggered event can be failed the moment it is switched on.",
)
def check_instant_failure(ctx: LintContext) -> Iterator[Diagnostic]:
    for event in ctx.trigger_report.instant_failure_events:
        gate = ctx.sdft.trigger_of[event]
        yield Diagnostic(
            "SD502",
            Severity.INFO,
            event,
            f"switching on (by trigger gate {gate!r}) can land the chain "
            f"directly in a failed state: the event fails with zero "
            f"delay at the triggering instant",
            path=ctx.path_to(event),
            hint="intended for cold-start failures; otherwise route the "
            "switch-on into a working on-state",
        )


@rule(
    "SD503",
    "vacuous-operand",
    Severity.WARNING,
    "Removing the operand leaves the gate's function BDD-identical.",
)
def check_vacuous_operands(ctx: LintContext) -> Iterator[Diagnostic]:
    report = ctx.logic
    if report is None:
        return
    for finding in report.vacuous:
        if finding.operand in ctx.sem_constants:
            continue  # a constant operand is SD202/SD203's finding
        if finding.operand in report.constant_gates:
            continue  # a constant gate is SD105/SD106's finding
        yield Diagnostic(
            "SD503",
            Severity.WARNING,
            finding.gate,
            f"operand {finding.operand!r} does not change the gate's "
            f"structure function (absorbed by or implied within the "
            f"remaining operands; verified by BDD equivalence)",
            path=ctx.path_to(finding.gate),
            hint="drop the operand, or run `sdft simplify` to apply "
            "every verified reduction at once",
        )


@rule(
    "SD504",
    "absorbed-event",
    Severity.WARNING,
    "Reachable event outside the support of the top structure function.",
)
def check_absorbed_events(ctx: LintContext) -> Iterator[Diagnostic]:
    report = ctx.logic
    if report is None:
        return
    for event in report.dead_events:
        yield Diagnostic(
            "SD504",
            Severity.WARNING,
            event,
            "the event is wired into the tree but the top structure "
            "function does not depend on it: no failure combination "
            "involving it can change the top event",
            path=ctx.path_to(event),
            hint="the event is dead weight for this top gate; remove it "
            "or check the gates that were meant to propagate it",
        )


@rule(
    "SD505",
    "bounds-refute-rare-event",
    Severity.WARNING,
    "The interval lower bound already breaks the rare-event regime.",
)
def check_bounds_refute_rare_event(ctx: LintContext) -> Iterator[Diagnostic]:
    threshold = ctx.config.rare_event_threshold
    bound = ctx.bounds.top
    if bound.lo <= threshold:
        return
    for name in ctx.sdft.all_event_names:
        worst = ctx.worst_case(name)
        if worst is not None and worst > threshold:
            return  # a single event breaks the regime: SD201's finding
    yield Diagnostic(
        "SD505",
        Severity.WARNING,
        ctx.tree.top,
        f"interval analysis proves the top-event probability is at "
        f"least {bound.lo:.3g} (bracket [{bound.lo:.3g}, {bound.hi:.3g}]) "
        f"— above the rare-event threshold {threshold:g} even though no "
        f"single event exceeds it; the breach is emergent from the "
        f"structure and a rare-event cutset sum will over-count badly",
        path=(ctx.tree.top,),
        hint="prefer the exact BDD engine (--static-engine bdd) or read "
        "cutset results as loose upper bounds only",
    )


@rule(
    "SD506",
    "simplifiable-model",
    Severity.INFO,
    "The verified rewrite engine can shrink this model.",
)
def check_simplifiable(ctx: LintContext) -> Iterator[Diagnostic]:
    preview = ctx.simplify_preview
    if preview is None or not preview.changed:
        return
    if preview.removed_gates <= 0 and preview.removed_events <= 0:
        return
    tally = ", ".join(
        f"{count}x {kind}" for kind, count in sorted(preview.counts_by_kind().items())
    )
    yield Diagnostic(
        "SD506",
        Severity.INFO,
        ctx.tree.top,
        f"`sdft simplify` shrinks the model from {preview.gates_before} "
        f"to {preview.gates_after} gates "
        f"({preview.events_before} to {preview.events_after} events) "
        f"with every rewrite BDD-verified ({tally})",
        path=(ctx.tree.top,),
        hint="run `sdft simplify <model> --output <smaller>` before "
        "heavy analyses; equivalence of the top and all trigger "
        "scopes is checked, not assumed",
    )


@rule(
    "SD507",
    "non-coherent-function",
    Severity.ERROR,
    "The compiled top function is not monotone (engine self-check).",
)
def check_coherence(ctx: LintContext) -> Iterator[Diagnostic]:
    report = ctx.logic
    if report is None or not report.non_monotone:
        return
    witnesses = ", ".join(report.non_monotone)
    yield Diagnostic(
        "SD507",
        Severity.ERROR,
        ctx.tree.top,
        f"cofactor comparison found the top structure function "
        f"non-monotone in: {witnesses}; AND/OR/ATLEAST trees are "
        f"coherent by construction, so this indicates a compilation "
        f"defect — do not trust minimal-cutset results",
        path=(ctx.tree.top,),
        hint="this is an engine self-check; please report the model "
        "that produced it",
    )
