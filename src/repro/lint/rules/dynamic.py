"""Dynamic/trigger rules (SD3xx): the trigger graph beyond the builder.

:class:`~repro.core.sdft.SdFaultTree` construction already rejects the
hard trigger errors (unknown sources, double triggering, cyclic
triggering).  These rules find the *soft* pathologies that build fine
but cannot mean what the modeller intended: triggers that can never
fire, triggered events that stay switched off forever, and cascades of
triggers that stack switching delays.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.registry import rule

__all__: list[str] = []


@rule(
    "SD301",
    "trigger-never-fires",
    Severity.WARNING,
    "Trigger source gate can never fail; its triggers never fire.",
)
def check_trigger_never_fires(ctx: LintContext) -> Iterator[Diagnostic]:
    for gate_name in sorted(ctx.sdft.triggers):
        if not ctx.never_fails[gate_name]:
            continue
        events = ", ".join(sorted(ctx.sdft.triggers[gate_name]))
        yield Diagnostic(
            "SD301",
            Severity.WARNING,
            gate_name,
            f"the gate can never fail, so its trigger never fires and "
            f"the triggered event(s) {events} stay switched off forever",
            path=ctx.path_to(gate_name),
            hint="fix the never-failing inputs of the gate or remove "
            "the trigger",
        )


@rule(
    "SD302",
    "never-switched-on",
    Severity.WARNING,
    "Triggered dynamic event can never be switched on.",
)
def check_never_switched_on(ctx: LintContext) -> Iterator[Diagnostic]:
    for event_name, gate_name in sorted(ctx.sdft.trigger_of.items()):
        if not ctx.never_fails[gate_name]:
            continue
        yield Diagnostic(
            "SD302",
            Severity.WARNING,
            event_name,
            f"the event is only switched on by {gate_name!r}, which can "
            f"never fail; the event never leaves its off-states and "
            f"never fails",
            path=ctx.path_to(event_name),
            hint=f"fix gate {gate_name!r} or drop the event",
        )


@rule(
    "SD303",
    "trigger-cascade",
    Severity.INFO,
    "Chained triggering: one trigger's event enables the next trigger.",
)
def check_trigger_cascades(ctx: LintContext) -> Iterator[Diagnostic]:
    """Self-triggering chains ``g1 -(e1)-> g2 -(e2)-> ...``.

    An edge means: ``g1`` triggers an event that lies in the subtree of
    trigger gate ``g2`` — so ``g2``'s failure (and the switching of its
    own targets) can hinge on ``g1`` having fired first.  The builder
    guarantees the graph is acyclic; long chains are still worth
    surfacing because every stage adds sequence-dependence that only
    the general quantification case captures exactly.
    """
    follows: dict[str, set[str]] = {gate: set() for gate in ctx.sdft.triggers}
    for gate_name, events in ctx.sdft.triggers.items():
        for event_name in events:
            for other in ctx.sdft.triggers:
                if other == gate_name:
                    continue
                if event_name in ctx.tree.events_under(other):
                    follows[gate_name].add(other)

    # Longest chain starting at each gate (the graph is a DAG).
    chain_from: dict[str, list[str]] = {}

    def longest(gate: str) -> list[str]:
        if gate in chain_from:
            return chain_from[gate]
        best: list[str] = []
        for successor in sorted(follows[gate]):
            candidate = longest(successor)
            if len(candidate) > len(best):
                best = candidate
        chain_from[gate] = [gate] + best
        return chain_from[gate]

    heads = set(follows) - {g for targets in follows.values() for g in targets}
    for gate in sorted(heads):
        chain = longest(gate)
        if len(chain) < 3:
            continue  # direct handoffs (depth 2) are the normal pattern
        yield Diagnostic(
            "SD303",
            Severity.INFO,
            gate,
            f"trigger cascade of depth {len(chain)}: "
            + " -> ".join(chain)
            + "; each stage can only switch on after the previous one "
            "fails, stacking sequence-dependence",
            path=ctx.path_to(gate),
            hint="expect general-case quantification along the cascade; "
            "verify the stages are genuinely sequential in the system",
        )
