"""Configuration of the model linter.

:class:`LintConfig` carries the analysis parameters the probabilistic
rules compare against (horizon, cutoff), the rule thresholds, and the
per-rule policy: codes can be disabled outright and their severities
overridden — the same shape every mainstream linter exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.lint.diagnostic import Severity

__all__ = ["LintConfig"]


@dataclass(frozen=True)
class LintConfig:
    """Knobs of one lint run.

    ``horizon`` and ``cutoff`` mirror the analysis that will follow so
    the probabilistic rules judge the model against the run it is about
    to get (``sdft lint --horizon --cutoff`` and
    :class:`~repro.core.analyzer.AnalysisOptions` feed them through).

    ``rare_event_threshold`` is the worst-case event probability above
    which the rare-event sum of Section IV starts to degrade;
    ``stiffness_threshold`` bounds ``max exit rate × horizon`` before a
    chain is flagged as stiff (uniformization cost grows linearly with
    it); ``negligible_exposure`` is the ``max exit rate × horizon``
    below which a chain effectively never moves within the mission;
    ``mcs_estimate_cap`` caps the combinatorial cutset-count estimate
    of the classification preview.

    ``sem_node_budget`` bounds the BDD compilations behind the semantic
    rules (SD5xx); on overrun those rules silently skip (lint must
    never raise) while the shape rules still run.

    ``disabled`` names codes to skip; ``severity_overrides`` maps codes
    to replacement severities (e.g. promote ``SD201`` to an error for a
    strict CI gate).
    """

    horizon: float = 24.0
    cutoff: float = 1e-15
    rare_event_threshold: float = 0.1
    stiffness_threshold: float = 1e4
    negligible_exposure: float = 1e-9
    mcs_estimate_cap: int = 1_000_000
    sem_node_budget: int = 200_000
    disabled: frozenset[str] = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.horizon < 0.0:
            raise ValueError(f"horizon must be non-negative, got {self.horizon}")
        if self.cutoff < 0.0:
            raise ValueError(f"cutoff must be non-negative, got {self.cutoff}")

    def is_enabled(self, code: str) -> bool:
        """Whether the rule with this code should run."""
        return code not in self.disabled

    def severity_for(self, code: str, default: Severity) -> Severity:
        """The effective severity of ``code`` under the overrides."""
        return self.severity_overrides.get(code, default)
