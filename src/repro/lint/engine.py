"""The lint driver: run every enabled rule over one shared context.

:func:`lint` is the programmatic entry point (``sdft lint`` and
:class:`~repro.core.analyzer.AnalysisOptions.lint` both call it).  The
result is a :class:`LintReport` — an immutable, sorted collection of
diagnostics with rendering helpers for the CLI's text and JSON formats.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.sdft import SdFaultTree
from repro.ft.tree import FaultTree
from repro.lint.config import LintConfig
from repro.lint.context import LintContext
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.registry import all_rules

__all__ = ["LintReport", "lint"]


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one lint run, most severe first."""

    model: str
    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """Findings at error severity."""
        return self._at(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """Findings at warning severity."""
        return self._at(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        """Findings at info severity."""
        return self._at(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        """Whether any finding is an error."""
        return bool(self.errors)

    @property
    def max_severity(self) -> Severity | None:
        """The most severe finding's severity, or ``None`` when clean."""
        if not self.diagnostics:
            return None
        return max(self.diagnostics, key=lambda d: d.severity.rank).severity

    def codes(self) -> tuple[str, ...]:
        """The distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def at_or_above(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """Findings at ``severity`` or worse."""
        return tuple(
            d for d in self.diagnostics if d.severity.rank >= severity.rank
        )

    def _at(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}``."""
        return {
            Severity.ERROR.value: len(self.errors),
            Severity.WARNING.value: len(self.warnings),
            Severity.INFO.value: len(self.infos),
        }

    def summary_line(self) -> str:
        """One line: totals by severity (or a clean bill of health)."""
        if not self.diagnostics:
            return f"{self.model}: no diagnostics"
        parts = [
            f"{count} {name}{'s' if count != 1 else ''}"
            for name, count in self.counts().items()
            if count
        ]
        total = len(self.diagnostics)
        noun = "diagnostic" if total == 1 else "diagnostics"
        return f"{self.model}: {total} {noun} ({', '.join(parts)})"

    def render_text(self) -> str:
        """The full text report (summary line plus one block per finding)."""
        lines = [self.summary_line()]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable payload of the whole report."""
        return {
            "model": self.model,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)


def lint(
    model: SdFaultTree | FaultTree, config: LintConfig | None = None
) -> LintReport:
    """Run every enabled rule over ``model`` and return the report.

    ``model`` may be an :class:`~repro.core.sdft.SdFaultTree` or a plain
    static :class:`~repro.ft.tree.FaultTree` (promoted to an SD tree
    with no dynamic events, exactly like the CLI does).  Nothing is
    analysed: no translation, no MOCUS, no cutset chains — only the
    per-event worst-case solves the probabilistic rules compare against
    the cutoff, and those are skipped per event if they fail.
    """
    sdft = _as_sdft(model)
    cfg = config or LintConfig()
    context = LintContext(sdft, cfg)
    findings: list[Diagnostic] = []
    for rule in all_rules():
        if not cfg.is_enabled(rule.code):
            continue
        findings.extend(rule.run(context))
    findings.sort(key=Diagnostic.sort_key)
    return LintReport(model=sdft.name, diagnostics=tuple(findings))


def _as_sdft(model: SdFaultTree | FaultTree) -> SdFaultTree:
    if isinstance(model, SdFaultTree):
        return model
    return SdFaultTree(
        model.top,
        model.events.values(),
        [],
        model.gates.values(),
        {},
        name=model.name,
    )
