"""The diagnostic vocabulary of the model linter.

A :class:`Diagnostic` is one finding of one rule: a stable code
(``SD101``), a severity, the offending node with its path from the top
gate, a human-readable message and an optional fix hint.  Diagnostics
are plain frozen data so reports can be sorted, serialised and compared
in tests without ceremony.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make an analysis meaningless or guaranteed-empty
    and should reject the model before any pool time is burned;
    ``WARNING`` findings undermine accuracy or performance but the run
    still computes something; ``INFO`` findings are modelling smells.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric order: higher is more severe."""
        return _RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank <= other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """The severity named by ``text`` (``error|warning|info``)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.value for s in cls)}"
            ) from None


_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    ``node`` is the offending node's name and ``path`` the node names
    from the top gate down to it (just ``(node,)`` when the node is not
    reachable from the top); ``hint`` suggests a concrete fix when the
    rule knows one.
    """

    code: str
    severity: Severity
    node: str
    message: str
    path: tuple[str, ...] = ()
    hint: str | None = None

    @property
    def path_string(self) -> str:
        """The path rendered ``top/…/node`` (or just the node name)."""
        return "/".join(self.path) if self.path else self.node

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable payload of this diagnostic."""
        payload: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "node": self.node,
            "path": list(self.path),
            "message": self.message,
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def render(self) -> str:
        """One text line (plus an indented hint line when present)."""
        line = f"{self.severity.value:7s} {self.code}  {self.path_string}: {self.message}"
        if self.hint:
            line += f"\n        hint: {self.hint}"
        return line

    def sort_key(self) -> tuple[int, str, str]:
        """Most severe first, then by code, then by node."""
        return (-self.severity.rank, self.code, self.node)
