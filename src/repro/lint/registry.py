"""The rule registry of the model linter.

A rule is a function from a :class:`~repro.lint.context.LintContext` to
an iterable of :class:`~repro.lint.diagnostic.Diagnostic` findings,
registered under a stable code with the :func:`rule` decorator::

    @rule("SD101", "unreachable-gate", Severity.WARNING,
          "Gate not reachable from the top gate.")
    def check_unreachable_gates(ctx: LintContext) -> Iterator[Diagnostic]:
        ...

The registry is what the engine iterates, what ``sdft lint
--list-rules`` prints, and what keeps ``docs/linting.md`` honest (the
doc test cross-checks the catalogue against it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.lint.diagnostic import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.context import LintContext

__all__ = ["Rule", "rule", "all_rules", "get_rule"]

CheckFunction = Callable[["LintContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered diagnostic rule.

    ``code`` is the stable identifier (``SD<category><number>``),
    ``name`` a short kebab-case slug, ``default_severity`` the severity
    findings carry unless the config overrides it, and ``description``
    the one-line rationale shown by ``--list-rules``.
    """

    code: str
    name: str
    default_severity: Severity
    description: str
    check: CheckFunction

    def run(self, context: "LintContext") -> Iterator[Diagnostic]:
        """All findings of this rule, at the config-effective severity."""
        severity = context.config.severity_for(self.code, self.default_severity)
        for finding in self.check(context):
            if finding.severity is severity:
                yield finding
            else:
                yield Diagnostic(
                    code=finding.code,
                    severity=severity,
                    node=finding.node,
                    message=finding.message,
                    path=finding.path,
                    hint=finding.hint,
                )


_REGISTRY: dict[str, Rule] = {}


def rule(
    code: str, name: str, severity: Severity, description: str
) -> Callable[[CheckFunction], CheckFunction]:
    """Register the decorated function as the rule ``code``."""

    def decorate(check: CheckFunction) -> CheckFunction:
        if code in _REGISTRY:
            raise ValueError(f"lint rule code {code!r} registered twice")
        _REGISTRY[code] = Rule(code, name, severity, description, check)
        return check

    return decorate


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    _load_rule_modules()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``."""
    _load_rule_modules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _load_rule_modules() -> None:
    """Import the rule modules so their registrations run once."""
    from repro.lint import rules  # noqa: F401  (import side effect)
