"""Static diagnostics for SD fault trees.

``repro.lint`` inspects an :class:`~repro.core.sdft.SdFaultTree` (or a
plain static :class:`~repro.ft.tree.FaultTree`) *without running any
analysis* and reports model smells as stable diagnostic codes:

* **SD1xx** structural — unreachable gates/events, pass-through and
  degenerate gates, vacuous or constant logic;
* **SD2xx** probabilistic — probabilities that undermine the rare-event
  approximation, cutoffs that silently empty the cutset list, stiff or
  inert chains;
* **SD3xx** dynamic — triggers that can never fire, events that stay
  switched off, trigger cascades;
* **SD4xx** classification preview — trigger gates headed for the
  general (expensive) quantification case, per Section V-A.

The one entry point is :func:`lint`::

    from repro.lint import lint, LintConfig

    report = lint(model, LintConfig(horizon=24.0, cutoff=1e-15))
    if report.has_errors:
        ...

The same engine backs ``sdft lint`` and the analyzer's fail-fast gate
(:class:`~repro.core.analyzer.AnalysisOptions` ``lint=True``).  See
``docs/linting.md`` for the full code catalogue.
"""

from repro.lint.config import LintConfig
from repro.lint.diagnostic import Diagnostic, Severity
from repro.lint.engine import LintReport, lint
from repro.lint.registry import Rule, all_rules, get_rule, rule

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint",
    "rule",
]
