"""Shared traversal state for one lint run.

Every rule reads from one :class:`LintContext`, so the expensive
structural facts — reachability, top-down paths, the never-fails /
always-fails fixpoints, per-chain reachability, worst-case event
probabilities, the trigger classification — are computed once per run
over one graph traversal each, not once per rule.  All members are
lazily cached; a run that disables the probabilistic rules never solves
a transient equation.
"""

from __future__ import annotations

from collections import deque
from functools import cached_property
from typing import TYPE_CHECKING, Hashable, Mapping

from repro.core.classify import ClassificationReport, classification_report
from repro.core.sdft import SdFaultTree
from repro.ctmc.chain import Ctmc
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import AnalysisError, NumericalError
from repro.ft.tree import FaultTree, Gate, GateType
from repro.lint.config import LintConfig

if TYPE_CHECKING:  # deferred: the sem package imports are lazy at runtime
    from repro.sem.bounds import BoundsReport
    from repro.sem.logic import LogicReport
    from repro.sem.rewrite import SimplifyResult
    from repro.sem.triggers import TriggerReport

__all__ = ["LintContext"]


class LintContext:
    """Read-only facts about one model, shared by every rule."""

    def __init__(self, sdft: SdFaultTree, config: LintConfig) -> None:
        self.sdft = sdft
        self.config = config

    @property
    def tree(self) -> FaultTree:
        """The structural (static) view of the model."""
        return self.sdft.structure

    # ------------------------------------------------------------------
    # Reachability and paths
    # ------------------------------------------------------------------

    @cached_property
    def reachable(self) -> frozenset[str]:
        """All node names reachable from the top gate, inclusive."""
        return self.tree.reachable_from_top()

    @cached_property
    def effective_reachable(self) -> frozenset[str]:
        """Nodes live for the analysis: tree reachability plus triggers.

        The static translation rewrites every triggered event ``b`` into
        ``AND(b, g)`` with ``g`` its triggering gate, so ``g``'s whole
        subtree contributes to cutsets even when no gate of the original
        tree references it.  A node outside this set is dead weight for
        any analysis of the model.
        """
        live: set[str] = set(self.reachable)
        changed = True
        while changed:
            changed = False
            for event_name, gate_name in self.sdft.trigger_of.items():
                if event_name in live and gate_name not in live:
                    live.add(gate_name)
                    live |= self.tree.gates_under(gate_name)
                    live |= self.tree.events_under(gate_name)
                    changed = True
        return frozenset(live)

    @cached_property
    def _predecessor(self) -> dict[str, str | None]:
        """BFS tree of the DAG from the top gate (shortest paths)."""
        predecessor: dict[str, str | None] = {self.tree.top: None}
        queue: deque[str] = deque((self.tree.top,))
        while queue:
            node = queue.popleft()
            for child in self.tree.children(node):
                if child not in predecessor:
                    predecessor[child] = node
                    queue.append(child)
        return predecessor

    def path_to(self, node: str) -> tuple[str, ...]:
        """Node names from the top gate down to ``node``.

        For a node unreachable from the top the path is ``(node,)`` —
        there is nothing meaningful to prefix it with.
        """
        if node not in self._predecessor:
            return (node,)
        path: list[str] = []
        cursor: str | None = node
        while cursor is not None:
            path.append(cursor)
            cursor = self._predecessor[cursor]
        return tuple(reversed(path))

    # ------------------------------------------------------------------
    # Structural constant-propagation (never-fails / always-fails)
    # ------------------------------------------------------------------

    @cached_property
    def never_fails(self) -> Mapping[str, bool]:
        """Whether each node can never fail, for any horizon.

        A static event never fails iff its probability is zero; a
        dynamic event never fails iff no failed state of its chain is
        reachable from the initial support (trigger switching included).
        Gates propagate bottom-up: an AND gate with a never-failing
        child, an OR gate with only never-failing children, an ATLEAST
        gate with fewer than ``k`` fallible children.
        """
        result: dict[str, bool] = {}
        for name, event in self.sdft.static_events.items():
            result[name] = event.probability == 0.0
        for name in self.sdft.dynamic_events:
            result[name] = not self.chain_can_fail(name)
        for gate in self.tree.gates_bottom_up():
            result[gate.name] = self._gate_never_fails(gate, result)
        return result

    @staticmethod
    def _gate_never_fails(gate: Gate, result: dict[str, bool]) -> bool:
        fallible = sum(1 for child in gate.children if not result[child])
        if gate.gate_type is GateType.AND:
            return fallible < len(gate.children)
        if gate.gate_type is GateType.OR:
            return fallible == 0
        assert gate.k is not None
        return fallible < gate.k

    @cached_property
    def always_fails(self) -> Mapping[str, bool]:
        """Whether each node is certainly failed from time zero on.

        A static event with probability one, or a dynamic event whose
        whole initial distribution lies in its failed states (the
        station-blackout "offsite power lost" shape).  Under the reach
        semantics failure is absorbing, so gates propagate exactly like
        boolean constants: any such child forces an OR gate, all of them
        force an AND gate, ``k`` of them force an ATLEAST gate.
        """
        result: dict[str, bool] = {}
        for name, event in self.sdft.static_events.items():
            result[name] = event.probability == 1.0
        for name, event in self.sdft.dynamic_events.items():
            chain = event.chain
            result[name] = all(state in chain.failed for state in chain.initial)
        for gate in self.tree.gates_bottom_up():
            certain = sum(1 for child in gate.children if result[child])
            if gate.gate_type is GateType.AND:
                result[gate.name] = certain == len(gate.children)
            elif gate.gate_type is GateType.OR:
                result[gate.name] = certain > 0
            else:
                assert gate.k is not None
                result[gate.name] = certain >= gate.k
        return result

    # ------------------------------------------------------------------
    # Per-chain facts
    # ------------------------------------------------------------------

    def chain_can_fail(self, event_name: str) -> bool:
        """Whether the dynamic event's chain can ever reach a failed state.

        Pure graph reachability over the positive-rate transitions plus
        the instantaneous trigger switches (``switch_on``/``switch_off``)
        — no transient solve, so this never fails numerically.
        """
        return self._chain_facts[event_name]

    @cached_property
    def _chain_facts(self) -> dict[str, bool]:
        by_chain: dict[int, bool] = {}
        result: dict[str, bool] = {}
        for name, event in self.sdft.dynamic_events.items():
            key = id(event.chain)
            if key not in by_chain:
                by_chain[key] = _can_reach_failed(event.chain)
            result[name] = by_chain[key]
        return result

    def max_exit_rate(self, chain: Ctmc) -> float:
        """The largest total outgoing rate over all states of ``chain``."""
        totals: dict[Hashable, float] = {}
        for (source, _), rate in chain.rates.items():
            totals[source] = totals.get(source, 0.0) + rate
        return max(totals.values(), default=0.0)

    # ------------------------------------------------------------------
    # Worst-case probabilities (the translation's numbers)
    # ------------------------------------------------------------------

    def worst_case(self, event_name: str) -> float | None:
        """Worst-case failure probability of any basic event at the horizon.

        Static events return their probability; dynamic events the
        first-passage probability of their (switched-on) chain — the
        exact number the static translation would assign.  ``None``
        when the transient solve fails numerically: the probabilistic
        rules then skip the event instead of crashing the linter.
        """
        return self._worst_case_probabilities.get(event_name)

    @cached_property
    def _worst_case_probabilities(self) -> dict[str, float | None]:
        from repro.core.worst_case import worst_case_probability

        result: dict[str, float | None] = {
            name: event.probability
            for name, event in self.sdft.static_events.items()
        }
        by_chain: dict[int, float | None] = {}
        for name, event in self.sdft.dynamic_events.items():
            key = id(event.chain)
            if key not in by_chain:
                if not self.chain_can_fail(name):
                    by_chain[key] = 0.0
                else:
                    try:
                        by_chain[key] = worst_case_probability(
                            event.chain, self.config.horizon
                        )
                    except (NumericalError, AnalysisError, ValueError):
                        by_chain[key] = None
            result[name] = by_chain[key]
        return result

    # ------------------------------------------------------------------
    # Classification preview
    # ------------------------------------------------------------------

    @cached_property
    def classification(self) -> ClassificationReport:
        """The per-trigger classification of :mod:`repro.core.classify`."""
        return classification_report(self.sdft)

    # ------------------------------------------------------------------
    # Semantic analyses (repro.sem) for the SD5xx rules
    # ------------------------------------------------------------------

    @cached_property
    def sem_constants(self) -> dict[str, bool]:
        """Static events pinned to a boolean constant by their probability.

        Dynamic events are *never* constants here: their placeholder
        probability in the structural view is 0.0 by construction, not
        by meaning.
        """
        return {
            name: event.probability == 1.0
            for name, event in self.sdft.static_events.items()
            if event.probability in (0.0, 1.0)
        }

    @cached_property
    def logic(self) -> "LogicReport | None":
        """BDD-verified logical diagnostics; ``None`` on budget overrun."""
        from repro.errors import BddBudgetExceeded
        from repro.sem.logic import logical_diagnostics

        try:
            return logical_diagnostics(
                self.tree,
                constants=self.sem_constants,
                node_budget=self.config.sem_node_budget,
            )
        except BddBudgetExceeded:
            return None

    @cached_property
    def trigger_report(self) -> "TriggerReport":
        """The trigger dependency graph and its order-sensitive races."""
        from repro.sem.triggers import analyze_triggers

        return analyze_triggers(self.sdft)

    @cached_property
    def bounds(self) -> "BoundsReport":
        """Interval bounds on every node, dynamic events at worst case."""
        from repro.sem.bounds import interval_bounds

        worst: dict[str, float] = {}
        for name in self.sdft.dynamic_events:
            probability = self.worst_case(name)
            if probability is not None:
                worst[name] = probability
        return interval_bounds(
            self.tree, dynamic=self.sdft.dynamic_events, worst_case=worst
        )

    @cached_property
    def simplify_preview(self) -> "SimplifyResult | None":
        """A dry run of the rewrite engine; ``None`` if it cannot verify."""
        from repro.errors import AnalysisError
        from repro.sem.rewrite import simplify

        try:
            result = simplify(self.sdft, node_budget=self.config.sem_node_budget)
        except AnalysisError:
            return None
        return None if result.budget_hit else result

    # ------------------------------------------------------------------
    # Cutset-count estimate
    # ------------------------------------------------------------------

    def mcs_estimate(self, node: str) -> int:
        """A capped upper bound on the cutsets of the subtree at ``node``.

        Counts AND/OR/ATLEAST combinations of basic events bottom-up
        (OR sums, AND multiplies, ATLEAST runs the subset DP), ignoring
        minimality and shared subtrees — so it over-counts, which is the
        right direction for a "this will be slow" preview.  Saturates at
        ``config.mcs_estimate_cap``.
        """
        return self._mcs_estimates[node]

    @cached_property
    def _mcs_estimates(self) -> dict[str, int]:
        cap = self.config.mcs_estimate_cap
        estimates: dict[str, int] = {name: 1 for name in self.sdft.all_event_names}
        for gate in self.tree.gates_bottom_up():
            counts = [estimates[child] for child in gate.children]
            if gate.gate_type is GateType.OR:
                value = min(sum(counts), cap)
            elif gate.gate_type is GateType.AND:
                value = _saturating_product(counts, cap)
            else:
                assert gate.k is not None
                value = _atleast_count(counts, gate.k, cap)
            estimates[gate.name] = value
        return estimates


def _can_reach_failed(chain: Ctmc) -> bool:
    """Reachability of the failed set from the chain's initial support."""
    if not chain.failed:
        return False
    successors: dict[Hashable, list[Hashable]] = {}
    for source, destination in chain.rates:
        successors.setdefault(source, []).append(destination)
    if isinstance(chain, TriggeredCtmc):
        for source, destination in chain.switch_on.items():
            successors.setdefault(source, []).append(destination)
        for source, destination in chain.switch_off.items():
            successors.setdefault(source, []).append(destination)
    seen: set[Hashable] = set(chain.initial)
    queue: deque[Hashable] = deque(chain.initial)
    while queue:
        state = queue.popleft()
        if state in chain.failed:
            return True
        for successor in successors.get(state, ()):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return False


def _saturating_product(counts: list[int], cap: int) -> int:
    value = 1
    for count in counts:
        value *= count
        if value >= cap:
            return cap
    return value


def _atleast_count(counts: list[int], k: int, cap: int) -> int:
    """Combinations picking >= k children, each child weighted by its count.

    Dynamic programming over ``(children, picked)``; the ``picked >= k``
    overflow is folded into the bucket at ``k`` (further picks multiply
    into it), matching the "at least" semantics.
    """
    buckets = [0] * (k + 1)
    buckets[0] = 1
    for count in counts:
        updated = list(buckets)
        for picked in range(k, -1, -1):
            if buckets[picked] == 0:
                continue
            target = min(picked + 1, k)
            updated[target] = min(updated[target] + buckets[picked] * count, cap)
        buckets = updated
    return min(buckets[k], cap)
