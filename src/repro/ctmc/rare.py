"""Rare-event Monte-Carlo estimation of SD fault-tree failure probabilities.

At PSA probabilities (p <= 1e-6) crude simulation is useless: thousands
of runs observe zero failures and report a degenerate estimate.  This
module implements the two standard remedies for CTMC reachability
(Porotsky, "Rare-Event Estimation for Dynamic Fault Trees"), both on the
shared :class:`~repro.ctmc.simulate.TrajectoryKernel` so they sample
exactly the semantics of Section III-C:

* **Failure-biased importance sampling with forcing** (``engine="is"``):
  every holding time of the local-transition race is *forced* — sampled
  from the exponential conditioned on landing before the horizon — and
  the discrete choice of which transition fires is *biased* towards
  failure-directed moves.  Each distortion multiplies a per-trajectory
  likelihood ratio, so ``mean(W · 1{fail})`` is an unbiased estimator of
  ``Pr[Reach^{<=t}(F)]`` with a valid sample variance (the proposal
  dominates the true law on the failure event; see docs/theory.md).
  Trajectories whose weight decays below a floor (or that exceed the
  step cap) are retired *unresolved*: their contribution lies in
  ``[0, W]``, so the retired mass widens only the upper end of the
  reported interval — honest, never silently dropped.

* **Fixed-effort importance splitting** (``engine="splitting"``): a
  sequential-Monte-Carlo estimator over the level function "number of
  failed basic events".  Each stage advances a fixed effort of
  particles (with the forced/biased dynamics above) until they cross
  the next level or the horizon, extracts the stage factor
  ``mean(W · 1{crossed})``, and multinomially resamples the survivors.
  The product of stage factors is unbiased; the whole ladder is
  replicated independently for a valid variance.

An adaptive controller (``engine="auto"``) picks the estimator from a
crude pilot batch — common events stay on cheap crude batches, rare
ones go to importance sampling, and splitting takes over when biasing
alone stalls (zero weighted failures after the stall window).  The
controller iterates in batches until the target relative half-width
``target_rel_error`` is met, the run budget is exhausted, or the
cooperative :class:`~repro.robust.budget.Budget` expires — and always
reports the precision actually achieved, not the one requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.ctmc.simulate import TrajectoryKernel
from repro.errors import NumericalError
from repro.robust import faults

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry, NullMetrics
    from repro.robust.budget import Budget

__all__ = [
    "RareEventConfig",
    "RareEventResult",
    "estimate_failure_probability",
]

#: 95 % normal quantile used for the reported relative half-width.
_Z95 = 1.96

#: Rule-of-three numerator for zero-failure upper bounds.
_RULE_OF_THREE = 3.0

#: Outcome codes of one advanced trajectory.
_SUCCESS, _SURVIVED, _UNRESOLVED = 1, 2, 3


@dataclass(frozen=True)
class RareEventConfig:
    """Knobs of the rare-event controller.

    ``engine`` is ``"auto"`` (pilot-batch selection), ``"crude"``,
    ``"is"`` or ``"splitting"``.  ``target_rel_error`` is the requested
    95 % relative half-width (``1.96·SE/estimate``); ``max_runs`` caps
    the total trajectories across pilot, batches and splitting stages.
    ``bias`` is the probability mass the importance sampler moves onto
    failure-directed transitions when both directions are enabled.
    ``weight_floor`` and ``max_steps`` bound forced trajectories that
    neither fail nor exit (their retired weight is reported as
    unresolved mass, widening the interval's upper end).
    """

    target_rel_error: float = 0.10
    max_runs: int = 20_000
    engine: str = "auto"
    batch_size: int = 1_000
    pilot_runs: int = 256
    pilot_min_failures: int = 16
    bias: float = 0.7
    weight_floor: float = 1e-30
    max_steps: int = 512
    is_stall_batches: int = 2
    splitting_effort: int = 256
    splitting_replications: int = 10

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "crude", "is", "splitting"):
            raise ValueError(
                f"engine must be auto|crude|is|splitting, got {self.engine!r}"
            )
        if not 0.0 < self.target_rel_error:
            raise ValueError(
                f"target_rel_error must be positive, got {self.target_rel_error}"
            )
        if not 0.0 < self.bias < 1.0:
            raise ValueError(f"bias must be in (0, 1), got {self.bias}")
        if self.max_runs < 1:
            raise ValueError(f"max_runs must be >= 1, got {self.max_runs}")


@dataclass(frozen=True)
class RareEventResult:
    """A rare-event estimate with its honest achieved precision.

    ``achieved_rel_error`` is the realised 95 % relative half-width
    (``inf`` when nothing was observed); ``converged`` says whether the
    target was met before the run budget or the cooperative budget ran
    out.  ``unresolved_mass`` is the per-run mean weight of retired
    (floor/step-capped) trajectories — an upper-end widening, never a
    hidden loss.
    """

    estimate: float
    standard_error: float
    n_runs: int
    n_failures: int
    engine: str
    target_rel_error: float
    achieved_rel_error: float
    converged: bool
    unresolved_mass: float = 0.0
    pilot_failures: int = 0

    def interval(self, sigmas: float = 4.0) -> tuple[float, float]:
        """A bracketing interval that is never empty.

        Crude tallies keep the generous ``sigmas · max(SE, 1/n)`` band
        of the ladder's historical Monte-Carlo rung; the weighted
        engines use their own (much tighter, still valid) standard
        error.  Zero observed failures fall back to the rule-of-three
        upper bound; non-finite estimates propagate so the invariant
        guards see them.
        """
        if not math.isfinite(self.estimate):
            return (self.estimate, self.estimate)
        if self.n_failures == 0:
            upper = _RULE_OF_THREE / max(self.n_runs, 1) + self.unresolved_mass
            return (0.0, min(1.0, upper))
        if self.engine == "crude":
            slack = sigmas * max(self.standard_error, 1.0 / self.n_runs)
        else:
            slack = sigmas * self.standard_error
            if slack <= 0.0:
                # A degenerate batch (all weights identical): pad with
                # the scale of one run so the interval has width.
                slack = self.estimate / math.sqrt(self.n_runs)
        lower = max(0.0, self.estimate - slack)
        upper = min(1.0, self.estimate + slack + self.unresolved_mass)
        return (lower, upper)


@dataclass
class _Tally:
    """Streaming first/second moments of per-run contributions."""

    n: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    failures: int = 0
    unresolved: float = 0.0

    def add(self, values: np.ndarray, failures: int, unresolved: float) -> None:
        self.n += int(values.size)
        self.total += float(values.sum())
        self.total_sq += float(np.square(values).sum())
        self.failures += failures
        self.unresolved += unresolved

    @property
    def estimate(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def standard_error(self) -> float:
        if self.n < 2:
            return 0.0
        mean = self.estimate
        variance = max(self.total_sq - self.n * mean * mean, 0.0) / (self.n - 1)
        return math.sqrt(variance / self.n)

    @property
    def rel_error(self) -> float:
        if self.n == 0 or self.estimate <= 0.0 or not math.isfinite(self.estimate):
            return math.inf
        return _Z95 * self.standard_error / self.estimate


class _BiasTables:
    """Per-state failure/repair partitions of the move tables, cached."""

    def __init__(self, kernel: TrajectoryKernel) -> None:
        self.kernel = kernel
        self._cache: dict[int, tuple] = {}

    def get(self, sid: int) -> tuple:
        found = self._cache.get(sid)
        if found is None:
            moves = self.kernel.moves(sid)
            assert moves is not None
            dests, rates, cum, repair = moves
            fail_rates = rates[~repair]
            rep_rates = rates[repair]
            found = (
                dests,
                cum,
                dests[~repair],
                np.cumsum(fail_rates),
                dests[repair],
                np.cumsum(rep_rates),
            )
            self._cache[sid] = found
        return found


def _pick(dests: np.ndarray, cum: np.ndarray, draw: float) -> int:
    """The destination chosen by ``draw`` in ``[0, cum[-1])``."""
    index = int(np.searchsorted(cum, draw * float(cum[-1]), side="right"))
    return int(dests[min(index, len(dests) - 1)])


def _advance_batch(
    kernel: TrajectoryKernel,
    tables: _BiasTables | None,
    sids: np.ndarray,
    clocks: np.ndarray,
    weights: np.ndarray,
    horizon: float,
    rng: np.random.Generator,
    success: Callable[[int], bool],
    config: RareEventConfig,
) -> np.ndarray:
    """Advance every trajectory until success, survival or retirement.

    With ``tables`` set the dynamics are forced (holding times
    conditioned below the horizon) and failure-biased, and ``weights``
    accumulate the likelihood ratio; with ``tables=None`` the dynamics
    are crude and the weights stay untouched.  ``sids``, ``clocks`` and
    ``weights`` are updated in place; the returned array holds one
    outcome code per trajectory.
    """
    n = len(sids)
    outcomes = np.zeros(n, dtype=np.int8)
    for i in range(n):
        if success(int(sids[i])):
            outcomes[i] = _SUCCESS
    active = [i for i in range(n) if outcomes[i] == 0]
    bias = config.bias
    for _step in range(config.max_steps):
        if not active:
            break
        count = len(active)
        lam = np.fromiter(
            (kernel.exit_rate(int(sids[i])) for i in active),
            dtype=float,
            count=count,
        )
        remaining = horizon - clocks[active]
        u_time = rng.random(count)
        u_choice = rng.random(count)
        u_group = rng.random(count) if tables is not None else None
        still: list[int] = []
        for k, i in enumerate(active):
            rate = float(lam[k])
            left = float(remaining[k])
            if rate <= 0.0 or left <= 0.0:
                outcomes[i] = _SURVIVED
                continue
            sid = int(sids[i])
            if tables is None:
                tau = -math.log(max(float(u_time[k]), 1e-300)) / rate
                if tau > left:
                    outcomes[i] = _SURVIVED
                    continue
                clocks[i] += tau
                moves = kernel.moves(sid)
                assert moves is not None
                sid = _pick(moves[0], moves[2], float(u_choice[k]))
            else:
                forcing = -math.expm1(-rate * left)
                if forcing <= 0.0:
                    outcomes[i] = _SURVIVED
                    continue
                tau = -math.log1p(-float(u_time[k]) * forcing) / rate
                clocks[i] += min(tau, left)
                weights[i] *= forcing
                dests, cum, fail_dests, fail_cum, rep_dests, rep_cum = tables.get(
                    sid
                )
                has_fail = len(fail_dests) > 0
                has_rep = len(rep_dests) > 0
                assert u_group is not None
                if has_fail and has_rep:
                    if float(u_group[k]) < bias:
                        sid = _pick(fail_dests, fail_cum, float(u_choice[k]))
                        weights[i] *= float(fail_cum[-1]) / (bias * rate)
                    else:
                        sid = _pick(rep_dests, rep_cum, float(u_choice[k]))
                        weights[i] *= float(rep_cum[-1]) / ((1.0 - bias) * rate)
                else:
                    # Only one direction enabled: the true race already
                    # points where we want — no distortion, ratio 1.
                    sid = _pick(dests, cum, float(u_choice[k]))
            sids[i] = sid
            if success(sid):
                outcomes[i] = _SUCCESS
            elif weights[i] < config.weight_floor:
                outcomes[i] = _UNRESOLVED
            else:
                still.append(i)
        active = still
    for i in active:  # step cap hit: retire honestly, never guess
        outcomes[i] = _UNRESOLVED
    return outcomes


def _run_batch(
    kernel: TrajectoryKernel,
    tables: _BiasTables | None,
    n: int,
    horizon: float,
    rng: np.random.Generator,
    config: RareEventConfig,
    tally: _Tally,
) -> None:
    """One independent batch from the initial distribution into ``tally``."""
    sids = kernel.sample_initial_ids(n, rng)
    clocks = np.zeros(n)
    weights = np.ones(n)
    outcomes = _advance_batch(
        kernel, tables, sids, clocks, weights, horizon, rng, kernel.fails, config
    )
    values = np.where(outcomes == _SUCCESS, weights, 0.0)
    values = faults.corrupt("rare_event_weights", values)
    unresolved = float(weights[outcomes == _UNRESOLVED].sum())
    tally.add(values, int((outcomes == _SUCCESS).sum()), unresolved)


# ----------------------------------------------------------------------
# Fixed-effort importance splitting (sequential Monte Carlo)
# ----------------------------------------------------------------------


@dataclass
class _Replication:
    estimate: float
    runs: int
    failures: int
    unresolved: float


def _stage_goal(
    kernel: TrajectoryKernel, level: int | None
) -> Callable[[int], bool]:
    """The success predicate of one splitting stage.

    ``None`` is the final stage (the top failure itself); an integer
    level accepts any state with that many failed basic events — or the
    top failure outright, which may arrive before the count does on
    trees with static voting.
    """
    if level is None:
        return kernel.fails

    def goal(sid: int) -> bool:
        return bool(kernel.fails(sid)) or int(kernel.failed_count(sid)) >= level

    return goal


def _splitting_replication(
    kernel: TrajectoryKernel,
    tables: _BiasTables,
    horizon: float,
    rng: np.random.Generator,
    config: RareEventConfig,
    max_level: int,
) -> _Replication:
    """One independent fixed-effort pass up the level ladder.

    Stage ``k`` advances the particle population until it reaches
    level ``k`` (``failed_count >= k``) or fails the top outright; the
    stage factor is the weighted crossing fraction and survivors are
    multinomially resampled to fixed effort.  A final stage demands the
    top failure itself.  ``E[product of factors] = p`` stage by stage
    (tower property over the resampled populations).
    """
    effort = config.splitting_effort
    sids = kernel.sample_initial_ids(effort, rng)
    clocks = np.zeros(effort)
    done = np.array([kernel.fails(int(s)) for s in sids])
    product = 1.0
    runs = 0
    failures = int(done.sum())
    unresolved_total = 0.0
    # Integer levels 1..max, then the final top-failure-only stage.
    levels: list[int | None] = [*range(1, max_level + 1), None]
    for level in levels:
        open_idx = np.flatnonzero(~done)
        weights = np.ones(effort)
        crossed = done.copy()
        if len(open_idx):
            runs += len(open_idx)
            sub_sids = sids[open_idx].copy()
            sub_clocks = clocks[open_idx].copy()
            sub_weights = np.ones(len(open_idx))
            outcomes = _advance_batch(
                kernel,
                tables,
                sub_sids,
                sub_clocks,
                sub_weights,
                horizon,
                rng,
                _stage_goal(kernel, level),
                config,
            )
            sids[open_idx] = sub_sids
            clocks[open_idx] = sub_clocks
            weights[open_idx] = sub_weights
            crossed[open_idx] = outcomes == _SUCCESS
            unresolved_total += (
                product
                * float(sub_weights[outcomes == _UNRESOLVED].sum())
                / effort
            )
            newly_done = open_idx[
                (outcomes == _SUCCESS)
                & np.array([kernel.fails(int(s)) for s in sub_sids])
            ]
            done[newly_done] = True
            failures += len(newly_done)
        values = np.where(crossed, weights, 0.0)
        factor = float(values.sum()) / effort
        if factor <= 0.0:
            return _Replication(0.0, runs, failures, unresolved_total)
        product *= factor
        # Multinomial resampling to fixed effort; extracted factor keeps
        # the product unbiased with reset weights.
        picks = rng.choice(effort, size=effort, p=values / values.sum())
        sids = sids[picks].copy()
        clocks = clocks[picks].copy()
        done = done[picks].copy()
    return _Replication(product, runs, failures, unresolved_total)


def _run_splitting(
    kernel: TrajectoryKernel,
    tables: _BiasTables,
    horizon: float,
    rng: np.random.Generator,
    config: RareEventConfig,
    budget: "Budget | None",
    runs_used: int,
) -> tuple[list[_Replication], int]:
    """Independent splitting replications under the run and wall budgets."""
    max_level = len(kernel.semantics.order)
    replications: list[_Replication] = []
    for _ in range(config.splitting_replications):
        if budget is not None and budget.expired():
            break
        if runs_used >= config.max_runs and replications:
            break
        replication = _splitting_replication(
            kernel, tables, horizon, rng, config, max_level
        )
        runs_used += replication.runs
        replications.append(replication)
    return replications, runs_used


# ----------------------------------------------------------------------
# The adaptive controller
# ----------------------------------------------------------------------


@dataclass
class _Metered:
    """The optional metrics sink, null-safe."""

    registry: "MetricsRegistry | NullMetrics | None" = None

    def count(self, name: str, n: float = 1) -> None:
        if self.registry is not None:
            self.registry.count(name, n)

    def observe(self, name: str, value: float) -> None:
        if self.registry is not None and math.isfinite(value):
            self.registry.observe(name, value)


def estimate_failure_probability(
    sdft: object,
    horizon: float,
    config: RareEventConfig | None = None,
    seed: int | None = None,
    budget: "Budget | None" = None,
    metrics: "MetricsRegistry | NullMetrics | None" = None,
) -> RareEventResult:
    """Estimate ``Pr[Reach^{<=t}(F)]``, adaptively handling rare events.

    Deterministic in ``seed``: the same seed yields bit-identical
    results regardless of how the caller parallelised *other* work.
    Stops at ``config.target_rel_error``, at ``config.max_runs``, or
    when ``budget`` expires — whichever comes first — and reports the
    precision actually achieved in the result.  Raises
    :class:`~repro.errors.NumericalError` only when the model cannot be
    simulated at all.
    """
    if horizon < 0.0:
        raise NumericalError(f"horizon must be non-negative, got {horizon}")
    cfg = config if config is not None else RareEventConfig()
    rng = np.random.default_rng(seed)
    kernel = TrajectoryKernel(sdft)
    meter = _Metered(metrics)
    engine = cfg.engine
    tally = _Tally()
    pilot_failures = 0

    # Pilot: a crude batch decides whether the event is rare at all.
    if engine == "auto":
        pilot = _Tally()
        _run_batch(kernel, None, cfg.pilot_runs, horizon, rng, cfg, pilot)
        meter.count("mc.pilot_runs", cfg.pilot_runs)
        pilot_failures = pilot.failures
        if pilot.failures >= cfg.pilot_min_failures:
            engine = "crude"
            tally = pilot  # the pilot sample is part of the crude stream
        else:
            engine = "is"

    if engine in ("crude", "is"):
        tables = _BiasTables(kernel) if engine == "is" else None
        stalled = 0
        while tally.n < cfg.max_runs:
            if budget is not None and budget.expired():
                break
            if tally.rel_error <= cfg.target_rel_error:
                break
            batch = min(cfg.batch_size, cfg.max_runs - tally.n)
            _run_batch(kernel, tables, batch, horizon, rng, cfg, tally)
            meter.count("mc.batches")
            if engine == "is" and cfg.engine == "auto":
                stalled = stalled + 1 if tally.failures == 0 else 0
                if stalled >= cfg.is_stall_batches:
                    engine = "splitting"  # biasing alone stalls: split
                    break

    if engine == "splitting":
        tables = _BiasTables(kernel)
        replications, runs_used = _run_splitting(
            kernel, tables, horizon, rng, cfg, budget, tally.n
        )
        if replications:
            estimates = np.array([r.estimate for r in replications])
            tally = _Tally()
            tally.add(
                faults.corrupt("rare_event_weights", estimates),
                sum(r.failures for r in replications),
                float(np.mean([r.unresolved for r in replications]))
                * len(replications),
            )
            meter.count("mc.splitting_replications", len(replications))
        runs = runs_used
    else:
        runs = tally.n

    estimate = faults.corrupt("rare_event_estimate", tally.estimate)
    achieved = tally.rel_error
    unresolved = tally.unresolved / tally.n if tally.n else 0.0
    meter.count("mc.runs", runs)
    meter.count(f"mc.engine.{engine}")
    meter.observe("mc.achieved_rel_error", achieved)
    return RareEventResult(
        estimate=estimate,
        standard_error=tally.standard_error,
        n_runs=runs,
        n_failures=tally.failures,
        engine=engine,
        target_rel_error=cfg.target_rel_error,
        achieved_rel_error=achieved,
        converged=achieved <= cfg.target_rel_error,
        unresolved_mass=unresolved,
        pilot_failures=pilot_failures,
    )
