"""Transient and first-passage analysis of CTMCs.

The work-horse of the dynamic quantification: given a chain and a time
horizon ``t``, compute the transient distribution and the time-bounded
reachability probability ``Pr[Reach^{<=t}(F)]`` (paper, Section III-C2).

Two backends:

* ``"uniformization"`` (default) — the standard randomisation method,
  also used by PRISM.  The generator is scaled into a DTMC and the
  transient distribution is a Poisson mixture of its powers; the Poisson
  series is truncated adaptively so the result carries an explicit error
  bound.  Works with sparse matrices and scales to large chains.
* ``"expm"`` — dense matrix exponential via :func:`scipy.linalg.expm`,
  exact up to floating point; used as an oracle for the uniformization
  implementation and for very stiff small chains.

Reachability reduces to transient analysis by making the target states
absorbing (:meth:`repro.ctmc.chain.Ctmc.with_absorbing`).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import linalg, sparse
from scipy.special import gammaln

from repro.ctmc.chain import Ctmc
from repro.errors import NumericalError
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "transient_distribution",
    "reach_probability",
    "failure_probability",
    "occupancy_integrals",
    "steady_state",
]

#: Default truncation error for the uniformization series.
DEFAULT_EPSILON = 1e-12

#: Series length guard: horizons needing more terms indicate a mis-scaled model.
_MAX_TERMS = 4_000_000

#: Always-on output guard: tolerated drift of probability mass (the
#: solver's own truncation error compounds over the series, so this is
#: looser than the truncation epsilon).
_MASS_TOLERANCE = 1e-6


def _reject_nonfinite_rates(chain: Ctmc, what: str) -> None:
    """Fail fast on inf/NaN rates instead of solving with garbage.

    The :class:`Ctmc` constructor rejects *negative* rates but lets
    non-finite ones through (``NaN < 0`` is false), and a single inf
    poisons the uniformization constant ``q`` silently.  Raising
    :class:`~repro.errors.NumericalError` here routes the failure into
    the degradation ladder like any other solver breakdown.
    """
    for (source, destination), rate in chain.rates.items():
        if not math.isfinite(rate):
            raise NumericalError(
                f"{what}: non-finite rate {rate!r} on transition "
                f"{source!r} -> {destination!r}"
            )


def _checked_distribution(distribution: np.ndarray, what: str) -> np.ndarray:
    """Assert a solver output is a probability distribution.

    Entrywise finite and non-negative, total mass ``1 ± tol`` — the
    always-on counterpart of the opt-in verify layer
    (:mod:`repro.robust.verify`), raising
    :class:`~repro.errors.NumericalError` so existing recovery paths
    apply.  Vectorised: costs two passes over a dense vector.
    """
    if not np.isfinite(distribution).all():
        raise NumericalError(f"{what} contains non-finite entries")
    if float(distribution.min(initial=0.0)) < -_MASS_TOLERANCE:
        raise NumericalError(
            f"{what} contains negative entries "
            f"(min {float(distribution.min()):.3e})"
        )
    total = float(distribution.sum())
    if abs(total - 1.0) > _MASS_TOLERANCE:
        raise NumericalError(
            f"{what} does not conserve probability mass: sums to {total!r} "
            f"(drift {total - 1.0:.3e})"
        )
    return distribution


def transient_distribution(
    chain: Ctmc,
    horizon: float,
    method: str = "uniformization",
    epsilon: float = DEFAULT_EPSILON,
    budget=None,
    metrics=None,
) -> np.ndarray:
    """Distribution over states at time ``horizon``.

    Returns a dense vector indexed like ``chain.states``.  ``epsilon``
    bounds the truncation error of the uniformization series in total
    variation (ignored by the ``expm`` backend).  ``budget`` is an
    optional :class:`repro.robust.budget.Budget` whose wall-clock
    deadline is polled cooperatively between series terms.  ``metrics``
    is an optional :class:`repro.obs.metrics.MetricsRegistry` that
    receives the series-length histogram and early-exit counter (one
    registry call per solve — never inside the series loop).
    """
    if horizon < 0.0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    nu = chain.initial_vector()
    if horizon == 0.0 or not chain.rates:
        return nu
    _reject_nonfinite_rates(chain, "transient solve")
    what = f"transient distribution ({chain.n_states} states, t={horizon:g})"
    if method == "uniformization":
        return _checked_distribution(
            _uniformization(chain, horizon, epsilon, budget, metrics), what
        )
    if method == "expm":
        generator = chain.generator_matrix().toarray()
        return _checked_distribution(nu @ linalg.expm(generator * horizon), what)
    raise ValueError(f"unknown transient method {method!r}")


def reach_probability(
    chain: Ctmc,
    horizon: float,
    targets=None,
    method: str = "uniformization",
    epsilon: float = DEFAULT_EPSILON,
    budget=None,
    metrics=None,
) -> float:
    """``Pr[Reach^{<=t}(targets)]`` — visit a target before the horizon.

    ``targets`` defaults to the chain's failed states.  The computation
    makes the targets absorbing and reads off their transient mass.
    The transient vector is indexed through the *absorbed* chain's own
    index: today :meth:`~repro.ctmc.chain.Ctmc.with_absorbing`
    preserves state order, but reading the absorbed distribution
    through the original chain's index would silently misattribute
    probability mass the day that ever changes.
    """
    target_set = frozenset(targets) if targets is not None else chain.failed
    if not target_set:
        return 0.0
    absorbed = chain.with_absorbing(target_set)
    distribution = transient_distribution(
        absorbed, horizon, method, epsilon, budget, metrics
    )
    indices = [absorbed.index[s] for s in target_set]
    return float(min(1.0, distribution[indices].sum()))


def failure_probability(
    chain: Ctmc,
    horizon: float,
    method: str = "uniformization",
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Probability of visiting a failed state within the horizon.

    The quantity the paper calls ``Pr[Reach^{<=t}(F)]``; alias of
    :func:`reach_probability` with the chain's own failed set.
    """
    return reach_probability(chain, horizon, None, method, epsilon)


def occupancy_integrals(
    chain: Ctmc, horizon: float, epsilon: float = 1e-10
) -> np.ndarray:
    """Expected time spent in each state within ``[0, horizon]``.

    The vector ``∫_0^t pi_u du`` by the uniformization identity

    ``∫_0^t pi_u du = (1/q) * sum_k pi_k * Pr[Poisson(q t) > k]``

    with the DTMC iterates ``pi_k``.  The entries sum to ``horizon``.
    Building block for downtime analysis and for flux attribution
    (which transition absorbed the probability mass).
    """
    if horizon < 0.0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    n = chain.n_states
    if horizon == 0.0:
        return np.zeros(n)
    _reject_nonfinite_rates(chain, "occupancy solve")
    rate_matrix = chain.rate_matrix()
    exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
    q = float(exit_rates.max())
    if q <= 0.0:
        return chain.initial_vector() * horizon
    q *= 1.02
    qt = q * horizon
    dtmc = (
        rate_matrix / q
        + sparse.eye(n, format="csr")
        - sparse.diags(exit_rates / q)
    ).tocsr()
    pi = chain.initial_vector()
    total = np.zeros(n)
    cdf = 0.0
    k = 0
    log_qt = math.log(qt)
    while True:
        log_pmf = -qt + k * log_qt - float(gammaln(k + 1))
        pmf = math.exp(log_pmf)
        survival = max(0.0, 1.0 - cdf - pmf)  # Pr[Poisson > k]
        total += pi * survival
        cdf += pmf
        if cdf >= 1.0 - epsilon and survival < epsilon:
            break
        k += 1
        if k > _MAX_TERMS:
            raise NumericalError(
                f"occupancy series needs more than {_MAX_TERMS} terms "
                f"(chain of {n} states, horizon {horizon:g}, "
                f"q*t = {qt:.3g}); rescale the model"
            )
        pi = pi @ dtmc
    occupancy = total / q
    # Same always-on guard as the transient output, rescaled: the
    # occupancy entries are times, their mass is the horizon itself.
    if not np.isfinite(occupancy).all():
        raise NumericalError(
            f"occupancy vector contains non-finite entries "
            f"(chain of {n} states, horizon {horizon:g})"
        )
    mass = float(occupancy.sum())
    if (
        float(occupancy.min(initial=0.0)) < -_MASS_TOLERANCE * horizon
        or abs(mass - horizon) > _MASS_TOLERANCE * max(1.0, horizon)
    ):
        raise NumericalError(
            f"occupancy vector does not conserve time mass: sums to "
            f"{mass!r} over horizon {horizon:g}"
        )
    return occupancy


def steady_state(chain: Ctmc) -> np.ndarray:
    """Stationary distribution of an irreducible chain.

    Solves ``pi Q = 0`` with the normalisation ``sum(pi) = 1`` by a dense
    least-squares system.  Raises :class:`~repro.errors.NumericalError`
    if the chain has no unique stationary distribution (the residual
    betrays reducibility).  Used for long-run availability analyses.
    """
    n = chain.n_states
    generator = chain.generator_matrix().toarray()
    # Append the normalisation as an extra equation.
    system = np.vstack([generator.T, np.ones((1, n))])
    rhs = np.zeros(n + 1)
    rhs[-1] = 1.0
    solution, residual, rank, _ = np.linalg.lstsq(system, rhs, rcond=None)
    if rank < n:
        raise NumericalError(
            f"chain of {n} states is reducible: no unique stationary "
            f"distribution (rank {rank} < {n})"
        )
    pi = np.clip(solution, 0.0, None)
    total = pi.sum()
    if total <= 0.0:
        raise NumericalError(
            f"stationary solve produced a zero vector (chain of {n} states)"
        )
    return pi / total


# ----------------------------------------------------------------------
# Uniformization
# ----------------------------------------------------------------------


def _uniformization(
    chain: Ctmc, horizon: float, epsilon: float, budget=None, metrics=None
) -> np.ndarray:
    """Transient distribution by randomisation with adaptive truncation.

    With uniformization rate ``q >= max exit rate``, the DTMC
    ``P = I + Q/q`` satisfies ``pi_t = sum_k Poisson(k; q t) nu P^k``.
    The series is cut off once the accumulated Poisson weight exceeds
    ``1 - epsilon``; the remaining mass bounds the error in total
    variation.  Poisson weights use a log-space recurrence, so large
    ``q t`` does not underflow.  A ``budget`` deadline is polled every
    few hundred terms, so a stiff solve yields control promptly.
    """
    # Check upfront too: short series never reach the in-loop poll, and
    # an already-expired budget should not start new solves at all.
    if budget is not None:
        budget.check_deadline("transient")
    metrics = metrics if metrics is not None else NULL_METRICS
    early_exit = False
    rate_matrix = chain.rate_matrix()
    exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
    q = float(exit_rates.max())
    if q <= 0.0:
        return chain.initial_vector()
    # A tiny inflation of q is conventional: it keeps the diagonal of P
    # strictly positive, which makes the DTMC aperiodic.
    q *= 1.02
    qt = q * horizon

    n = chain.n_states
    # The CSR conversion and diagonal fix happen once, before the
    # series loop — every iteration is then a single sparse mat-vec.
    dtmc = (rate_matrix / q + sparse.eye(n, format="csr")).tocsr()
    dtmc = _strip_diagonal_deficit(dtmc, exit_rates / q)

    # Early-exit support: states with no outgoing rate are fixed points
    # of the DTMC, so once (almost) all probability mass sits on them
    # the iterates have converged and the remaining Poisson tail can be
    # added analytically.  This is exactly the reachability shape — the
    # targets are made absorbing — where long horizons otherwise burn
    # thousands of no-op series terms.
    mobile = exit_rates > 0.0
    watch_absorption = bool(mobile.any()) and not bool(mobile.all())

    log_qt = math.log(qt)
    pi = chain.initial_vector()
    result = np.zeros(n)
    accumulated = 0.0
    k = 0
    while True:
        log_weight = -qt + k * log_qt - float(gammaln(k + 1))
        weight = math.exp(log_weight)
        result += weight * pi
        accumulated += weight
        if accumulated >= 1.0 - epsilon:
            break
        if watch_absorption and float(pi[mobile].sum()) <= epsilon:
            # Mass still able to move is below the truncation tolerance:
            # all future iterates equal pi within epsilon (mobile mass is
            # non-increasing under an absorbing DTMC), so the rest of the
            # series contributes (1 - accumulated) * pi up to epsilon.
            result += (1.0 - accumulated) * pi
            accumulated = 1.0
            early_exit = True
            break
        k += 1
        if k > _MAX_TERMS:
            raise NumericalError(
                f"uniformization needs more than {_MAX_TERMS} terms "
                f"(chain of {n} states, horizon {horizon:g}, "
                f"q*t = {qt:.3g}); rescale the model or use method='expm'"
            )
        if budget is not None and not (k & 255):
            budget.check_deadline("transient")
        pi = pi @ dtmc
    # One registry call per solve, after the series loop: the traced
    # quantities stay deterministic and the loop itself stays untouched.
    metrics.observe("transient.series_terms", k + 1)
    if early_exit:
        metrics.count("transient.early_exit")
    # Renormalise by the accumulated weight: distributes the truncated
    # tail proportionally, keeping the result a distribution.
    return result / accumulated


def _strip_diagonal_deficit(dtmc: sparse.csr_matrix, scaled_exit: np.ndarray):
    """Fix the DTMC diagonal so each row sums to exactly one.

    ``I + Q/q`` already does this analytically; the explicit correction
    guards against the tiny drift of floating-point summation, which
    would otherwise compound over thousands of powers.
    """
    dtmc = dtmc.tolil()
    row_sums = np.asarray(dtmc.sum(axis=1)).ravel()
    for i, total in enumerate(row_sums):
        deficit = 1.0 - total
        if deficit != 0.0:
            dtmc[i, i] = dtmc[i, i] + deficit
    return dtmc.tocsr()
