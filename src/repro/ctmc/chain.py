"""Continuous-time Markov chains over finite, labelled state spaces.

A CTMC is specified by an initial distribution, a rate matrix and a set
of failed states (paper, Section III-A).  States are arbitrary hashable
labels — tuples like ``("on", 2)`` for phase models, or product tuples
for the semantics of whole SD fault trees — and are mapped to dense
indices internally.

The class is immutable after construction; analyses live in
:mod:`repro.ctmc.transient`.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.errors import InvalidProbabilityError, InvalidRateError, ModelError

__all__ = ["Ctmc"]

State = Hashable


class Ctmc:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    states:
        All states, in a fixed order (determines internal indices).
    initial:
        Mapping from state to initial probability; omitted states get
        probability zero.  Must sum to one (within ``1e-9``).
    rates:
        Mapping ``(source, destination) -> rate`` with positive rates;
        self-loops are meaningless in a CTMC and rejected.
    failed:
        The failed states ``F``.
    """

    def __init__(
        self,
        states: Iterable[State],
        initial: Mapping[State, float],
        rates: Mapping[tuple[State, State], float],
        failed: Iterable[State],
    ) -> None:
        self.states: tuple[State, ...] = tuple(states)
        if len(set(self.states)) != len(self.states):
            raise ModelError("duplicate states in CTMC")
        self.index: dict[State, int] = {s: i for i, s in enumerate(self.states)}
        if not self.states:
            raise ModelError("CTMC needs at least one state")

        for state, probability in initial.items():
            if state not in self.index:
                raise ModelError(f"initial distribution mentions unknown state {state!r}")
            if probability < 0.0:
                raise InvalidProbabilityError(
                    f"negative initial probability for state {state!r}"
                )
        total = float(sum(initial.values()))
        if abs(total - 1.0) > 1e-9:
            raise InvalidProbabilityError(
                f"initial distribution sums to {total}, expected 1"
            )
        self.initial: dict[State, float] = {
            s: float(p) for s, p in initial.items() if p > 0.0
        }

        self.rates: dict[tuple[State, State], float] = {}
        for (source, destination), rate in rates.items():
            if source not in self.index or destination not in self.index:
                raise ModelError(
                    f"rate references unknown state: {source!r} -> {destination!r}"
                )
            if source == destination:
                raise InvalidRateError(f"self-loop rate on state {source!r}")
            if rate < 0.0:
                raise InvalidRateError(
                    f"negative rate {rate} on {source!r} -> {destination!r}"
                )
            if rate > 0.0:
                self.rates[(source, destination)] = float(rate)

        self.failed: frozenset[State] = frozenset(failed)
        for state in self.failed:
            if state not in self.index:
                raise ModelError(f"failed set mentions unknown state {state!r}")

    # ------------------------------------------------------------------
    # Size and views
    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        """Number of positive-rate transitions."""
        return len(self.rates)

    def exit_rate(self, state: State) -> float:
        """Total outgoing rate of ``state``."""
        return sum(r for (s, _), r in self.rates.items() if s == state)

    def successors(self, state: State) -> list[tuple[State, float]]:
        """Outgoing transitions of ``state`` as ``(destination, rate)``."""
        return [
            (destination, rate)
            for (source, destination), rate in self.rates.items()
            if source == state
        ]

    def __repr__(self) -> str:
        return (
            f"Ctmc({self.n_states} states, {self.n_transitions} transitions, "
            f"{len(self.failed)} failed)"
        )

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """A content-based digest identifying the labelled chain.

        Two chains built independently from the same states, rates,
        initial distribution and failed set — and, for triggered chains,
        the same on/off structure — share the fingerprint; any
        analysis-relevant difference changes it.  This is what
        quantification caches and the dedup layer key on: unlike object
        identity it survives pickling across processes and recognises
        equal-but-distinct chain objects.

        The digest is cached on the instance (the chain is immutable
        after construction).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        digest = hashlib.sha256(
            "\n".join(self._fingerprint_parts()).encode()
        ).hexdigest()
        self.__dict__["_fingerprint"] = digest
        return digest

    def _fingerprint_parts(self) -> list[str]:
        """Canonical lines the fingerprint digests; subclasses extend.

        State labels enter via ``repr`` and every collection is sorted,
        so the digest is independent of construction order.  Floats use
        ``repr`` too, which round-trips exactly in Python 3.
        """
        return [
            type(self).__name__,
            "states:" + "|".join(sorted(repr(s) for s in self.states)),
            "initial:"
            + "|".join(
                sorted(f"{s!r}={p!r}" for s, p in self.initial.items())
            ),
            "rates:"
            + "|".join(
                sorted(
                    f"{s!r}>{d!r}={r!r}" for (s, d), r in self.rates.items()
                )
            ),
            "failed:" + "|".join(sorted(repr(s) for s in self.failed)),
        ]

    # ------------------------------------------------------------------
    # Matrix forms
    # ------------------------------------------------------------------

    def initial_vector(self) -> np.ndarray:
        """Initial distribution as a dense row vector."""
        nu = np.zeros(self.n_states)
        for state, probability in self.initial.items():
            nu[self.index[state]] = probability
        return nu

    def failed_mask(self) -> np.ndarray:
        """Boolean vector marking the failed states."""
        mask = np.zeros(self.n_states, dtype=bool)
        for state in self.failed:
            mask[self.index[state]] = True
        return mask

    def rate_matrix(self) -> sparse.csr_matrix:
        """The rate matrix ``R`` (no diagonal) as a sparse CSR matrix."""
        if not self.rates:
            return sparse.csr_matrix((self.n_states, self.n_states))
        rows, cols, values = [], [], []
        for (source, destination), rate in self.rates.items():
            rows.append(self.index[source])
            cols.append(self.index[destination])
            values.append(rate)
        return sparse.csr_matrix(
            (values, (rows, cols)), shape=(self.n_states, self.n_states)
        )

    def generator_matrix(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q = R - diag(exit rates)``."""
        rate_matrix = self.rate_matrix().tolil()
        exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
        for i, rate in enumerate(exit_rates):
            rate_matrix[i, i] = -rate
        return rate_matrix.tocsr()

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------

    def with_absorbing(self, absorbing: Iterable[State]) -> "Ctmc":
        """Copy of this chain with all transitions out of ``absorbing`` removed.

        The standard reduction of time-bounded reachability to transient
        analysis: make the targets absorbing, then the probability mass
        sitting on them at time ``t`` equals ``Pr[Reach^{<=t}]``.
        """
        absorbing_set = frozenset(absorbing)
        for state in absorbing_set:
            if state not in self.index:
                raise ModelError(f"unknown state {state!r}")
        rates = {
            (source, destination): rate
            for (source, destination), rate in self.rates.items()
            if source not in absorbing_set
        }
        return Ctmc(self.states, self.initial, rates, self.failed)

    def with_initial(self, initial: Mapping[State, float]) -> "Ctmc":
        """Copy of this chain with a different initial distribution."""
        return Ctmc(self.states, initial, self.rates, self.failed)

    def relabel(self, mapping: Mapping[State, State]) -> "Ctmc":
        """Copy with states renamed through ``mapping`` (must be injective)."""
        new_names = [mapping.get(s, s) for s in self.states]
        if len(set(new_names)) != len(new_names):
            raise ModelError("relabelling is not injective")
        translate = dict(zip(self.states, new_names))
        return Ctmc(
            new_names,
            {translate[s]: p for s, p in self.initial.items()},
            {
                (translate[s], translate[d]): r
                for (s, d), r in self.rates.items()
            },
            [translate[s] for s in self.failed],
        )
