"""Triggered continuous-time Markov chains (paper, Section III-A).

A triggered CTMC partitions its states into *off* states (the equipment
is switched off) and *on* states, with two total switching functions
``on: S_off -> S_on`` and ``off: S_on -> S_off``.  The invariants:

* the initial distribution supports only off states (triggered equipment
  starts switched off);
* failed states are on states (``F ⊆ S_on``) — switched-off equipment is
  never counted as failed.

Switching transitions are *not* rates: they fire instantaneously when
the triggering gate of the event changes status (the update semantics of
Section III-C lives in :mod:`repro.ctmc.product`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.ctmc.chain import Ctmc
from repro.errors import ModelError, TriggerError

__all__ = ["TriggeredCtmc"]

State = Hashable


class TriggeredCtmc(Ctmc):
    """A CTMC with on/off structure for trigger semantics.

    Parameters
    ----------
    states, initial, rates, failed:
        As for :class:`~repro.ctmc.chain.Ctmc`.
    on_states:
        The subset ``S_on``; the rest is ``S_off``.
    switch_on:
        Total map ``S_off -> S_on`` applied when the triggering gate fails.
    switch_off:
        Total map ``S_on -> S_off`` applied when the triggering gate recovers.
    """

    def __init__(
        self,
        states: Iterable[State],
        initial: Mapping[State, float],
        rates: Mapping[tuple[State, State], float],
        failed: Iterable[State],
        on_states: Iterable[State],
        switch_on: Mapping[State, State],
        switch_off: Mapping[State, State],
    ) -> None:
        super().__init__(states, initial, rates, failed)
        self.on_states: frozenset[State] = frozenset(on_states)
        for state in self.on_states:
            if state not in self.index:
                raise ModelError(f"on_states mentions unknown state {state!r}")
        self.off_states: frozenset[State] = frozenset(self.states) - self.on_states
        self.switch_on: dict[State, State] = dict(switch_on)
        self.switch_off: dict[State, State] = dict(switch_off)
        self._check_invariants()

    def _check_invariants(self) -> None:
        if not self.failed <= self.on_states:
            raise TriggerError(
                "failed states must be on-states (F ⊆ S_on): switched-off "
                "equipment cannot be failed"
            )
        for state in self.initial:
            if state in self.on_states:
                raise TriggerError(
                    f"initial state {state!r} is an on-state; triggered "
                    f"equipment must start switched off"
                )
        if set(self.switch_on) != set(self.off_states):
            raise TriggerError("switch_on must be total on the off-states")
        if set(self.switch_off) != set(self.on_states):
            raise TriggerError("switch_off must be total on the on-states")
        for source, destination in self.switch_on.items():
            if destination not in self.on_states:
                raise TriggerError(
                    f"switch_on({source!r}) = {destination!r} is not an on-state"
                )
        for source, destination in self.switch_off.items():
            if destination not in self.off_states:
                raise TriggerError(
                    f"switch_off({source!r}) = {destination!r} is not an off-state"
                )

    def is_on(self, state: State) -> bool:
        """Whether ``state`` belongs to ``S_on``."""
        return state in self.on_states

    def apply_trigger(self, state: State, active: bool) -> State:
        """The state after forcing the trigger status ``active``.

        An on-state with ``active=True`` (or an off-state with
        ``active=False``) is already consistent and returned unchanged.
        """
        if active and state in self.off_states:
            return self.switch_on[state]
        if not active and state in self.on_states:
            return self.switch_off[state]
        return state

    def untriggered_view(self) -> Ctmc:
        """The chain "as if triggered at time 0 and never untriggered".

        The initial distribution is pushed through ``switch_on`` and the
        on/off structure is dropped.  This is exactly the worst-case
        shape used for ``p(a)`` of dynamic basic events in the static
        translation (paper, Section V-B2).

        The view is cached: repeated calls return the same object, so
        quantification caches keyed on chain identity keep working.
        """
        cached = getattr(self, "_untriggered_cache", None)
        if cached is not None:
            return cached
        shifted: dict[State, float] = {}
        for state, probability in self.initial.items():
            target = self.switch_on[state]
            shifted[target] = shifted.get(target, 0.0) + probability
        view = Ctmc(self.states, shifted, self.rates, self.failed)
        self._untriggered_cache = view
        return view

    def _fingerprint_parts(self) -> list[str]:
        parts = super()._fingerprint_parts()
        parts.append(
            "on:" + "|".join(sorted(repr(s) for s in self.on_states))
        )
        parts.append(
            "switch_on:"
            + "|".join(
                sorted(f"{s!r}>{d!r}" for s, d in self.switch_on.items())
            )
        )
        parts.append(
            "switch_off:"
            + "|".join(
                sorted(f"{s!r}>{d!r}" for s, d in self.switch_off.items())
            )
        )
        return parts

    def __repr__(self) -> str:
        return (
            f"TriggeredCtmc({self.n_states} states, "
            f"{len(self.on_states)} on, {len(self.off_states)} off, "
            f"{len(self.failed)} failed)"
        )
