"""Builders for the standard failure models used throughout the paper.

Every dynamic basic event in the experiments is one of a small family of
chains; these constructors build them with consistent state labels:

* phase states are ``("on", i)`` / ``("off", i)`` with ``i = 0..k``
  (phase ``k`` is the failed phase);
* simple two-state chains use phases ``0`` (ok) and ``1`` (failed).

The Erlang family follows Section VI-A exactly: a ``k``-phase failure
with per-phase rate ``k·λ`` (preserving the mean time to failure ``1/λ``),
repair jumping from the failed phase back to phase 0, passive (off)
failure rates reduced by ``passive_factor`` and no repair while off
("nobody knows it is failed").
"""

from __future__ import annotations

from repro.ctmc.chain import Ctmc
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import InvalidRateError, ModelError

__all__ = [
    "exponential_failure",
    "repairable",
    "erlang_failure",
    "static_chain",
    "triggered_repairable",
    "triggered_erlang",
]

#: Paper Section VI-A: "failure rates in passive states ... 100 times lower".
PAPER_PASSIVE_FACTOR = 0.01


def _check_rate(name: str, value: float, allow_zero: bool = False) -> None:
    if value < 0.0 or (value == 0.0 and not allow_zero):
        raise InvalidRateError(f"{name} must be positive, got {value}")


def exponential_failure(failure_rate: float) -> Ctmc:
    """Non-repairable exponential failure: ``ok --λ--> fail``."""
    _check_rate("failure_rate", failure_rate)
    return Ctmc(
        states=[("on", 0), ("on", 1)],
        initial={("on", 0): 1.0},
        rates={(("on", 0), ("on", 1)): failure_rate},
        failed=[("on", 1)],
    )


def repairable(failure_rate: float, repair_rate: float) -> Ctmc:
    """Repairable exponential failure: ``ok --λ--> fail --μ--> ok``.

    This is the first pump of the paper's Example 2 (λ = 0.001, μ = 0.05).
    """
    _check_rate("failure_rate", failure_rate)
    _check_rate("repair_rate", repair_rate)
    return Ctmc(
        states=[("on", 0), ("on", 1)],
        initial={("on", 0): 1.0},
        rates={
            (("on", 0), ("on", 1)): failure_rate,
            (("on", 1), ("on", 0)): repair_rate,
        },
        failed=[("on", 1)],
    )


def erlang_failure(
    phases: int, failure_rate: float, repair_rate: float | None = None
) -> Ctmc:
    """Erlang-``k`` failure with mean time to failure ``1/failure_rate``.

    The chain moves through phases ``0 .. k`` with per-phase rate
    ``k·failure_rate`` and is failed in phase ``k`` (Section VI-A).  With
    a ``repair_rate``, the failed phase jumps straight back to phase 0
    ("repair brings the equipment into the same state as being new").
    ``phases=1`` degenerates to the exponential models above.
    """
    if phases < 1:
        raise ModelError(f"need at least one phase, got {phases}")
    _check_rate("failure_rate", failure_rate)
    states = [("on", i) for i in range(phases + 1)]
    rates: dict[tuple, float] = {}
    per_phase = phases * failure_rate
    for i in range(phases):
        rates[(("on", i), ("on", i + 1))] = per_phase
    if repair_rate is not None:
        _check_rate("repair_rate", repair_rate)
        rates[(("on", phases), ("on", 0))] = repair_rate
    return Ctmc(states, {("on", 0): 1.0}, rates, [("on", phases)])


def static_chain(probability: float) -> Ctmc:
    """A static basic event as a frozen CTMC (paper, Section III-C).

    Two states, no transitions; failure is decided by the initial coin
    flip with probability ``probability``.
    """
    return Ctmc(
        states=["ok", "fail"],
        initial={"ok": 1.0 - probability, "fail": probability},
        rates={},
        failed=["fail"],
    )


def triggered_repairable(
    failure_rate: float,
    repair_rate: float,
    passive_failure_rate: float = 0.0,
    repair_while_off: bool = True,
) -> TriggeredCtmc:
    """The spare pump of the paper's Example 2.

    Off states ``("off", 0)``/``("off", 1)``, on states ``("on", 0)``/
    ``("on", 1)``; failure rate applies while on (and optionally a
    reduced ``passive_failure_rate`` while off), repair applies while on
    and — matching Example 2's "a failed pump is being repaired even if
    it is not required at the moment" — also while off unless
    ``repair_while_off`` is disabled.
    """
    _check_rate("failure_rate", failure_rate)
    _check_rate("repair_rate", repair_rate)
    _check_rate("passive_failure_rate", passive_failure_rate, allow_zero=True)
    states = [("off", 0), ("off", 1), ("on", 0), ("on", 1)]
    rates: dict[tuple, float] = {
        (("on", 0), ("on", 1)): failure_rate,
        (("on", 1), ("on", 0)): repair_rate,
    }
    if passive_failure_rate > 0.0:
        rates[(("off", 0), ("off", 1))] = passive_failure_rate
    if repair_while_off:
        rates[(("off", 1), ("off", 0))] = repair_rate
    return TriggeredCtmc(
        states=states,
        initial={("off", 0): 1.0},
        rates=rates,
        failed=[("on", 1)],
        on_states=[("on", 0), ("on", 1)],
        switch_on={("off", 0): ("on", 0), ("off", 1): ("on", 1)},
        switch_off={("on", 0): ("off", 0), ("on", 1): ("off", 1)},
    )


def triggered_erlang(
    phases: int,
    failure_rate: float,
    repair_rate: float,
    passive_factor: float = PAPER_PASSIVE_FACTOR,
) -> TriggeredCtmc:
    """The ``k``-phase triggered model of Section VI-A.

    * active phases ``("on", 0..k)`` advance with rate ``k·λ``;
    * passive phases ``("off", 0..k)`` advance with rate
      ``k·λ·passive_factor`` (the paper uses factor ``1/100``);
    * repair only from the *active* failed phase back to active phase 0
      ("the equipment cannot be repaired before it gets triggered");
      a ``repair_rate`` of zero models a non-repairable component;
    * switching maps phase ``i`` across on/off without losing progress.
    """
    if phases < 1:
        raise ModelError(f"need at least one phase, got {phases}")
    _check_rate("failure_rate", failure_rate)
    _check_rate("repair_rate", repair_rate, allow_zero=True)
    if passive_factor < 0.0:
        raise InvalidRateError(f"passive_factor must be >= 0, got {passive_factor}")
    states = [("off", i) for i in range(phases + 1)]
    states += [("on", i) for i in range(phases + 1)]
    rates: dict[tuple, float] = {}
    active_rate = phases * failure_rate
    passive_rate = active_rate * passive_factor
    for i in range(phases):
        rates[(("on", i), ("on", i + 1))] = active_rate
        if passive_rate > 0.0:
            rates[(("off", i), ("off", i + 1))] = passive_rate
    if repair_rate > 0.0:
        rates[(("on", phases), ("on", 0))] = repair_rate
    return TriggeredCtmc(
        states=states,
        initial={("off", 0): 1.0},
        rates=rates,
        failed=[("on", phases)],
        on_states=[("on", i) for i in range(phases + 1)],
        switch_on={("off", i): ("on", i) for i in range(phases + 1)},
        switch_off={("on", i): ("off", i) for i in range(phases + 1)},
    )
