"""Long-run and first-passage analytics of CTMCs.

Companions to the transient solver that reliability practice asks for
beyond ``Pr[Reach^{<=t}(F)]``:

* :func:`mean_time_to_failure` — the expected first-passage time into
  the failed set (the MTTF a repairable-system datasheet quotes);
* :func:`expected_downtime` — the expected total time spent in failed
  states within a mission window (the unavailability integral);
* :func:`eventual_failure_probability` — the probability of *ever*
  reaching the failed set (less than one when repair paths can escape
  to absorbing healthy states).

All three reduce to linear systems or uniformization-style series on
the (sparse) generator.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg
from scipy.special import gammaln

from repro.ctmc.chain import Ctmc
from repro.errors import NumericalError

__all__ = [
    "mean_time_to_failure",
    "expected_downtime",
    "eventual_failure_probability",
]


def mean_time_to_failure(chain: Ctmc) -> float:
    """Expected time until the first visit to a failed state.

    Solves ``Q_TT m = -1`` over the transient (non-failed) states; the
    MTTF is the initial-distribution average of ``m``.  Infinite when
    some initially-reachable state cannot reach the failed set (the
    linear system is singular there); this is reported as ``math.inf``.
    """
    if not chain.failed:
        return math.inf
    transient = [s for s in chain.states if s not in chain.failed]
    if not transient:
        return 0.0
    index = {s: i for i, s in enumerate(transient)}
    n = len(transient)
    rows, cols, values = [], [], []
    exit_rates = np.zeros(n)
    for (source, destination), rate in chain.rates.items():
        if source in chain.failed:
            continue
        i = index[source]
        exit_rates[i] += rate
        if destination not in chain.failed:
            rows.append(i)
            cols.append(index[destination])
            values.append(rate)
    generator = sparse.csr_matrix((values, (rows, cols)), shape=(n, n))
    generator = generator - sparse.diags(exit_rates)
    rhs = -np.ones(n)
    try:
        with warnings.catch_warnings():
            # A singular system means some state never reaches failure;
            # that is a legitimate "MTTF is infinite" answer, not noise.
            warnings.simplefilter("ignore", sparse_linalg.MatrixRankWarning)
            solution = sparse_linalg.spsolve(generator.tocsc(), rhs)
    except Exception as error:  # pragma: no cover - spsolve rarely raises
        raise NumericalError(f"MTTF system is singular: {error}") from None
    if not np.all(np.isfinite(solution)) or np.any(solution < -1e-9):
        return math.inf
    total = 0.0
    for state, probability in chain.initial.items():
        if state in chain.failed:
            continue
        total += probability * solution[index[state]]
    return float(total)


def expected_downtime(
    chain: Ctmc, horizon: float, epsilon: float = 1e-10
) -> float:
    """Expected total time spent in failed states within ``[0, horizon]``.

    The unavailability integral ``∫_0^t Pr[failed at u] du``, computed
    with the uniformization identity

    ``∫_0^t pi_u du = (1/q) * sum_k pi_k * Pr[Poisson(q t) > k]``

    where ``pi_k`` are the DTMC iterates.  Unlike reachability this
    keeps repairs visible: a failed-and-repaired component contributes
    only its actual downtime.
    """
    if horizon < 0.0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if horizon == 0.0 or not chain.failed:
        return 0.0
    rate_matrix = chain.rate_matrix()
    exit_rates = np.asarray(rate_matrix.sum(axis=1)).ravel()
    q = float(exit_rates.max())
    if q <= 0.0:
        # Frozen chain: the initial failed mass persists.
        failed_mass = sum(
            p for s, p in chain.initial.items() if s in chain.failed
        )
        return failed_mass * horizon
    q *= 1.02
    qt = q * horizon
    n = chain.n_states
    # P = I + Q/q with Q = R - diag(exit rates).
    dtmc = (
        rate_matrix / q
        + sparse.eye(n, format="csr")
        - sparse.diags(exit_rates / q)
    ).tocsr()
    failed_mask = chain.failed_mask()

    # Survival function of Poisson(qt) via the complement of the CDF,
    # accumulated alongside the iteration.
    pi = chain.initial_vector()
    total = 0.0
    cdf = 0.0
    k = 0
    log_qt = math.log(qt)
    while True:
        log_pmf = -qt + k * log_qt - float(gammaln(k + 1))
        pmf = math.exp(log_pmf)
        survival = max(0.0, 1.0 - cdf - pmf)  # Pr[Poisson > k]
        total += float(pi[failed_mask].sum()) * survival
        cdf += pmf
        if cdf >= 1.0 - epsilon and survival < epsilon:
            break
        k += 1
        if k > 4_000_000:
            raise NumericalError(
                f"downtime series needs too many terms (q*t = {qt:.3g})"
            )
        pi = pi @ dtmc
    return total / q


def eventual_failure_probability(chain: Ctmc) -> float:
    """Probability of ever visiting a failed state (horizon infinity).

    Computed on the embedded jump chain: absorption probabilities into
    the failed set, solving ``(I - P_TT) h = P_TF 1``.  States with no
    outgoing transitions count as absorbing-healthy.  Equals one for
    irreducible chains with a reachable failed set.
    """
    if not chain.failed:
        return 0.0
    transient = [s for s in chain.states if s not in chain.failed]
    if not transient:
        return 1.0
    index = {s: i for i, s in enumerate(transient)}
    n = len(transient)
    matrix = np.zeros((n, n))
    to_failed = np.zeros(n)
    for state in transient:
        i = index[state]
        successors = chain.successors(state)
        total_rate = sum(rate for _, rate in successors)
        if total_rate <= 0.0:
            continue  # absorbing healthy state: never fails
        for destination, rate in successors:
            probability = rate / total_rate
            if destination in chain.failed:
                to_failed[i] += probability
            else:
                matrix[i, index[destination]] += probability
    try:
        hitting = np.linalg.solve(np.eye(n) - matrix, to_failed)
    except np.linalg.LinAlgError as error:
        raise NumericalError(f"hitting system is singular: {error}") from None
    hitting = np.clip(hitting, 0.0, 1.0)
    total = 0.0
    for state, probability in chain.initial.items():
        if state in chain.failed:
            total += probability
        else:
            total += probability * hitting[index[state]]
    return float(min(1.0, total))
