"""Exact lumping (ordinary lumpability) of CTMCs.

The BDMP tool chain the paper compares against leans on "massive
state-space reduction" of the Markov chains it builds; the per-cutset
chains of the SD analysis have the same exploitable structure —
symmetric redundant components induce symmetric product states.  This
module implements the classical *ordinary lumping*: the coarsest
partition of the state space, refining an initial partition, such that
all states of a block have identical total rates into every other
block.  The quotient chain is an exact aggregate — transient analysis
on it gives the same block probabilities for every initial distribution
— at a fraction of the states.

The refinement loop is the textbook signature-splitting algorithm:
quadratic in the worst case, linear-ish in practice for the chain sizes
per-cutset analysis produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.ctmc.chain import Ctmc

__all__ = ["LumpedChain", "lump"]

State = Hashable


@dataclass(frozen=True)
class LumpedChain:
    """A quotient chain plus the block structure that produced it.

    ``chain`` is the lumped CTMC whose states are block indices;
    ``blocks`` lists the member states of each block; ``block_of`` maps
    every original state to its block index.  The failed states of the
    quotient are exactly the blocks of original failed states.
    """

    chain: Ctmc
    blocks: tuple[frozenset[State], ...]
    block_of: dict[State, int]

    @property
    def reduction_factor(self) -> float:
        """Original states per lumped state (1.0 = no reduction)."""
        original = sum(len(block) for block in self.blocks)
        return original / len(self.blocks)


def lump(
    chain: Ctmc, initial_partition: Iterable[frozenset[State]] | None = None
) -> LumpedChain:
    """Compute the coarsest ordinary lumping refining the given partition.

    The default initial partition separates failed from non-failed
    states — the minimum needed so failure probabilities survive the
    aggregation.  Pass a finer ``initial_partition`` to additionally
    preserve other state properties; it must cover all states exactly
    once.

    The lumped chain's initial distribution accumulates the original
    one per block, which is sound because ordinary lumpability makes
    the aggregated process Markov for *every* initial distribution.
    """
    states = list(chain.states)
    if initial_partition is None:
        failed = frozenset(chain.failed)
        working = frozenset(states) - failed
        partition = [block for block in (working, failed) if block]
    else:
        partition = [frozenset(block) for block in initial_partition]
        covered = [s for block in partition for s in block]
        if sorted(map(str, covered)) != sorted(map(str, states)):
            raise ValueError("initial partition must cover every state exactly once")
        for block in partition:
            kinds = {s in chain.failed for s in block}
            if len(kinds) > 1:
                raise ValueError(
                    "initial partition mixes failed and non-failed states"
                )

    # Outgoing adjacency once, as plain dicts.
    outgoing: dict[State, dict[State, float]] = {s: {} for s in states}
    for (source, destination), rate in chain.rates.items():
        outgoing[source][destination] = rate

    block_of: dict[State, int] = {}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = index

    # Signature refinement to a fixpoint.
    changed = True
    while changed:
        changed = False
        next_partition: list[frozenset[State]] = []
        for block in partition:
            if len(block) == 1:
                next_partition.append(block)
                continue
            signatures: dict[tuple, list[State]] = {}
            for state in block:
                totals: dict[int, float] = {}
                for destination, rate in outgoing[state].items():
                    target = block_of[destination]
                    totals[target] = totals.get(target, 0.0) + rate
                # Exclude the state's own block: internal moves are
                # invisible in the quotient.  (Round to kill float dust.)
                signature = tuple(
                    sorted(
                        (target, round(total, 12))
                        for target, total in totals.items()
                        if target != block_of[state]
                    )
                )
                signatures.setdefault(signature, []).append(state)
            if len(signatures) == 1:
                next_partition.append(block)
                continue
            changed = True
            for members in signatures.values():
                next_partition.append(frozenset(members))
        if changed:
            partition = next_partition
            block_of = {}
            for index, block in enumerate(partition):
                for state in block:
                    block_of[state] = index

    # Build the quotient chain.
    blocks = tuple(partition)
    lumped_initial: dict[int, float] = {}
    for state, probability in chain.initial.items():
        index = block_of[state]
        lumped_initial[index] = lumped_initial.get(index, 0.0) + probability
    lumped_rates: dict[tuple[int, int], float] = {}
    for index, block in enumerate(blocks):
        representative = next(iter(block))
        totals: dict[int, float] = {}
        for destination, rate in outgoing[representative].items():
            target = block_of[destination]
            if target != index:
                totals[target] = totals.get(target, 0.0) + rate
        for target, total in totals.items():
            lumped_rates[(index, target)] = total
    lumped_failed = [
        index for index, block in enumerate(blocks) if block <= chain.failed
    ]
    quotient = Ctmc(range(len(blocks)), lumped_initial, lumped_rates, lumped_failed)
    return LumpedChain(quotient, blocks, block_of)
