"""Continuous-time Markov chains: models, builders, transient analysis.

The dynamic substrate of the SD fault-tree analysis: plain and triggered
CTMCs (paper, Section III-A), the standard failure-model builders of the
experiments, and transient/first-passage solvers.

The exact product-chain semantics and the Monte-Carlo simulator live in
:mod:`repro.ctmc.product` and :mod:`repro.ctmc.simulate`; import those
submodules directly (they depend on :mod:`repro.core.sdft`, and keeping
them out of this namespace avoids an import cycle at package load).
"""

from repro.ctmc.analysis import (
    eventual_failure_probability,
    expected_downtime,
    mean_time_to_failure,
)
from repro.ctmc.builders import (
    erlang_failure,
    exponential_failure,
    repairable,
    static_chain,
    triggered_erlang,
    triggered_repairable,
)
from repro.ctmc.chain import Ctmc
from repro.ctmc.lumping import LumpedChain, lump
from repro.ctmc.phase_type import PhaseFit, fit_failure_distribution
from repro.ctmc.transient import (
    failure_probability,
    occupancy_integrals,
    reach_probability,
    steady_state,
    transient_distribution,
)
from repro.ctmc.triggered import TriggeredCtmc

__all__ = [
    "Ctmc",
    "LumpedChain",
    "PhaseFit",
    "TriggeredCtmc",
    "erlang_failure",
    "eventual_failure_probability",
    "expected_downtime",
    "exponential_failure",
    "failure_probability",
    "fit_failure_distribution",
    "lump",
    "mean_time_to_failure",
    "occupancy_integrals",
    "reach_probability",
    "repairable",
    "static_chain",
    "steady_state",
    "transient_distribution",
    "triggered_erlang",
    "triggered_repairable",
]
