"""The product Markov chain ``C_FT`` of an SD fault tree (Section III-C).

Each product state records the local state of every basic event.  The
chain evolves by single-event transitions (parallel interleaving of the
per-event chains); after every evolution the state is *updated* — every
triggered event whose triggering-gate status disagrees with its on/off
mode is switched — until a consistent state is reached.  Acyclicity of
the triggering structure guarantees the update loop terminates.

This is the exact semantics of SD fault trees.  It is exponential in the
number of basic events (the paper's motivation: ``2^2500`` states for a
real PSA model), so it serves as the ground truth for small models and
as the baseline in the decomposition-crossover ablation; the scalable
per-cutset analysis lives in :mod:`repro.core.quantify`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable

from repro.ctmc.chain import Ctmc
from repro.errors import AnalysisError
from repro.ft.tree import GateType

__all__ = ["SdSemantics", "ProductChain", "build_product"]

LocalState = Hashable
ProductState = tuple  # tuple of LocalState, ordered like SdSemantics.order


class SdSemantics:
    """Shared machinery of the exact SD semantics.

    Precomputes, for an SD fault tree, everything needed to evaluate
    gate status and run the trigger-update loop on product states; both
    the explicit product construction and the Monte-Carlo simulator are
    built on it.
    """

    def __init__(self, sdft) -> None:
        self.sdft = sdft
        #: Fixed order of basic events defining product-state tuples.
        self.order: tuple[str, ...] = tuple(sorted(sdft.all_event_names))
        self.position: dict[str, int] = {n: i for i, n in enumerate(self.order)}
        #: Per-event failed local states.
        self.failed_local: dict[str, frozenset] = {}
        for name in self.order:
            if sdft.is_static(name):
                self.failed_local[name] = frozenset(["fail"])
            else:
                self.failed_local[name] = sdft.chain_of(name).failed
        # Gates in bottom-up order with resolved child references.
        structure = sdft.structure
        self._gate_order = [g for g in structure.gates_bottom_up()]
        self._triggered = [
            (name, sdft.trigger_of[name], sdft.chain_of(name))
            for name in sorted(sdft.trigger_of)
        ]

    # ------------------------------------------------------------------
    # Gate evaluation
    # ------------------------------------------------------------------

    def gate_status(self, state: ProductState) -> dict[str, bool]:
        """Failure status of every node under the product state.

        Evaluates the boolean structure over the scenario induced by the
        failed local states, triggers disregarded (Section III-C1).
        """
        status: dict[str, bool] = {}
        for i, name in enumerate(self.order):
            status[name] = state[i] in self.failed_local[name]
        for gate in self._gate_order:
            failed_inputs = sum(status[c] for c in gate.children)
            if gate.gate_type is GateType.AND:
                status[gate.name] = failed_inputs == len(gate.children)
            elif gate.gate_type is GateType.OR:
                status[gate.name] = failed_inputs > 0
            else:
                assert gate.k is not None
                status[gate.name] = failed_inputs >= gate.k
        return status

    def fails_top(self, state: ProductState) -> bool:
        """Whether the product state fails the top gate."""
        return self.gate_status(state)[self.sdft.top]

    # ------------------------------------------------------------------
    # Trigger updates
    # ------------------------------------------------------------------

    def make_consistent(self, state: ProductState) -> ProductState:
        """Apply trigger updates until the state is consistent.

        A state is consistent when every triggered event is on iff its
        triggering gate is failed.  Acyclic triggering bounds the number
        of passes by the number of triggered events.
        """
        current = list(state)
        for _ in range(len(self._triggered) + 1):
            status = self.gate_status(tuple(current))
            changed = False
            for event_name, gate_name, chain in self._triggered:
                i = self.position[event_name]
                updated = chain.apply_trigger(current[i], status[gate_name])
                if updated != current[i]:
                    current[i] = updated
                    changed = True
            if not changed:
                return tuple(current)
        raise AnalysisError(
            "trigger updates did not converge; the triggering structure "
            "should have been rejected as cyclic"
        )

    def is_consistent(self, state: ProductState) -> bool:
        """Whether no trigger update applies to ``state``."""
        return self.make_consistent(state) == state

    # ------------------------------------------------------------------
    # Local moves
    # ------------------------------------------------------------------

    def local_transitions(
        self, state: ProductState
    ) -> list[tuple[str, LocalState, float]]:
        """Enabled evolutions: ``(event name, new local state, rate)``."""
        moves: list[tuple[str, LocalState, float]] = []
        for name in self.sdft.dynamic_events:
            i = self.position[name]
            for destination, rate in self.sdft.chain_of(name).successors(state[i]):
                moves.append((name, destination, rate))
        return moves

    def initial_states(self) -> list[tuple[ProductState, float]]:
        """All consistent initial product states with their probabilities.

        Enumerates the product of the per-event initial supports (static
        events contribute ``ok``/``fail``), pushes each through the
        update loop, and accumulates probability on the resulting
        consistent states (Section III-C1, initial distribution).
        """
        supports: list[list[tuple[LocalState, float]]] = []
        for name in self.order:
            if self.sdft.is_static(name):
                p = self.sdft.static_events[name].probability
                entries = []
                if p < 1.0:
                    entries.append(("ok", 1.0 - p))
                if p > 0.0:
                    entries.append(("fail", p))
                supports.append(entries)
            else:
                chain = self.sdft.chain_of(name)
                supports.append(sorted(chain.initial.items(), key=lambda x: str(x[0])))
        accumulated: dict[ProductState, float] = {}
        for combo in itertools.product(*supports):
            state = tuple(local for local, _ in combo)
            probability = 1.0
            for _, p in combo:
                probability *= p
            consistent = self.make_consistent(state)
            accumulated[consistent] = accumulated.get(consistent, 0.0) + probability
        return sorted(accumulated.items(), key=lambda kv: str(kv[0]))


@dataclass
class ProductChain:
    """The explicit product CTMC plus its bookkeeping.

    ``transition_events`` attributes each aggregated transition rate to
    the basic event whose local move produced it — two different events'
    evolutions can collapse onto the same consistent target state, and
    flux-attribution analyses (which event completed a cut) need the
    split back.
    """

    semantics: SdSemantics
    chain: Ctmc
    transition_events: dict[tuple[ProductState, ProductState], dict[str, float]]

    @property
    def n_states(self) -> int:
        """Number of (reachable, consistent) product states."""
        return self.chain.n_states


def build_product(sdft, max_states: int = 200_000) -> ProductChain:
    """Construct the reachable part of the product chain ``C_FT``.

    Explores consistent states from the initial distribution; every
    evolution is followed by the update loop, and parallel evolutions
    that collapse onto the same consistent target accumulate their
    rates.  Raises :class:`~repro.errors.AnalysisError` when more than
    ``max_states`` states are reached — the exponential wall this
    package exists to avoid.
    """
    semantics = SdSemantics(sdft)
    initial = semantics.initial_states()
    rates: dict[tuple[ProductState, ProductState], float] = {}
    by_event: dict[tuple[ProductState, ProductState], dict[str, float]] = {}
    states: list[ProductState] = []
    seen: set[ProductState] = set()
    frontier = [state for state, _ in initial]
    seen.update(frontier)
    while frontier:
        state = frontier.pop()
        states.append(state)
        if len(states) > max_states:
            raise AnalysisError(
                f"product chain exceeds max_states={max_states}; use the "
                f"per-cutset analysis (repro.core.analyzer) instead"
            )
        for event_name, destination, rate in semantics.local_transitions(state):
            moved = list(state)
            moved[semantics.position[event_name]] = destination
            target = semantics.make_consistent(tuple(moved))
            if target == state:
                continue
            key = (state, target)
            rates[key] = rates.get(key, 0.0) + rate
            split = by_event.setdefault(key, {})
            split[event_name] = split.get(event_name, 0.0) + rate
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    failed = [s for s in states if semantics.fails_top(s)]
    chain = Ctmc(states, dict(initial), rates, failed)
    return ProductChain(semantics, chain, by_event)
