"""Discrete-event Monte-Carlo simulation of SD fault-tree semantics.

An independent implementation of the semantics of Section III-C, used to
cross-validate both the exact product chain and the per-cutset analysis:
instead of enumerating product states it samples trajectories —

1. sample the static events and the dynamic initial states, apply
   trigger updates;
2. repeatedly sample the exponential race among all enabled local
   transitions, advance the clock, apply the move and the trigger
   updates;
3. record whether the top gate failed before the horizon.

The estimator of ``Pr[Reach^{<=t}(F)]`` is the fraction of failing runs,
reported with its standard error and a 95 % confidence interval.

The state bookkeeping lives in :class:`TrajectoryKernel`, a lazily
tabulated view of the consistent product states a batch of trajectories
actually visits.  The crude estimator here and the rare-event engines of
:mod:`repro.ctmc.rare` (failure-biased importance sampling, fixed-effort
splitting) share it, so all of them agree on the semantics — only the
sampling measure differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ctmc.product import SdSemantics

__all__ = [
    "SimulationResult",
    "TrajectoryKernel",
    "simulate_failure_probability",
]

#: Rule-of-three numerator: with zero observed failures in ``n`` runs the
#: one-sided 95 % Clopper–Pearson upper bound is ``-ln(0.05)/n ~= 3/n``.
_RULE_OF_THREE = 3.0


@dataclass(frozen=True)
class SimulationResult:
    """A Monte-Carlo estimate with its sampling uncertainty."""

    estimate: float
    standard_error: float
    n_runs: int
    n_failures: int

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """Normal-approximation 95 % confidence interval, clipped to [0, 1].

        Degenerate tallies never produce an empty interval: with zero
        observed failures the upper end is the rule-of-three bound
        ``3/n`` (the ~95 % Clopper–Pearson upper limit), and with zero
        observed survivals the lower end is its mirror ``1 - 3/n`` —
        the same ``1/n`` scale :meth:`consistent_with` already floors
        its acceptance band with.
        """
        if self.n_runs <= 0:
            return (0.0, 1.0)
        if self.n_failures == 0:
            return (0.0, min(1.0, _RULE_OF_THREE / self.n_runs))
        if self.n_failures == self.n_runs:
            return (max(0.0, 1.0 - _RULE_OF_THREE / self.n_runs), 1.0)
        delta = 1.96 * self.standard_error
        return (max(0.0, self.estimate - delta), min(1.0, self.estimate + delta))

    def consistent_with(self, value: float, sigmas: float = 4.0) -> bool:
        """Whether ``value`` lies within ``sigmas`` standard errors.

        A loose acceptance band used by the cross-validation tests; with
        few failures the normal approximation is rough, so the default
        band is generous.
        """
        slack = sigmas * max(self.standard_error, 1.0 / self.n_runs)
        return abs(value - self.estimate) <= slack


class TrajectoryKernel:
    """Lazily tabulated trajectory kernel over consistent product states.

    Interns every *consistent* product state a trajectory visits to an
    integer id and tabulates, per state, the exit rate and the enabled
    local moves (destination ids, rates, cumulative rates, and whether
    each move leaves a failed local state — a "repair-directed" move,
    the distinction the failure-biasing sampler of
    :mod:`repro.ctmc.rare` needs).  Nothing is enumerated up front:
    unlike :func:`repro.ctmc.product.build_product` the kernel only ever
    pays for states that are actually sampled, which is what makes the
    simulation rungs usable exactly when the product space is too big
    to build.
    """

    def __init__(self, sdft) -> None:
        self.sdft = sdft
        self.semantics = SdSemantics(sdft)
        order = self.semantics.order
        self._static_names = [n for n in order if sdft.is_static(n)]
        self._static_p = np.array(
            [sdft.static_events[n].probability for n in self._static_names]
        )
        self._dynamic_names = [n for n in order if sdft.is_dynamic(n)]
        self._dynamic_initial: list[tuple[list, np.ndarray]] = []
        for name in self._dynamic_names:
            items = sorted(
                sdft.chain_of(name).initial.items(), key=lambda x: str(x[0])
            )
            locals_ = [local for local, _ in items]
            weights = np.array([p for _, p in items], dtype=float)
            self._dynamic_initial.append((locals_, np.cumsum(weights)))
        self._slots = {
            name: self.semantics.position[name]
            for name in self._static_names + self._dynamic_names
        }
        # Interning tables, grown lazily as trajectories discover states.
        self._intern: dict[tuple, int] = {}
        self._states: list[tuple] = []
        self._fails: list[bool] = []
        self._failed_counts: list[int] = []
        self._exit_rates: list[float] = []
        # Per-state move table: (dest ids, rates, cumulative rates,
        # repair-directed flags); None for absorbing states.
        self._moves: list[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ] = []

    # ------------------------------------------------------------------
    # State interning
    # ------------------------------------------------------------------

    def intern(self, raw_state: tuple) -> int:
        """The id of ``make_consistent(raw_state)``, tabulating on first visit."""
        found = self._intern.get(raw_state)
        if found is not None:
            return found
        semantics = self.semantics
        state = semantics.make_consistent(raw_state)
        sid = self._intern.get(state)
        if sid is None:
            sid = len(self._states)
            self._intern[state] = sid
            self._states.append(state)
            self._fails.append(semantics.fails_top(state))
            self._failed_counts.append(
                sum(
                    state[i] in semantics.failed_local[name]
                    for i, name in enumerate(semantics.order)
                )
            )
            self._exit_rates.append(-1.0)  # move table built on demand
            self._moves.append(None)
        if state != raw_state:
            self._intern[raw_state] = sid
        return sid

    def state(self, sid: int) -> tuple:
        """The product-state tuple behind an id."""
        return self._states[sid]

    def fails(self, sid: int) -> bool:
        """Whether the state fails the top gate."""
        return self._fails[sid]

    def failed_count(self, sid: int) -> int:
        """How many basic events are in a failed local state.

        The level function of the importance-splitting engine: failures
        accumulate towards the top event, so the count is a cheap
        monotone proxy for "how close to the top failure" a state is.
        """
        return self._failed_counts[sid]

    # ------------------------------------------------------------------
    # Move tables
    # ------------------------------------------------------------------

    def exit_rate(self, sid: int) -> float:
        """Total rate out of the state (0.0 for absorbing states)."""
        rate = self._exit_rates[sid]
        if rate < 0.0:
            rate = self._build_moves(sid)
        return rate

    def moves(
        self, sid: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """``(dest ids, rates, cumulative rates, repair flags)`` or ``None``.

        ``None`` marks an absorbing state — no enabled moves, or every
        enabled move rated zero (possible in principle after trigger
        updates); the race has no winner and the trajectory just sits
        out the rest of the horizon.
        """
        if self._exit_rates[sid] < 0.0:
            self._build_moves(sid)
        return self._moves[sid]

    def _build_moves(self, sid: int) -> float:
        semantics = self.semantics
        state = self._states[sid]
        raw_moves = semantics.local_transitions(state)
        total = math.fsum(rate for _, _, rate in raw_moves)
        if not raw_moves or total <= 0.0:
            # Absorbing: treat an all-zero race like no race at all
            # instead of dividing by the zero total rate.
            self._exit_rates[sid] = 0.0
            self._moves[sid] = None
            return 0.0
        dests = np.empty(len(raw_moves), dtype=np.int64)
        rates = np.empty(len(raw_moves), dtype=float)
        repair = np.empty(len(raw_moves), dtype=bool)
        for k, (event_name, destination, rate) in enumerate(raw_moves):
            moved = list(state)
            moved[semantics.position[event_name]] = destination
            dests[k] = self.intern(tuple(moved))
            rates[k] = rate
            # A move out of a failed local state undoes failure progress;
            # everything else (first failures, phase advances, switch-ons)
            # is failure-directed for the biasing sampler.
            position = semantics.position[event_name]
            repair[k] = state[position] in semantics.failed_local[event_name]
        self._exit_rates[sid] = total
        self._moves[sid] = (dests, rates, np.cumsum(rates), repair)
        return total

    # ------------------------------------------------------------------
    # Initial sampling
    # ------------------------------------------------------------------

    def sample_initial_ids(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Ids of ``n`` sampled (consistent) initial states.

        Static coin flips and dynamic initial draws are vectorised over
        the batch; the per-trajectory tuple assembly hits the interning
        cache, so repeated draws of the same raw combination cost one
        dict lookup.
        """
        order_len = len(self.semantics.order)
        static_draws = (
            rng.random((n, len(self._static_names))) < self._static_p
            if self._static_names
            else None
        )
        dynamic_draws = (
            rng.random((n, len(self._dynamic_names)))
            if self._dynamic_names
            else None
        )
        ids = np.empty(n, dtype=np.int64)
        template: list = [None] * order_len
        for i in range(n):
            raw = list(template)
            for j, name in enumerate(self._static_names):
                raw[self._slots[name]] = (
                    "fail" if static_draws[i, j] else "ok"  # type: ignore[index]
                )
            for j, name in enumerate(self._dynamic_names):
                locals_, cum = self._dynamic_initial[j]
                if len(locals_) == 1:
                    raw[self._slots[name]] = locals_[0]
                else:
                    pick = int(
                        np.searchsorted(cum, dynamic_draws[i, j] * cum[-1])  # type: ignore[index]
                    )
                    raw[self._slots[name]] = locals_[min(pick, len(locals_) - 1)]
            ids[i] = self.intern(tuple(raw))
        return ids


def simulate_failure_probability(
    sdft,
    horizon: float,
    n_runs: int = 10_000,
    seed: int | None = None,
) -> SimulationResult:
    """Estimate ``Pr[Reach^{<=t}(F)]`` of an SD fault tree by simulation.

    Runs are independent; a run stops at its first top-gate failure (the
    reachability event) or at the horizon.  Time per run is linear in
    the number of transitions that fire, so long horizons with fast
    repair cycles cost more.
    """
    if horizon < 0.0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    rng = np.random.default_rng(seed)
    kernel = TrajectoryKernel(sdft)
    n_failures = 0
    for start in range(0, n_runs, 4096):
        batch = min(4096, n_runs - start)
        sids = kernel.sample_initial_ids(batch, rng)
        for i in range(batch):
            if _run_one(kernel, int(sids[i]), horizon, rng):
                n_failures += 1
    estimate = n_failures / n_runs
    standard_error = math.sqrt(max(estimate * (1.0 - estimate), 0.0) / n_runs)
    return SimulationResult(estimate, standard_error, n_runs, n_failures)


def _run_one(
    kernel: TrajectoryKernel,
    sid: int,
    horizon: float,
    rng: np.random.Generator,
) -> bool:
    """One crude trajectory: did the top fail before the horizon?"""
    if kernel.fails(sid):
        return True
    clock = 0.0
    while True:
        total_rate = kernel.exit_rate(sid)
        if total_rate <= 0.0:
            return False  # absorbing — sits out the rest of the horizon
        clock += rng.exponential(1.0 / total_rate)
        if clock > horizon:
            return False
        moves = kernel.moves(sid)
        assert moves is not None
        dests, _, cum, _ = moves
        choice = rng.random() * total_rate
        pick = int(np.searchsorted(cum, choice, side="right"))
        sid = int(dests[min(pick, len(dests) - 1)])
        if kernel.fails(sid):
            return True
