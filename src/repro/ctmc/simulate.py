"""Discrete-event Monte-Carlo simulation of SD fault-tree semantics.

An independent implementation of the semantics of Section III-C, used to
cross-validate both the exact product chain and the per-cutset analysis:
instead of enumerating product states it samples trajectories —

1. sample the static events and the dynamic initial states, apply
   trigger updates;
2. repeatedly sample the exponential race among all enabled local
   transitions, advance the clock, apply the move and the trigger
   updates;
3. record whether the top gate failed before the horizon.

The estimator of ``Pr[Reach^{<=t}(F)]`` is the fraction of failing runs,
reported with its standard error and a 95 % confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ctmc.product import SdSemantics

__all__ = ["SimulationResult", "simulate_failure_probability"]


@dataclass(frozen=True)
class SimulationResult:
    """A Monte-Carlo estimate with its sampling uncertainty."""

    estimate: float
    standard_error: float
    n_runs: int
    n_failures: int

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """Normal-approximation 95 % confidence interval, clipped to [0, 1]."""
        delta = 1.96 * self.standard_error
        return (max(0.0, self.estimate - delta), min(1.0, self.estimate + delta))

    def consistent_with(self, value: float, sigmas: float = 4.0) -> bool:
        """Whether ``value`` lies within ``sigmas`` standard errors.

        A loose acceptance band used by the cross-validation tests; with
        few failures the normal approximation is rough, so the default
        band is generous.
        """
        slack = sigmas * max(self.standard_error, 1.0 / self.n_runs)
        return abs(value - self.estimate) <= slack


def simulate_failure_probability(
    sdft,
    horizon: float,
    n_runs: int = 10_000,
    seed: int | None = None,
) -> SimulationResult:
    """Estimate ``Pr[Reach^{<=t}(F)]`` of an SD fault tree by simulation.

    Runs are independent; a run stops at its first top-gate failure (the
    reachability event) or at the horizon.  Time per run is linear in
    the number of transitions that fire, so long horizons with fast
    repair cycles cost more.
    """
    if horizon < 0.0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    rng = np.random.default_rng(seed)
    semantics = SdSemantics(sdft)
    order = semantics.order
    n_failures = 0

    static_probabilities = {
        name: sdft.static_events[name].probability
        for name in order
        if sdft.is_static(name)
    }
    dynamic_initial = {}
    for name in order:
        if sdft.is_dynamic(name):
            items = sorted(sdft.chain_of(name).initial.items(), key=lambda x: str(x[0]))
            dynamic_initial[name] = (
                [local for local, _ in items],
                np.array([p for _, p in items]),
            )

    for _ in range(n_runs):
        state = _sample_initial(
            semantics, order, static_probabilities, dynamic_initial, rng
        )
        state = semantics.make_consistent(state)
        if semantics.fails_top(state):
            n_failures += 1
            continue
        clock = 0.0
        while True:
            moves = semantics.local_transitions(state)
            if not moves:
                break
            total_rate = sum(rate for _, _, rate in moves)
            clock += rng.exponential(1.0 / total_rate)
            if clock > horizon:
                break
            choice = rng.random() * total_rate
            running = 0.0
            for event_name, destination, rate in moves:
                running += rate
                if choice < running:
                    moved = list(state)
                    moved[semantics.position[event_name]] = destination
                    state = semantics.make_consistent(tuple(moved))
                    break
            if semantics.fails_top(state):
                n_failures += 1
                break

    estimate = n_failures / n_runs
    standard_error = math.sqrt(max(estimate * (1.0 - estimate), 0.0) / n_runs)
    return SimulationResult(estimate, standard_error, n_runs, n_failures)


def _sample_initial(semantics, order, static_probabilities, dynamic_initial, rng):
    state = []
    for name in order:
        if name in static_probabilities:
            failed = rng.random() < static_probabilities[name]
            state.append("fail" if failed else "ok")
        else:
            locals_, weights = dynamic_initial[name]
            if len(locals_) == 1:
                state.append(locals_[0])
            else:
                state.append(locals_[rng.choice(len(locals_), p=weights)])
    return tuple(state)
