"""Phase-type fitting: build failure chains from observed moments.

Modellers rarely have a Markov chain — they have a mean time to failure
and a spread.  This module fits the two standard acyclic phase-type
shapes by moment matching on ``(mean, cv)`` (coefficient of variation =
standard deviation / mean):

* ``cv = 1`` — exponential (one phase);
* ``cv < 1`` — Erlang-k: ``k = round(1 / cv²)`` phases gives the
  closest Erlang coefficient of variation ``1/sqrt(k)``;
* ``cv > 1`` — a two-branch hyper-exponential ``H2`` with balanced
  means, the textbook closed form matching mean and cv exactly.

The fitted chains slot directly into dynamic basic events; a triggered
variant wraps them with on/off structure like
:func:`repro.ctmc.builders.triggered_erlang` does for Erlangs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ctmc.chain import Ctmc
from repro.errors import ModelError

__all__ = ["PhaseFit", "fit_failure_distribution"]


@dataclass(frozen=True)
class PhaseFit:
    """Result of a phase-type fit.

    ``chain`` is ready to use as a dynamic event's model; ``shape``
    names the family (``"exponential"``, ``"erlang"``,
    ``"hyperexponential"``); ``fitted_cv`` is the coefficient of
    variation the chain actually realises (Erlang fits are the nearest
    lattice point, the others are exact).
    """

    chain: Ctmc
    shape: str
    mean: float
    fitted_cv: float


def fit_failure_distribution(
    mean: float, cv: float = 1.0, max_phases: int = 50
) -> PhaseFit:
    """Fit a failure-time distribution to a mean and coefficient of variation.

    The returned chain starts in its initial phase and is failed in its
    absorbing phase; add a repair transition afterwards if needed (the
    chain's ``rates`` dict is the usual plain mapping).
    """
    if mean <= 0.0:
        raise ModelError(f"mean must be positive, got {mean}")
    if cv <= 0.0:
        raise ModelError(f"cv must be positive, got {cv}")

    if abs(cv - 1.0) < 1e-9:
        rate = 1.0 / mean
        chain = Ctmc(
            [("on", 0), ("on", 1)],
            {("on", 0): 1.0},
            {(("on", 0), ("on", 1)): rate},
            [("on", 1)],
        )
        return PhaseFit(chain, "exponential", mean, 1.0)

    if cv < 1.0:
        phases = max(2, min(max_phases, round(1.0 / (cv * cv))))
        per_phase = phases / mean
        states = [("on", i) for i in range(phases + 1)]
        rates = {
            (("on", i), ("on", i + 1)): per_phase for i in range(phases)
        }
        chain = Ctmc(states, {("on", 0): 1.0}, rates, [("on", phases)])
        return PhaseFit(chain, "erlang", mean, 1.0 / math.sqrt(phases))

    # cv > 1: balanced-means H2.  With branch probabilities p/(1-p) and
    # rates 2p/mean, 2(1-p)/mean, the squared cv is matched by
    # p = (1 + sqrt((c2-1)/(c2+1))) / 2 with c2 = cv^2.
    c2 = cv * cv
    p = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
    rate_fast = 2.0 * p / mean
    rate_slow = 2.0 * (1.0 - p) / mean
    chain = Ctmc(
        [("branch", "fast"), ("branch", "slow"), ("on", "failed")],
        {("branch", "fast"): p, ("branch", "slow"): 1.0 - p},
        {
            (("branch", "fast"), ("on", "failed")): rate_fast,
            (("branch", "slow"), ("on", "failed")): rate_slow,
        },
        [("on", "failed")],
    )
    return PhaseFit(chain, "hyperexponential", mean, cv)
