"""The equivalence-checked model diet: verified semantic rewriting.

Shrinks a fault tree (or the gate structure of an SD fault tree)
without changing what it means.  Five rewrite families run to fixpoint:

* **constant propagation** — static events pinned to probability zero
  or one are folded through the gates (three-valued, so a gate only
  rewrites once its value is decided);
* **degenerate voting** — ``ATLEAST(1 of n)`` becomes OR,
  ``ATLEAST(n of n)`` becomes AND;
* **pass-through flattening** — single-child gates collapse into their
  child, and single-parent same-type children merge into their parent
  (idempotent duplicates are dropped for AND/OR);
* **semantic deduplication and vacuity** — gates denoting the *same
  boolean function* (BDD node identity) merge even when structurally
  different, gates equal to one of their operands collapse onto it, and
  operands whose removal leaves the gate's function BDD-identical
  (absorption, implication by a sibling) are dropped;
* **pruning** — gates and static events no longer reachable from any
  protected root are removed.

Soundness is *checked, not assumed*: at the end of every fixpoint
round, the round's input and output trees are compiled into one shared
BDD manager (constants substituted) and proven equivalent on the top
scope and on every trigger-gate scope, under the node budget.  A round
that cannot be verified (budget) is reverted wholesale; a round that
verifies as different raises :class:`~repro.errors.InvariantViolation`
— that would be an engine bug, and it must be loud.

SD fault trees add protections on top: the top gate and every trigger
source gate survive by name with their exact function (triggers fire on
gate status, so those scopes are semantics, not just structure), and
dynamic basic events are never pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.equiv import compile_into, trees_equivalent, union_variables
from repro.core.sdft import SdFaultTree
from repro.errors import BddBudgetExceeded, InvariantViolation
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["DEFAULT_NODE_BUDGET", "Rewrite", "SimplifyResult", "simplify"]

#: Default BDD node budget per verification/compilation scope; matches
#: the analyzer's ``bdd_node_budget`` default.
DEFAULT_NODE_BUDGET = 200_000

#: Hard ceiling on fixpoint rounds — each round either changes the tree
#: (strictly shrinking gate count or operand count) or ends the loop, so
#: this is a backstop, not a tuning knob.
_MAX_ROUNDS = 50

#: A gate needs at least two operands for per-operand rewrites (dropping
#: one, or deduplicating) to leave a well-formed gate behind.
_MIN_OPERANDS = 2


@dataclass(frozen=True)
class Rewrite:
    """One applied rewrite: what kind, where, and what it did."""

    kind: str
    node: str
    detail: str


@dataclass(frozen=True)
class SimplifyResult:
    """The simplified model plus the audit trail that justifies it."""

    model: FaultTree | SdFaultTree
    rewrites: tuple[Rewrite, ...]
    gates_before: int
    gates_after: int
    events_before: int
    events_after: int
    verified_scopes: int
    rounds: int
    budget_hit: bool

    @property
    def changed(self) -> bool:
        """Whether any rewrite was applied (and survived verification)."""
        return bool(self.rewrites)

    @property
    def removed_gates(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def removed_events(self) -> int:
        return self.events_before - self.events_after

    def counts_by_kind(self) -> dict[str, int]:
        """Rewrite tally per kind, for reports and metrics."""
        counts: dict[str, int] = {}
        for rewrite in self.rewrites:
            counts[rewrite.kind] = counts.get(rewrite.kind, 0) + 1
        return counts


@dataclass
class _State:
    """Mutable working state of one simplification run."""

    top: str
    events: dict[str, BasicEvent]
    gates: dict[str, Gate]
    protected: frozenset[str]
    constants: dict[str, bool]
    node_budget: int | None
    rewrites: list[Rewrite] = field(default_factory=list)
    verified_scopes: int = 0
    budget_hit: bool = False

    def tree(self) -> FaultTree:
        return FaultTree(self.top, self.events.values(), self.gates.values())

    def record(self, kind: str, node: str, detail: str) -> None:
        self.rewrites.append(Rewrite(kind, node, detail))


def simplify(
    model: FaultTree | SdFaultTree,
    *,
    node_budget: int | None = DEFAULT_NODE_BUDGET,
) -> SimplifyResult:
    """Simplify a model; every surviving rewrite is BDD-verified.

    Static trees simplify freely; SD trees keep the top gate, every
    trigger source gate (same name, same function) and every dynamic
    basic event.  The returned model is of the same type as the input.
    On a node-budget overrun during verification the unverifiable round
    is dropped, so the result is always verified — possibly the
    unchanged input (``budget_hit`` tells).
    """
    if isinstance(model, SdFaultTree):
        return _simplify_sdft(model, node_budget)
    state = _initial_state(
        model.top,
        dict(model.events),
        dict(model.gates),
        protected=frozenset((model.top,)),
        constant_candidates=frozenset(model.events),
        node_budget=node_budget,
    )
    rounds = _run(state)
    kept_events = _kept_events(state, protected_events=frozenset())
    simplified = FaultTree(
        state.top, kept_events.values(), state.gates.values(), name=model.name
    )
    return _result(model, simplified, state, len(model.gates), len(model.events), rounds)


def _simplify_sdft(model: SdFaultTree, node_budget: int | None) -> SimplifyResult:
    structure = model.structure
    state = _initial_state(
        structure.top,
        dict(structure.events),
        dict(structure.gates),
        protected=frozenset((structure.top,)) | frozenset(model.triggers),
        constant_candidates=frozenset(model.static_events),
        node_budget=node_budget,
    )
    rounds = _run(state)
    kept_events = _kept_events(state, protected_events=frozenset(model.dynamic_events))
    simplified = SdFaultTree(
        state.top,
        [model.static_events[n] for n in kept_events if n in model.static_events],
        model.dynamic_events.values(),
        state.gates.values(),
        model.triggers,
        name=model.name,
    )
    before_events = len(model.static_events) + len(model.dynamic_events)
    return _result(
        model, simplified, state, len(structure.gates), before_events, rounds
    )


def _initial_state(
    top: str,
    events: dict[str, BasicEvent],
    gates: dict[str, Gate],
    *,
    protected: frozenset[str],
    constant_candidates: frozenset[str],
    node_budget: int | None,
) -> _State:
    constants = {
        name: events[name].probability == 1.0
        for name in constant_candidates
        if events[name].probability in (0.0, 1.0)
    }
    return _State(
        top=top,
        events=events,
        gates=gates,
        protected=protected,
        constants=constants,
        node_budget=node_budget,
    )


def _result(
    original: FaultTree | SdFaultTree,
    simplified: FaultTree | SdFaultTree,
    state: _State,
    gates_before: int,
    events_before: int,
    rounds: int,
) -> SimplifyResult:
    if isinstance(simplified, SdFaultTree):
        events_after = len(simplified.static_events) + len(simplified.dynamic_events)
    else:
        events_after = len(simplified.events)
    if not state.rewrites:
        simplified = original  # bit-identical no-op: hand back the input object
    return SimplifyResult(
        model=simplified,
        rewrites=tuple(state.rewrites),
        gates_before=gates_before,
        gates_after=len(state.gates),
        events_before=events_before,
        events_after=events_after,
        verified_scopes=state.verified_scopes,
        rounds=rounds,
        budget_hit=state.budget_hit,
    )


# ----------------------------------------------------------------------
# The fixpoint loop
# ----------------------------------------------------------------------


def _run(state: _State) -> int:
    """Rewrite to fixpoint; verify (and possibly revert) every round."""
    rounds = 0
    for _ in range(_MAX_ROUNDS):
        before_gates = dict(state.gates)
        before_count = len(state.rewrites)
        _constant_pass(state)
        _degenerate_pass(state)
        _flatten_pass(state)
        _semantic_pass(state)
        _prune_pass(state)
        if len(state.rewrites) == before_count:
            break
        rounds += 1
        if not _verify_round(state, before_gates):
            # Unverifiable round: drop its changes, keep earlier rounds.
            state.gates = before_gates
            del state.rewrites[before_count:]
            state.budget_hit = True
            break
    return rounds


def _verify_round(state: _State, before_gates: dict[str, Gate]) -> bool:
    """Prove the round preserved every protected scope, by shared BDD.

    Returns ``False`` only when the node budget made the proof
    impossible; an outright inequivalence raises — a rewrite that
    changes the model's meaning is an engine bug, never a degradation.
    """
    before = FaultTree(state.top, state.events.values(), before_gates.values())
    after = state.tree()
    scopes = sorted(state.protected & set(state.gates) - {state.top})
    try:
        equivalent = trees_equivalent(
            before,
            after,
            scopes=scopes,
            constants=state.constants,
            node_budget=state.node_budget,
        )
    except BddBudgetExceeded:
        return False
    if not equivalent:
        raise InvariantViolation(
            "semantic rewrite round failed BDD equivalence verification on "
            f"scope set {[state.top, *scopes]}; this is a rewrite-engine bug"
        )
    state.verified_scopes += 1 + len(scopes)
    return True


# ----------------------------------------------------------------------
# Constant propagation
# ----------------------------------------------------------------------


def _constant_pass(state: _State) -> None:
    """Fold constant (probability 0/1) static events through the gates.

    Three-valued bottom-up evaluation decides which nodes are constant;
    non-constant gates then drop their decided operands (neutral ones
    vanish, ATLEAST thresholds shift).  If the top or any protected gate
    is itself constant the model is degenerate — the linter's business,
    not the rewriter's — and the pass backs off entirely, clearing the
    constant substitution so verification stays faithful.
    """
    if not state.constants:
        return
    values = _constant_values(state)
    if any(values.get(name) is not None for name in state.protected):
        state.constants = {}
        return
    for name, gate in list(state.gates.items()):
        if values.get(name) is not None:
            continue
        decided = [c for c in gate.children if values.get(c) is not None]
        if decided:
            state.gates[name] = _drop_decided(state, gate, values, decided)


def _constant_values(state: _State) -> dict[str, bool | None]:
    values: dict[str, bool | None] = {
        name: state.constants.get(name) for name in state.events
    }
    for gate in state.tree().gates_bottom_up():
        values[gate.name] = _gate_value(gate, values)
    return values


def _gate_value(gate: Gate, values: Mapping[str, bool | None]) -> bool | None:
    decided = [values[c] for c in gate.children if values[c] is not None]
    true_count = sum(1 for v in decided if v)
    undecided = len(gate.children) - len(decided)
    if gate.gate_type is GateType.AND:
        if true_count == len(gate.children):
            return True
        return False if len(decided) > true_count else None
    if gate.gate_type is GateType.OR:
        if true_count > 0:
            return True
        return False if undecided == 0 else None
    assert gate.k is not None
    if true_count >= gate.k:
        return True
    if true_count + undecided < gate.k:
        return False
    return None


def _drop_decided(
    state: _State,
    gate: Gate,
    values: Mapping[str, bool | None],
    decided: list[str],
) -> Gate:
    kept = tuple(c for c in gate.children if values.get(c) is None)
    new_k = gate.k
    for child in decided:
        state.record(
            "constant",
            gate.name,
            f"dropped operand {child!r} (constant {values[child]})",
        )
    if gate.gate_type is GateType.ATLEAST:
        assert new_k is not None
        new_k -= sum(1 for child in decided if values[child])
    return replace(gate, children=kept, k=new_k)


# ----------------------------------------------------------------------
# Degenerate voting gates
# ----------------------------------------------------------------------


def _degenerate_pass(state: _State) -> None:
    """``ATLEAST(1 of n)`` is OR; ``ATLEAST(n of n)`` is AND."""
    for name, gate in list(state.gates.items()):
        if gate.gate_type is not GateType.ATLEAST:
            continue
        assert gate.k is not None
        if gate.k == 1:
            state.gates[name] = replace(gate, gate_type=GateType.OR, k=None)
            state.record("degenerate-vote", name, "ATLEAST(1 of n) rewritten to OR")
        elif gate.k == len(gate.children):
            state.gates[name] = replace(gate, gate_type=GateType.AND, k=None)
            state.record("degenerate-vote", name, "ATLEAST(n of n) rewritten to AND")


# ----------------------------------------------------------------------
# Structural flattening
# ----------------------------------------------------------------------


def _flatten_pass(state: _State) -> None:
    """Collapse pass-throughs and merge single-parent same-type children."""
    passthrough = {
        name: gate.children[0]
        for name, gate in state.gates.items()
        if len(gate.children) == 1 and name not in state.protected
    }
    if passthrough:
        for name, child in sorted(passthrough.items()):
            state.record("pass-through", name, f"collapsed into its only child {child!r}")
        _substitute(state, passthrough)
    _merge_same_type_children(state)


def _merge_same_type_children(state: _State) -> None:
    parents = _parent_counts(state.gates)
    for name in sorted(state.gates):
        gate = state.gates[name]
        if gate.gate_type is GateType.ATLEAST:
            continue
        merged = _merged_children(state, gate, parents)
        if merged is not None:
            state.gates[name] = replace(gate, children=merged)


def _merged_children(
    state: _State, gate: Gate, parents: Mapping[str, int]
) -> tuple[str, ...] | None:
    """The gate's child list with inlinable same-type children expanded."""
    changed = False
    flat: list[str] = []
    for child in gate.children:
        inner = state.gates.get(child)
        if (
            inner is not None
            and inner.gate_type is gate.gate_type
            and parents.get(child, 0) == 1
            and child not in state.protected
        ):
            flat.extend(c for c in inner.children if c not in flat)
            changed = True
            state.record(
                "flatten",
                gate.name,
                f"inlined single-parent {gate.gate_type.name} child {child!r}",
            )
        elif child not in flat:
            flat.append(child)
        else:
            changed = True  # idempotent duplicate introduced by an earlier inline
    return tuple(flat) if changed else None


def _parent_counts(gates: Mapping[str, Gate]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for gate in gates.values():
        for child in gate.children:
            counts[child] = counts.get(child, 0) + 1
    return counts


# ----------------------------------------------------------------------
# The BDD pass: semantic dedup, semantic pass-through, vacuous operands
# ----------------------------------------------------------------------


def _semantic_pass(state: _State) -> None:
    """Rewrites only a BDD can justify, each verified at discovery.

    Compiles the current tree once (constants substituted); node
    identity then proves gate-vs-gate and gate-vs-operand equivalences
    in O(1) each.  A budget overrun skips the pass — the structural
    passes keep their wins and the round verification still runs.
    """
    try:
        manager = BddManager(node_budget=state.node_budget)
        tree = state.tree()
        variables = union_variables((tree,), state.constants)
        node_of = compile_into(tree, manager, variables, state.constants)
    except BddBudgetExceeded:
        state.budget_hit = True
        return
    position = {gate.name: index for index, gate in enumerate(tree.gates_bottom_up())}
    substitution = _duplicate_gates(state, node_of, position)
    substitution.update(_semantic_passthrough(state, node_of, substitution))
    if substitution:
        _substitute(state, substitution)
    _drop_vacuous_operands(state, manager, node_of)


def _duplicate_gates(
    state: _State, node_of: Mapping[str, int], position: Mapping[str, int]
) -> dict[str, str]:
    """Map each gate denoting an already-seen function to its canonical twin.

    Every substitution points strictly *downward* in the bottom-up
    topological order.  This is what keeps the rewritten graph a DAG:
    two gates can denote the same function with one an ancestor of a
    parent of the other, and mapping upward would close a cycle through
    that parent.  The canonical twin is the topologically lowest
    protected gate of the group if one exists (protected gates must
    survive by name), else the lowest gate outright; an unprotected
    twin sitting *below* a protected canonical is simply left alone.
    """
    groups: dict[int, list[str]] = {}
    for name in sorted(state.gates):
        root = node_of[name]
        if root in (FALSE, TRUE):
            continue  # constant gates are the constant pass's business
        groups.setdefault(root, []).append(name)
    substitution: dict[str, str] = {}
    for names in groups.values():
        if len(names) < _MIN_OPERANDS:
            continue
        names.sort(key=lambda n: position[n])
        protected = [n for n in names if n in state.protected]
        canonical = protected[0] if protected else names[0]
        for name in names:
            if name == canonical or name in state.protected:
                continue
            if position[canonical] > position[name]:
                continue  # mapping upward could close a cycle
            substitution[name] = canonical
            state.record(
                "duplicate-gate", name, f"same function as {canonical!r}; merged"
            )
    return substitution


def _semantic_passthrough(
    state: _State,
    node_of: Mapping[str, int],
    already: Mapping[str, str],
) -> dict[str, str]:
    """Gates whose function equals one of their operands collapse onto it."""
    substitution: dict[str, str] = {}
    for name in sorted(state.gates):
        if name in state.protected or name in already:
            continue
        gate = state.gates[name]
        for child in gate.children:
            if node_of[name] == node_of[child]:
                substitution[name] = child
                state.record(
                    "pass-through",
                    name,
                    f"function equals operand {child!r}; collapsed",
                )
                break
    return substitution


def _drop_vacuous_operands(
    state: _State, manager: BddManager, node_of: Mapping[str, int]
) -> None:
    """Greedily drop operands that leave the gate's function identical.

    Re-checks against the remaining operand list after each drop, so
    jointly-necessary but individually-vacuous pairs cannot both go.
    """
    for name in sorted(state.gates):
        gate = state.gates[name]
        if node_of[name] in (FALSE, TRUE):
            continue
        kept = list(gate.children)
        for operand in tuple(kept):
            if len(kept) < _MIN_OPERANDS:
                break
            rest = [c for c in kept if c != operand]
            try:
                without = _compose(manager, gate, [node_of[c] for c in rest])
            except BddBudgetExceeded:
                state.budget_hit = True
                return
            if without is not None and without == node_of[name]:
                kept = rest
                state.record(
                    "vacuous-operand",
                    name,
                    f"operand {operand!r} does not change the gate's function",
                )
        if len(kept) != len(gate.children):
            state.gates[name] = replace(gate, children=tuple(kept))


def _compose(manager: BddManager, gate: Gate, children: list[int]) -> int | None:
    if gate.gate_type is GateType.AND:
        return manager.conjoin(children)
    if gate.gate_type is GateType.OR:
        return manager.disjoin(children)
    assert gate.k is not None
    if not 1 <= gate.k <= len(children):
        return None
    return manager.atleast(gate.k, children)


# ----------------------------------------------------------------------
# Substitution and pruning
# ----------------------------------------------------------------------


def _substitute(state: _State, mapping: dict[str, str]) -> None:
    """Rewrite every child reference through ``mapping`` (chains resolved).

    AND/OR parents drop duplicates created by the substitution
    (idempotence).  An ATLEAST parent whose substitution would collide
    two voting inputs keeps its original child list unchanged instead —
    duplicate inputs would change the count semantics, and the
    referenced gates simply stay alive.
    """

    def resolve(name: str) -> str:
        seen = {name}
        while name in mapping:
            name = mapping[name]
            if name in seen:  # defensive: substitution cycles cannot happen
                break
            seen.add(name)
        return name

    for name, gate in list(state.gates.items()):
        targets = [resolve(child) for child in gate.children]
        if gate.gate_type is GateType.ATLEAST:
            if len(set(targets)) < len(targets):
                continue  # collision: keep the original voting inputs
            resolved = targets
        else:
            resolved = []
            for target in targets:
                if target not in resolved:
                    resolved.append(target)
        if tuple(resolved) != gate.children:
            state.gates[name] = replace(gate, children=tuple(resolved))


def _prune_pass(state: _State) -> None:
    """Drop gates unreachable from the top or any protected gate."""
    live: set[str] = set()
    queue = [root for root in state.protected if root in state.gates]
    while queue:
        name = queue.pop()
        if name in live:
            continue
        live.add(name)
        gate = state.gates.get(name)
        if gate is not None:
            queue.extend(gate.children)
    for name in sorted(set(state.gates) - live):
        del state.gates[name]
        state.record("prune", name, "gate no longer reachable from any root")


def _kept_events(state: _State, protected_events: frozenset[str]) -> dict[str, BasicEvent]:
    """Events still referenced by a gate, plus all protected (dynamic) ones."""
    referenced: set[str] = set(protected_events)
    for gate in state.gates.values():
        for child in gate.children:
            if child in state.events:
                referenced.add(child)
    dropped = sorted(set(state.events) - referenced)
    for name in dropped:
        state.record("prune", name, "event no longer referenced by any gate")
    return {name: state.events[name] for name in state.events if name in referenced}
