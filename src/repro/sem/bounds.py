"""Interval abstract interpretation of a fault tree.

One bottom-up sweep assigns every node a sound probability interval
``[lo, hi]`` — a bracket on the top-event probability that costs
microseconds, before MOCUS or the BDD engine run at all.

Two regimes per gate, chosen per gate by a *proof*:

* **Independence (exact endpoints).**  When the children's support sets
  (the basic events below each child) are pairwise disjoint, the
  children are independent random variables — this is exactly the
  independence condition module detection (:mod:`repro.ft.modules`)
  exploits, applied gate-locally.  The gate probability is then a
  monotone function of the child probabilities (product, co-product, or
  the Poisson-binomial tail), so evaluating it at the childrens' lower
  and upper endpoints gives exact interval propagation.

* **Fréchet bounds (any dependence).**  When supports overlap, the
  children are dependent through shared events; the Fréchet–Hoeffding
  inequalities bound the gate for *every* possible joint distribution:
  AND in ``[max(0, Σlo − (n−1)), min(hi)]``, OR in
  ``[max(lo), min(1, Σhi)]``, and ATLEAST(k) via Markov's inequality on
  the failure count, ``P ≤ min(1, Σhi / k)``, with the reversed Markov
  bound ``P ≥ (Σlo − (k−1)) / (n − k + 1)`` below.

Dynamic basic events enter as ``[0, worst_case]`` — they may never be
switched on (lower end), and the untriggered worst-case first-passage
probability dominates them above (Section V-B2 of the paper).  Static
events are degenerate intervals ``[p, p]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple, Sequence

from repro.ft.tree import FaultTree, GateType

__all__ = ["BoundsReport", "Interval", "interval_bounds"]


class Interval(NamedTuple):
    """A closed probability interval ``[lo, hi]``."""

    lo: float
    hi: float

    @property
    def width(self) -> float:
        """``hi - lo``: zero for exactly-known probabilities."""
        return self.hi - self.lo

    def contains(self, value: float, tolerance: float = 1e-12) -> bool:
        """Whether ``value`` lies in the interval, up to ``tolerance``."""
        return self.lo - tolerance <= value <= self.hi + tolerance


@dataclass(frozen=True)
class BoundsReport:
    """Interval bounds for every node of one tree.

    ``independent_gates`` collects the gates whose children were proven
    independent (disjoint supports: exact endpoint propagation);
    ``dependent_gates`` the rest (Fréchet bounds).  ``top`` is the
    bracket on the top-event probability.
    """

    per_node: Mapping[str, Interval]
    top: Interval
    independent_gates: frozenset[str]
    dependent_gates: frozenset[str]

    def of(self, name: str) -> Interval:
        """The interval of a named node."""
        return self.per_node[name]


def interval_bounds(
    tree: FaultTree,
    *,
    dynamic: Iterable[str] = (),
    worst_case: Mapping[str, float] | None = None,
) -> BoundsReport:
    """One bottom-up sweep of sound probability intervals.

    ``dynamic`` names events whose tree probability is a placeholder
    (SD dynamic basic events); they get ``[0, worst_case[name]]``, with
    a missing or unknown worst case widening to ``[0, 1]``.  All other
    events use their static probability exactly.
    """
    dynamic_names = frozenset(dynamic)
    worst = worst_case or {}

    intervals: dict[str, Interval] = {}
    supports: dict[str, frozenset[str]] = {}
    for name in tree.events:
        intervals[name] = _event_interval(tree, name, dynamic_names, worst)
        supports[name] = frozenset((name,))

    independent: set[str] = set()
    dependent: set[str] = set()
    for gate in tree.gates_bottom_up():
        child_intervals = [intervals[child] for child in gate.children]
        child_supports = [supports[child] for child in gate.children]
        supports[gate.name] = frozenset().union(*child_supports)
        if _pairwise_disjoint(child_supports):
            intervals[gate.name] = _combine_independent(gate.gate_type, gate.k, child_intervals)
            independent.add(gate.name)
        else:
            intervals[gate.name] = _combine_frechet(gate.gate_type, gate.k, child_intervals)
            dependent.add(gate.name)

    return BoundsReport(
        per_node=intervals,
        top=intervals[tree.top],
        independent_gates=frozenset(independent),
        dependent_gates=frozenset(dependent),
    )


def _event_interval(
    tree: FaultTree,
    name: str,
    dynamic: frozenset[str],
    worst: Mapping[str, float],
) -> Interval:
    if name in dynamic:
        ceiling = worst.get(name)
        if ceiling is None:
            return Interval(0.0, 1.0)
        return Interval(0.0, _clamp(ceiling))
    probability = tree.events[name].probability
    return Interval(probability, probability)


def _pairwise_disjoint(supports: Sequence[frozenset[str]]) -> bool:
    """Disjointness of all supports — the independence proof.

    Disjoint iff the union's size equals the sum of sizes; one pass, no
    quadratic pair loop.
    """
    total = sum(len(support) for support in supports)
    union: set[str] = set()
    for support in supports:
        union.update(support)
    return len(union) == total


def _combine_independent(
    gate_type: GateType, k: int | None, children: Sequence[Interval]
) -> Interval:
    """Exact endpoint propagation for independent children.

    Product, co-product and the Poisson-binomial tail are all monotone
    increasing in every child probability, so the gate's interval is the
    image of the children's endpoint vectors.
    """
    lows = [child.lo for child in children]
    highs = [child.hi for child in children]
    if gate_type is GateType.AND:
        return Interval(_product(lows), _product(highs))
    if gate_type is GateType.OR:
        return Interval(_coproduct(lows), _coproduct(highs))
    assert k is not None
    return Interval(_atleast_tail(lows, k), _atleast_tail(highs, k))


def _combine_frechet(
    gate_type: GateType, k: int | None, children: Sequence[Interval]
) -> Interval:
    """Fréchet–Hoeffding / Markov bounds, sound under any dependence."""
    lows = [child.lo for child in children]
    highs = [child.hi for child in children]
    n = len(children)
    if gate_type is GateType.AND:
        return Interval(_clamp(sum(lows) - (n - 1)), _clamp(min(highs)))
    if gate_type is GateType.OR:
        return Interval(_clamp(max(lows)), _clamp(sum(highs)))
    assert k is not None
    lower = (sum(lows) - (k - 1)) / (n - k + 1)
    upper = sum(highs) / k
    return Interval(_clamp(lower), _clamp(upper))


def _product(probabilities: Sequence[float]) -> float:
    value = 1.0
    for probability in probabilities:
        value *= probability
    return value


def _coproduct(probabilities: Sequence[float]) -> float:
    survival = 1.0
    for probability in probabilities:
        survival *= 1.0 - probability
    return 1.0 - survival


def _atleast_tail(probabilities: Sequence[float], k: int) -> float:
    """``P(at least k of the independent children fail)``.

    The Poisson-binomial distribution of the failure count, by the
    standard O(n·k)-ish dynamic program over the count.
    """
    counts = [1.0]
    for probability in probabilities:
        extended = [0.0] * (len(counts) + 1)
        for already_failed, mass in enumerate(counts):
            extended[already_failed] += mass * (1.0 - probability)
            extended[already_failed + 1] += mass * probability
        counts = extended
    return _clamp(sum(counts[k:]))


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))
