"""BDD-verified logical diagnostics of a fault tree.

Shape-level rules can tell that a gate is unreachable or an event
improbable; they cannot tell that an operand *contributes nothing* to
its gate, that a gate is a tautology once the constant events are
substituted, or that an event sits in the tree yet outside the support
of the top structure function.  These are properties of the denoted
boolean function, so this pass compiles the whole model into one BDD
(under the usual node budget) and reads them off exactly:

* **constant gates** — gates whose function reduces to TRUE or FALSE
  under the given constant substitution;
* **vacuous operands** — operands whose removal leaves the gate's
  function BDD-identical (subsumed by absorption, implied by a sibling,
  or masked by a constant);
* **dead events** — reachable, non-constant events outside the support
  of the top function: they can never influence the top event;
* **coherence verification** — the compiled top function is checked to
  be monotone via cofactor comparison; any witness variable is reported
  (for AND/OR/ATLEAST trees this is a self-check of the engine, and the
  expected result is "none").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.equiv import compile_into, non_monotone_variables, union_variables
from repro.ft.tree import FaultTree, Gate, GateType

__all__ = ["LogicReport", "VacuousOperand", "logical_diagnostics"]

#: A gate needs at least this many operands before one can be vacuous
#: (removing the only operand would not leave a gate behind).
_MIN_OPERANDS_FOR_VACUITY = 2


@dataclass(frozen=True)
class VacuousOperand:
    """An operand whose removal leaves its gate's function unchanged."""

    gate: str
    operand: str


@dataclass(frozen=True)
class LogicReport:
    """Everything the logical pass proved about one tree.

    ``constant_gates`` maps reachable gates to their constant value
    (``True`` = tautology, ``False`` = contradiction) under the constant
    substitution the pass was given.  ``non_monotone`` names events
    witnessing non-coherence of the top function — empty for any tree
    this package can build, and verified rather than assumed.
    """

    constant_gates: Mapping[str, bool]
    vacuous: tuple[VacuousOperand, ...]
    dead_events: tuple[str, ...]
    non_monotone: tuple[str, ...]
    node_count: int


def logical_diagnostics(
    tree: FaultTree,
    *,
    constants: Mapping[str, bool] | None = None,
    node_budget: int | None = None,
) -> LogicReport:
    """Compile ``tree`` once and extract all logical diagnostics.

    ``constants`` pins events to TRUE/FALSE before compilation (the
    caller decides what counts as constant — for SD trees the dynamic
    placeholders must *not* be pinned).  Raises
    :class:`~repro.errors.BddBudgetExceeded` when compilation overruns
    ``node_budget``; callers that must not fail (the linter) catch it.
    """
    constants = constants or {}
    variables = union_variables((tree,), constants)
    manager = BddManager(node_budget=node_budget)
    node_of = compile_into(tree, manager, variables, constants)
    reachable = tree.reachable_from_top()

    constant_gates = {
        gate: node_of[gate] == TRUE
        for gate in sorted(tree.gates)
        if gate in reachable and node_of[gate] in (FALSE, TRUE)
    }
    vacuous = tuple(_vacuous_operands(tree, manager, node_of, reachable))
    dead_events = tuple(
        _dead_events(tree, manager, node_of, variables, constants, reachable)
    )
    witness_names = {
        name
        for name, index in variables.items()
        if index in non_monotone_variables(manager, node_of[tree.top])
    }
    return LogicReport(
        constant_gates=constant_gates,
        vacuous=vacuous,
        dead_events=dead_events,
        non_monotone=tuple(sorted(witness_names)),
        node_count=manager.count_nodes(node_of[tree.top]),
    )


def _vacuous_operands(
    tree: FaultTree,
    manager: BddManager,
    node_of: Mapping[str, int],
    reachable: frozenset[str],
) -> Iterator[VacuousOperand]:
    """Operands whose removal leaves the gate's function identical.

    For each candidate the gate is re-composed without the operand and
    compared by node id — the comparison *is* the BDD verification.
    Constant-valued gates are skipped (every operand of a dominated gate
    is trivially vacuous; the constant-gate finding covers them).
    """
    for gate in tree.gates_bottom_up():
        if gate.name not in reachable:
            continue
        if node_of[gate.name] in (FALSE, TRUE):
            continue
        if len(gate.children) < _MIN_OPERANDS_FOR_VACUITY:
            continue
        for operand in gate.children:
            rest = [node_of[child] for child in gate.children if child != operand]
            without = _compose(manager, gate, rest)
            if without is not None and without == node_of[gate.name]:
                yield VacuousOperand(gate=gate.name, operand=operand)


def _compose(manager: BddManager, gate: Gate, children: list[int]) -> int | None:
    """The gate's function over a reduced child list; ``None`` if undefined."""
    if gate.gate_type is GateType.AND:
        return manager.conjoin(children)
    if gate.gate_type is GateType.OR:
        return manager.disjoin(children)
    assert gate.k is not None
    if not 1 <= gate.k <= len(children):
        return None
    return manager.atleast(gate.k, children)


def _dead_events(
    tree: FaultTree,
    manager: BddManager,
    node_of: Mapping[str, int],
    variables: Mapping[str, int],
    constants: Mapping[str, bool],
    reachable: frozenset[str],
) -> Iterator[str]:
    """Reachable free events outside the support of the top function."""
    support = manager.support(node_of[tree.top])
    for name in sorted(tree.events):
        if name not in reachable or name in constants:
            continue
        if variables[name] not in support:
            yield name
