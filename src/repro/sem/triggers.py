"""The trigger dependency graph, and order-sensitive trigger races.

:class:`~repro.core.sdft.SdFaultTree` construction already guarantees
the *combined* graph — tree edges plus reversed trigger edges — is
acyclic, which rules out mutual influence between triggers (``g1``
switching an event under ``g2`` *and* vice versa closes a cycle).  What
it cannot rule out is one-directional influence colliding with
simultaneity: two trigger gates that can change status at the same
instant, where one of them switches an event the other one reads.  If
that switch can change the event's failure status *instantaneously*
(its ``switch_on`` maps a reachable off-state straight into a failed
state), the set of events switched at that instant depends on which
trigger the update semantics applies first — an order-sensitive race.

The analysis here is purely structural (graph reachability over chains
and supports; no transient solve), so it is exact about the *existence*
of the hazard and conservative about its probability.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

from repro.core.sdft import SdFaultTree
from repro.ctmc.triggered import TriggeredCtmc

__all__ = ["TriggerRace", "TriggerReport", "analyze_triggers"]


@dataclass(frozen=True)
class TriggerRace:
    """An order-sensitive pair of triggers.

    ``first`` switches ``event``; ``second`` reads it (the event lies in
    ``second``'s support).  ``shared`` holds the support events the two
    gates have in common — the inputs whose change can flip both gates
    in one instant, making the firing order observable.
    """

    first: str
    second: str
    event: str
    shared: tuple[str, ...]

    def describe(self) -> str:
        """One-line human rendering of the race."""
        return (
            f"triggers {self.first!r} and {self.second!r} can fire at the "
            f"same instant (shared support: {', '.join(self.shared)}); "
            f"{self.first!r} switches {self.event!r}, which can fail the "
            f"moment it is switched on and feeds {self.second!r} — the "
            f"events switched at that instant depend on the firing order"
        )


@dataclass(frozen=True)
class TriggerReport:
    """The trigger graph of one SD fault tree.

    ``edges`` is the influence graph: ``g1 -> g2`` when ``g1`` switches
    an event in ``g2``'s support (so ``g2``'s status can hinge on
    ``g1`` having fired).  ``instant_failure_events`` are triggered
    events whose ``switch_on`` maps a reachable off-state directly into
    a failed state — they can fail with zero delay at the triggering
    instant.  ``races`` are the order-sensitive pairs built from both.
    """

    gates: tuple[str, ...]
    edges: Mapping[str, frozenset[str]]
    instant_failure_events: tuple[str, ...]
    races: tuple[TriggerRace, ...]

    @property
    def longest_cascade(self) -> tuple[str, ...]:
        """The longest influence chain in the (acyclic) trigger graph."""
        best: dict[str, tuple[str, ...]] = {}

        def chain_from(gate: str) -> tuple[str, ...]:
            cached = best.get(gate)
            if cached is not None:
                return cached
            tail: tuple[str, ...] = ()
            for successor in sorted(self.edges.get(gate, ())):
                candidate = chain_from(successor)
                if len(candidate) > len(tail):
                    tail = candidate
            best[gate] = (gate,) + tail
            return best[gate]

        longest: tuple[str, ...] = ()
        for gate in self.gates:
            candidate = chain_from(gate)
            if len(candidate) > len(longest):
                longest = candidate
        return longest


def analyze_triggers(sdft: SdFaultTree) -> TriggerReport:
    """Build the trigger graph and detect order-sensitive races."""
    tree = sdft.structure
    gates = tuple(sorted(sdft.triggers))
    supports = {gate: tree.events_under(gate) for gate in gates}

    edges: dict[str, frozenset[str]] = {}
    for source in gates:
        influenced = {
            other
            for other in gates
            if other != source
            and any(event in supports[other] for event in sdft.triggers[source])
        }
        edges[source] = frozenset(influenced)

    instant = tuple(
        event
        for event in sorted(sdft.trigger_of)
        if _fails_on_switch_on(sdft.dynamic_events[event].chain)
    )
    instant_set = frozenset(instant)

    races = tuple(_find_races(sdft, gates, supports, instant_set))
    return TriggerReport(
        gates=gates,
        edges=edges,
        instant_failure_events=instant,
        races=races,
    )


def _find_races(
    sdft: SdFaultTree,
    gates: tuple[str, ...],
    supports: Mapping[str, frozenset[str]],
    instant: frozenset[str],
) -> Iterator[TriggerRace]:
    """Order-sensitive pairs: simultaneity plus instantaneous influence.

    ``first -> second`` through ``event`` races iff the two gates share
    a support event (they can change status in the same update instant)
    and ``event`` — switched by ``first``, read by ``second`` — can be
    failed the moment it is switched on.  Without shared support the
    gates never fire together, and without instant failure the switched
    event's failure status is unchanged at the instant, so either way
    the update order is unobservable.
    """
    for first in gates:
        for second in gates:
            if first == second:
                continue
            shared = supports[first] & supports[second]
            if not shared:
                continue
            for event in sdft.triggers[first]:
                if event in instant and event in supports[second]:
                    yield TriggerRace(
                        first=first,
                        second=second,
                        event=event,
                        shared=tuple(sorted(shared)),
                    )


def _fails_on_switch_on(chain: object) -> bool:
    """Whether switching on can land the chain directly in a failed state.

    Only off-states actually reachable before the trigger fires matter:
    the chain starts in (the support of) its initial distribution and,
    until switched, moves only along rate transitions between
    off-states.
    """
    if not isinstance(chain, TriggeredCtmc):
        return False
    reachable_off = _off_reachable(chain)
    return any(chain.switch_on[state] in chain.failed for state in reachable_off)


def _off_reachable(chain: TriggeredCtmc) -> frozenset[Hashable]:
    """Off-states reachable from the initial support before any switch."""
    successors: dict[Hashable, list[Hashable]] = {}
    for (source, destination), rate in chain.rates.items():
        if rate > 0.0 and source in chain.off_states and destination in chain.off_states:
            successors.setdefault(source, []).append(destination)
    seen: set[Hashable] = set(chain.initial)
    queue: deque[Hashable] = deque(chain.initial)
    while queue:
        state = queue.popleft()
        for successor in successors.get(state, ()):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return frozenset(seen)
