"""Whole-model semantic analysis: facts the shape rules cannot see.

The lint rules of :mod:`repro.lint` (SD1xx–SD4xx) judge a model by its
*shape* — reachability, probability ranges, trigger wiring.  This
package judges it by its *meaning*:

* :mod:`repro.sem.triggers` — the trigger dependency graph, and the
  order-sensitive races the builder's acyclicity check cannot rule out;
* :mod:`repro.sem.logic` — BDD-verified logical diagnostics: constant
  gates, vacuous operands, absorbed events, coherence verification;
* :mod:`repro.sem.bounds` — interval abstract interpretation bounding
  the top-event probability *without solving anything*, exact where
  independence is provable and Fréchet-bounded where it is not;
* :mod:`repro.sem.rewrite` — the equivalence-checked model diet: a
  rewrite engine whose every pass is verified by BDD equivalence on the
  touched scopes before it is accepted.

Surfaced as the SD5xx lint family, the ``sdft simplify`` subcommand,
and the analyzer's ``AnalysisOptions(simplify=True)`` preprocessing
stage.
"""

from repro.sem.bounds import BoundsReport, Interval, interval_bounds
from repro.sem.logic import LogicReport, VacuousOperand, logical_diagnostics
from repro.sem.rewrite import Rewrite, SimplifyResult, simplify
from repro.sem.triggers import TriggerRace, TriggerReport, analyze_triggers

__all__ = [
    "BoundsReport",
    "Interval",
    "LogicReport",
    "Rewrite",
    "SimplifyResult",
    "TriggerRace",
    "TriggerReport",
    "VacuousOperand",
    "analyze_triggers",
    "interval_bounds",
    "logical_diagnostics",
    "simplify",
]
