"""A reduced ordered binary decision diagram (ROBDD) engine.

Built from scratch for this package: hash-consed nodes, memoized binary
``apply`` for AND/OR, threshold (k-of-n) composition, model counting and
probability evaluation by Shannon expansion.

Nodes are integers indexing into the manager's node table; ``0`` and
``1`` are the terminal FALSE and TRUE.  Variables are integers
``0..n-1`` ordered by their index (smaller index closer to the root).
The engine only needs monotone operations (fault trees are coherent),
but ``negate`` is provided for completeness and testing.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

__all__ = ["BddManager", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1

#: Variable index attached to the terminals; larger than any real variable.
_TERMINAL_VAR = 1 << 60


class BddManager:
    """Owns the node table and caches of one BDD universe.

    All nodes returned by one manager are only meaningful within that
    manager.  The manager never garbage-collects: fault-tree compilations
    are one-shot and the node counts stay modest.
    """

    def __init__(self) -> None:
        # node id -> (var, low, high); terminals get sentinel entries.
        self._var: list[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._minsol_cache: dict[int, int] = {}
        self._without_cache: dict[tuple[int, int], int] = {}
        self._negate_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._var)

    def mk(self, var: int, low: int, high: int) -> int:
        """Return the (hash-consed) node ``ite(var, high, low)``.

        Applies the reduction rules: identical branches collapse, and
        structurally equal nodes are shared.
        """
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD of the single variable ``index``."""
        return self.mk(index, FALSE, TRUE)

    def top_var(self, node: int) -> int:
        """Variable index at the root of ``node`` (sentinel for terminals)."""
        return self._var[node]

    def cofactors(self, node: int, var: int) -> tuple[int, int]:
        """``(low, high)`` cofactors of ``node`` with respect to ``var``.

        If ``var`` is not the root variable of ``node`` (because the node
        does not depend on it at this level), both cofactors are ``node``
        itself.
        """
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply_and(self, u: int, v: int) -> int:
        """Conjunction of two BDDs."""
        return self._apply("and", u, v)

    def apply_or(self, u: int, v: int) -> int:
        """Disjunction of two BDDs."""
        return self._apply("or", u, v)

    def conjoin(self, nodes: Sequence[int]) -> int:
        """AND over a sequence of BDDs (TRUE for an empty sequence)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjoin(self, nodes: Sequence[int]) -> int:
        """OR over a sequence of BDDs (FALSE for an empty sequence)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def atleast(self, k: int, nodes: Sequence[int]) -> int:
        """BDD of "at least ``k`` of ``nodes`` hold".

        Dynamic programming over the sequence: ``T(k, rest)`` is
        ``(first AND T(k-1, rest')) OR T(k, rest')``.  Memoised per call
        on ``(k, position)``.
        """
        nodes = list(nodes)
        cache: dict[tuple[int, int], int] = {}

        def build(need: int, position: int) -> int:
            if need <= 0:
                return TRUE
            if need > len(nodes) - position:
                return FALSE
            key = (need, position)
            found = cache.get(key)
            if found is not None:
                return found
            with_first = self.apply_and(
                nodes[position], build(need - 1, position + 1)
            )
            without_first = build(need, position + 1)
            result = self.apply_or(with_first, without_first)
            cache[key] = result
            return result

        return build(k, 0)

    def negate(self, u: int) -> int:
        """Complement of a BDD (not needed for coherent trees; for tests)."""
        found = self._negate_cache.get(u)
        if found is not None:
            return found
        if u == FALSE:
            result = TRUE
        elif u == TRUE:
            result = FALSE
        else:
            result = self.mk(
                self._var[u], self.negate(self._low[u]), self.negate(self._high[u])
            )
        self._negate_cache[u] = result
        return result

    def _apply(self, op: str, u: int, v: int) -> int:
        if op == "and":
            if u == FALSE or v == FALSE:
                return FALSE
            if u == TRUE:
                return v
            if v == TRUE:
                return u
        else:  # or
            if u == TRUE or v == TRUE:
                return TRUE
            if u == FALSE:
                return v
            if v == FALSE:
                return u
        if u == v:
            return u
        if u > v:
            u, v = v, u  # operations are commutative; canonicalise the key
        key = (op, u, v)
        found = self._apply_cache.get(key)
        if found is not None:
            return found
        var = min(self._var[u], self._var[v])
        u_low, u_high = self.cofactors(u, var)
        v_low, v_high = self.cofactors(v, var)
        result = self.mk(
            var, self._apply(op, u_low, v_low), self._apply(op, u_high, v_high)
        )
        self._apply_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, node: int, assignment: Callable[[int], bool]) -> bool:
        """Evaluate the function under a variable assignment."""
        while node > TRUE:
            if assignment(self._var[node]):
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    def probability(self, node: int, p: Mapping[int, float]) -> float:
        """Probability that the function holds, given independent variables.

        ``p[i]`` is the probability that variable ``i`` is true.  Linear
        in the number of BDD nodes thanks to memoisation — this is the
        exact computation a cutset-based method approximates.
        """
        cache: dict[int, float] = {FALSE: 0.0, TRUE: 1.0}
        order = self._nodes_below(node)
        for n in order:
            p_var = p[self._var[n]]
            cache[n] = (1.0 - p_var) * cache[self._low[n]] + p_var * cache[
                self._high[n]
            ]
        return cache[node]

    def count_nodes(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node`` (terminals included)."""
        return len(self._nodes_below(node)) + (2 if node > TRUE else 1)

    def support(self, node: int) -> frozenset[int]:
        """Set of variable indices the function actually depends on."""
        return frozenset(self._var[n] for n in self._nodes_below(node))

    def _nodes_below(self, node: int) -> list[int]:
        """Non-terminal nodes reachable from ``node``, children first."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(node, False)]
        while stack:
            n, expanded = stack.pop()
            if n <= TRUE or (not expanded and n in seen):
                continue
            if expanded:
                order.append(n)
                continue
            seen.add(n)
            stack.append((n, True))
            stack.append((self._low[n], False))
            stack.append((self._high[n], False))
        return order

    # ------------------------------------------------------------------
    # Minimal solutions (monotone functions)
    # ------------------------------------------------------------------

    def minsol(self, node: int) -> int:
        """The minimal-solutions BDD of a *monotone* function.

        In the result, every path to TRUE encodes (through its positive
        literals) exactly one inclusion-minimal solution of the input.
        Classical recursion over the positive Shannon expansion
        ``f = x·f1 + f0``: keep ``minsol(f0)``, and from ``minsol(f1)``
        keep only the solutions not already above one of ``minsol(f0)``
        (the :meth:`without` subtraction).  Memoised per node.
        """
        cache = self._minsol_cache
        found = cache.get(node)
        if found is not None:
            return found
        if node <= TRUE:
            result = node
        else:
            var = self._var[node]
            low = self.minsol(self._low[node])
            high = self.minsol(self._high[node])
            result = self.mk(var, low, self.without(high, low))
        cache[node] = result
        return result

    def without(self, u: int, v: int) -> int:
        """Solutions of ``u`` that are not supersets of a solution of ``v``.

        Both operands are minimal-solutions BDDs (positive-literal paths
        encode sets).  A set ``S`` is discarded iff some ``T`` encoded in
        ``v`` satisfies ``T ⊆ S``.
        """
        if u == FALSE or v == TRUE:
            # v encodes the empty set: it subsumes everything.
            return FALSE
        if v == FALSE or u == TRUE:
            # Nothing to subtract, or u's only solution is the empty set
            # (which only TRUE in v could subsume — handled above).
            return u
        key = (u, v)
        found = self._without_cache.get(key)
        if found is not None:
            return found
        u_var = self._var[u]
        v_var = self._var[v]
        if u_var < v_var:
            # v never mentions u_var: subtract v from both cofactors.
            result = self.mk(
                u_var,
                self.without(self._low[u], v),
                self.without(self._high[u], v),
            )
        elif u_var > v_var:
            # u's sets never contain v_var, so v's sets that require it
            # can never be subsets; only v's var-free part matters.
            result = self.without(u, self._low[v])
        else:
            # S ∋ x is above T when (x ∈ T and S\{x} ⊇ T\{x}) or
            # (x ∉ T and S\{x} ⊇ T): subtract both v-cofactors from u1.
            v_both = self.apply_or(self._low[v], self._high[v])
            result = self.mk(
                u_var,
                self.without(self._low[u], self._low[v]),
                self.without(self._high[u], v_both),
            )
        self._without_cache[key] = result
        return result

    def minimal_solution_sets(self, node: int) -> list[frozenset[int]]:
        """Minimal solutions of a monotone function, as variable sets.

        Runs :meth:`minsol` and reads the positive literals of each path
        to TRUE.
        """
        solutions = []
        for path in self.satisfying_paths(self.minsol(node)):
            solutions.append(
                frozenset(var for var, value in path.items() if value)
            )
        return solutions

    # ------------------------------------------------------------------
    # Solution extraction
    # ------------------------------------------------------------------

    def satisfying_paths(self, node: int) -> Iterator[dict[int, bool]]:
        """Yield partial assignments (one per BDD path) that satisfy the function.

        Variables absent from a yielded dict are "don't care".  Used by
        tests; minimal-cutset extraction lives in
        :func:`repro.bdd.ft_bdd.minimal_cutsets_from_bdd`.
        """

        def walk(n: int, partial: dict[int, bool]) -> Iterator[dict[int, bool]]:
            if n == FALSE:
                return
            if n == TRUE:
                yield dict(partial)
                return
            var = self._var[n]
            partial[var] = False
            yield from walk(self._low[n], partial)
            partial[var] = True
            yield from walk(self._high[n], partial)
            del partial[var]

        yield from walk(node, {})
