"""A reduced ordered binary decision diagram (ROBDD) engine.

Built from scratch for this package: hash-consed nodes, memoized binary
``apply`` for AND/OR, threshold (k-of-n) composition, model counting and
probability evaluation by Shannon expansion.

Nodes are integers indexing into the manager's node table; ``0`` and
``1`` are the terminal FALSE and TRUE.  Variables are integers
``0..n-1`` ordered by their index (smaller index closer to the root).
The engine only needs monotone operations (fault trees are coherent),
but ``negate`` is provided for completeness and testing.

Scaling posture (this is the *production* static quantifier, not just a
test oracle):

* every structural walk — ``_apply``, :meth:`~BddManager.negate`,
  :meth:`~BddManager.probability`, :meth:`~BddManager.minsol`,
  :meth:`~BddManager.without`, path extraction — is iterative, so chain
  trees thousands of events deep compile without touching Python's
  recursion limit;
* the operation caches (``apply``, ``negate``, ``minsol``, ``without``,
  ``atleast``) live on the manager and persist across calls, so
  repeated sub-structures (identical gates, module re-use) are solved
  once per manager rather than once per call;
* an optional *node budget* turns the worst-case exponential blow-up
  into a clean :class:`~repro.errors.BddBudgetExceeded` signal the
  analyzer converts into a cutset-quantification fallback.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import BddBudgetExceeded

__all__ = ["BddManager", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1

#: Variable index attached to the terminals; larger than any real variable.
_TERMINAL_VAR = 1 << 60


class BddManager:
    """Owns the node table and caches of one BDD universe.

    All nodes returned by one manager are only meaningful within that
    manager.  The manager never garbage-collects: fault-tree compilations
    are one-shot, and the ``node_budget`` guard bounds how large the
    table may grow — creating a node past the budget raises
    :class:`~repro.errors.BddBudgetExceeded` instead of thrashing.
    """

    def __init__(self, node_budget: int | None = None) -> None:
        # node id -> (var, low, high); terminals get sentinel entries.
        self._var: list[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._minsol_cache: dict[int, int] = {}
        self._without_cache: dict[tuple[int, int], int] = {}
        self._negate_cache: dict[int, int] = {}
        self._atleast_cache: dict[tuple[int, tuple[int, ...]], int] = {}
        self.node_budget = node_budget

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._var)

    def mk(self, var: int, low: int, high: int) -> int:
        """Return the (hash-consed) node ``ite(var, high, low)``.

        Applies the reduction rules: identical branches collapse, and
        structurally equal nodes are shared.  Raises
        :class:`~repro.errors.BddBudgetExceeded` when creating the node
        would push the table past the manager's ``node_budget``.
        """
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self.node_budget is not None and len(self._var) >= self.node_budget:
            raise BddBudgetExceeded(
                f"BDD node budget exceeded: {len(self._var)} nodes "
                f"(budget {self.node_budget})"
            )
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD of the single variable ``index``."""
        return self.mk(index, FALSE, TRUE)

    def top_var(self, node: int) -> int:
        """Variable index at the root of ``node`` (sentinel for terminals)."""
        return self._var[node]

    def cofactors(self, node: int, var: int) -> tuple[int, int]:
        """``(low, high)`` cofactors of ``node`` with respect to ``var``.

        If ``var`` is not the root variable of ``node`` (because the node
        does not depend on it at this level), both cofactors are ``node``
        itself.
        """
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def apply_and(self, u: int, v: int) -> int:
        """Conjunction of two BDDs."""
        return self._apply("and", u, v)

    def apply_or(self, u: int, v: int) -> int:
        """Disjunction of two BDDs."""
        return self._apply("or", u, v)

    def conjoin(self, nodes: Sequence[int]) -> int:
        """AND over a sequence of BDDs (TRUE for an empty sequence)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjoin(self, nodes: Sequence[int]) -> int:
        """OR over a sequence of BDDs (FALSE for an empty sequence)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    def atleast(self, k: int, nodes: Sequence[int]) -> int:
        """BDD of "at least ``k`` of ``nodes`` hold".

        Dynamic programming over the sequence: ``T(k, rest)`` is
        ``(first AND T(k-1, rest')) OR T(k, rest')``.  Memoised on the
        *manager* under ``(k, suffix-of-node-ids)`` keys, so identical
        voting gates across a tree (and across compilations sharing this
        manager) are built once.  ``k <= 0`` is TRUE (zero of anything
        always holds); ``k > len(nodes)`` is FALSE.
        """
        seq = tuple(nodes)
        if k <= 0:
            return TRUE
        if k > len(seq):
            return FALSE
        cache = self._atleast_cache
        # Suffix tuples share no storage but the key count is O(k * n).
        suffixes = [seq[i:] for i in range(len(seq) + 1)]

        def lookup(need: int, position: int) -> int:
            if need <= 0:
                return TRUE
            if need > len(seq) - position:
                return FALSE
            return cache[(need, suffixes[position])]

        for position in range(len(seq) - 1, -1, -1):
            remaining = len(seq) - position
            for need in range(1, min(k, remaining) + 1):
                key = (need, suffixes[position])
                if key in cache:
                    continue
                with_first = self.apply_and(
                    seq[position], lookup(need - 1, position + 1)
                )
                without_first = lookup(need, position + 1)
                cache[key] = self.apply_or(with_first, without_first)
        return lookup(k, 0)

    def negate(self, u: int) -> int:
        """Complement of a BDD (not needed for coherent trees; for tests).

        Iterative post-order over the reachable nodes — a chain tree
        thousands of levels deep negates without recursion.
        """
        cache = self._negate_cache

        def resolve(node: int) -> int:
            if node == FALSE:
                return TRUE
            if node == TRUE:
                return FALSE
            return cache[node]

        found = cache.get(u)
        if found is not None:
            return found
        if u <= TRUE:
            return resolve(u)
        for node in self._nodes_below(u):
            if node in cache:
                continue
            cache[node] = self.mk(
                self._var[node],
                resolve(self._low[node]),
                resolve(self._high[node]),
            )
        return cache[u]

    def _apply_shortcut(self, op: str, u: int, v: int) -> int | None:
        """Terminal and identity cases of ``apply``; ``None`` when real work remains."""
        if op == "and":
            if u == FALSE or v == FALSE:
                return FALSE
            if u == TRUE:
                return v
            if v == TRUE:
                return u
        else:  # or
            if u == TRUE or v == TRUE:
                return TRUE
            if u == FALSE:
                return v
            if v == FALSE:
                return u
        if u == v:
            return u
        return None

    def _apply(self, op: str, u: int, v: int) -> int:
        """Memoized binary apply, iterative (explicit frame stack).

        The classical recursion is depth-bounded by the variable count,
        which for deep chain trees exceeds Python's recursion limit; the
        explicit stack removes that ceiling while keeping the same
        per-manager memo table.
        """
        shortcut = self._apply_shortcut(op, u, v)
        if shortcut is not None:
            return shortcut
        cache = self._apply_cache

        def key_of(a: int, b: int) -> tuple[str, int, int]:
            # Operations are commutative; canonicalise the key.
            return (op, b, a) if a > b else (op, a, b)

        root_key = key_of(u, v)
        found = cache.get(root_key)
        if found is not None:
            return found
        stack: list[tuple[int, int, bool]] = [(u, v, False)]
        while stack:
            a, b, expanded = stack.pop()
            key = key_of(a, b)
            if not expanded and key in cache:
                continue
            var = min(self._var[a], self._var[b])
            a_low, a_high = self.cofactors(a, var)
            b_low, b_high = self.cofactors(b, var)
            if expanded:
                low = self._apply_shortcut(op, a_low, b_low)
                if low is None:
                    low = cache[key_of(a_low, b_low)]
                high = self._apply_shortcut(op, a_high, b_high)
                if high is None:
                    high = cache[key_of(a_high, b_high)]
                cache[key] = self.mk(var, low, high)
                continue
            stack.append((a, b, True))
            if self._apply_shortcut(op, a_low, b_low) is None:
                stack.append((a_low, b_low, False))
            if self._apply_shortcut(op, a_high, b_high) is None:
                stack.append((a_high, b_high, False))
        return cache[root_key]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, node: int, assignment: Callable[[int], bool]) -> bool:
        """Evaluate the function under a variable assignment."""
        while node > TRUE:
            if assignment(self._var[node]):
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    def probability(self, node: int, p: Mapping[int, float]) -> float:
        """Probability that the function holds, given independent variables.

        ``p[i]`` is the probability that variable ``i`` is true.  Linear
        in the number of BDD nodes thanks to memoisation — this is the
        exact computation a cutset-based method approximates.
        """
        cache: dict[int, float] = {FALSE: 0.0, TRUE: 1.0}
        order = self._nodes_below(node)
        for n in order:
            p_var = p[self._var[n]]
            cache[n] = (1.0 - p_var) * cache[self._low[n]] + p_var * cache[
                self._high[n]
            ]
        return cache[node]

    def count_nodes(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node`` (terminals included)."""
        return len(self._nodes_below(node)) + (2 if node > TRUE else 1)

    def count_paths(self, node: int) -> int:
        """Number of paths from ``node`` to the TRUE terminal.

        On a minimal-solutions BDD (:meth:`minsol`) this is exactly the
        number of minimal solutions — computable in time linear in the
        BDD size, so callers can bound an extraction *before*
        materialising the family.
        """
        cache: dict[int, int] = {FALSE: 0, TRUE: 1}
        for n in self._nodes_below(node):
            cache[n] = cache[self._low[n]] + cache[self._high[n]]
        return cache[node]

    def support(self, node: int) -> frozenset[int]:
        """Set of variable indices the function actually depends on."""
        return frozenset(self._var[n] for n in self._nodes_below(node))

    def _nodes_below(self, node: int) -> list[int]:
        """Non-terminal nodes reachable from ``node``, children first."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(node, False)]
        while stack:
            n, expanded = stack.pop()
            if n <= TRUE or (not expanded and n in seen):
                continue
            if expanded:
                order.append(n)
                continue
            seen.add(n)
            stack.append((n, True))
            stack.append((self._low[n], False))
            stack.append((self._high[n], False))
        return order

    # ------------------------------------------------------------------
    # Minimal solutions (monotone functions)
    # ------------------------------------------------------------------

    def minsol(self, node: int) -> int:
        """The minimal-solutions BDD of a *monotone* function.

        In the result, every path to TRUE encodes (through its positive
        literals) exactly one inclusion-minimal solution of the input.
        Classical recursion over the positive Shannon expansion
        ``f = x·f1 + f0``: keep ``minsol(f0)``, and from ``minsol(f1)``
        keep only the solutions not already above one of ``minsol(f0)``
        (the :meth:`without` subtraction).  Memoised on the manager and
        evaluated children-first over the reachable nodes, so the walk
        never recurses.
        """
        cache = self._minsol_cache
        if node <= TRUE:
            return node
        found = cache.get(node)
        if found is not None:
            return found

        def resolve(n: int) -> int:
            return n if n <= TRUE else cache[n]

        for n in self._nodes_below(node):
            if n in cache:
                continue
            low = resolve(self._low[n])
            high = resolve(self._high[n])
            cache[n] = self.mk(self._var[n], low, self.without(high, low))
        return cache[node]

    def _without_shortcut(self, u: int, v: int) -> int | None:
        """Terminal cases of :meth:`without`; ``None`` when real work remains."""
        if u == FALSE or v == TRUE:
            # v encodes the empty set: it subsumes everything.
            return FALSE
        if v == FALSE or u == TRUE:
            # Nothing to subtract, or u's only solution is the empty set
            # (which only TRUE in v could subsume — handled above).
            return u
        return None

    def without(self, u: int, v: int) -> int:
        """Solutions of ``u`` that are not supersets of a solution of ``v``.

        Both operands are minimal-solutions BDDs (positive-literal paths
        encode sets).  A set ``S`` is discarded iff some ``T`` encoded in
        ``v`` satisfies ``T ⊆ S``.  Iterative with an explicit frame
        stack, like :meth:`_apply`.
        """
        shortcut = self._without_shortcut(u, v)
        if shortcut is not None:
            return shortcut
        cache = self._without_cache
        found = cache.get((u, v))
        if found is not None:
            return found

        def resolve(a: int, b: int) -> int | None:
            result = self._without_shortcut(a, b)
            if result is not None:
                return result
            return cache.get((a, b))

        stack: list[tuple[int, int, bool]] = [(u, v, False)]
        while stack:
            a, b, expanded = stack.pop()
            if not expanded and (a, b) in cache:
                continue
            a_var = self._var[a]
            b_var = self._var[b]
            if a_var < b_var:
                # b never mentions a_var: subtract b from both cofactors.
                subproblems = [(self._low[a], b), (self._high[a], b)]
            elif a_var > b_var:
                # a's sets never contain b_var, so b's sets that require
                # it can never be subsets; only b's var-free part matters.
                subproblems = [(a, self._low[b])]
            else:
                # S ∋ x is above T when (x ∈ T and S\{x} ⊇ T\{x}) or
                # (x ∉ T and S\{x} ⊇ T): subtract both b-cofactors from a1.
                b_both = self.apply_or(self._low[b], self._high[b])
                subproblems = [
                    (self._low[a], self._low[b]),
                    (self._high[a], b_both),
                ]
            if expanded:
                parts = [resolve(pa, pb) for pa, pb in subproblems]
                resolved = [part for part in parts if part is not None]
                if len(subproblems) == 1:
                    cache[(a, b)] = resolved[0]
                else:
                    cache[(a, b)] = self.mk(a_var, resolved[0], resolved[1])
                continue
            stack.append((a, b, True))
            for pa, pb in subproblems:
                if resolve(pa, pb) is None:
                    stack.append((pa, pb, False))
        return cache[(u, v)]

    def minimal_solution_sets(self, node: int) -> list[frozenset[int]]:
        """Minimal solutions of a monotone function, as variable sets.

        Runs :meth:`minsol` and reads the positive literals of each path
        to TRUE.
        """
        solutions = []
        for path in self.satisfying_paths(self.minsol(node)):
            solutions.append(
                frozenset(var for var, value in path.items() if value)
            )
        return solutions

    # ------------------------------------------------------------------
    # Solution extraction
    # ------------------------------------------------------------------

    def satisfying_paths(self, node: int) -> Iterator[dict[int, bool]]:
        """Yield partial assignments (one per BDD path) that satisfy the function.

        Variables absent from a yielded dict are "don't care".  Iterative
        depth-first traversal with an explicit branch stack, so path
        length (bounded by the variable count) never hits the recursion
        limit.  Used by tests; minimal-cutset extraction lives in
        :func:`repro.bdd.ft_bdd.minimal_cutsets_from_bdd`.
        """
        if node == FALSE:
            return
        if node == TRUE:
            yield {}
            return
        partial: dict[int, bool] = {}
        # Each frame: (node, branch) with branch 0 = low pending,
        # 1 = high pending, 2 = both done (pop the assignment).
        stack: list[tuple[int, int]] = [(node, 0)]
        while stack:
            n, branch = stack.pop()
            if n <= TRUE:
                if n == TRUE:
                    yield dict(partial)
                continue
            var = self._var[n]
            if branch == 0:
                stack.append((n, 1))
                partial[var] = False
                child = self._low[n]
                if child <= TRUE:
                    if child == TRUE:
                        yield dict(partial)
                else:
                    stack.append((child, 0))
            elif branch == 1:
                stack.append((n, 2))
                partial[var] = True
                child = self._high[n]
                if child <= TRUE:
                    if child == TRUE:
                        yield dict(partial)
                else:
                    stack.append((child, 0))
            else:
                del partial[var]
