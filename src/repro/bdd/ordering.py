"""Variable-ordering heuristics for fault-tree BDD compilation.

BDD size is notoriously sensitive to the variable order.  For fault
trees, the classical and robust choice is depth-first visit order of the
basic events from the top gate: events that co-occur under the same gate
get adjacent indices.  Two structural alternatives are provided —
*weight* (Minato-style top-down weight splitting) and *depth* (shallow
events first) — because on some topologies they beat DFS by orders of
magnitude.  The production quantifier
(:func:`repro.bdd.quantify.quantify_static_tree`) tries them in sequence
under the node budget; ``ORDERINGS``/``AUTO_CANDIDATES`` are the
registry it draws from.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.ft.tree import FaultTree

__all__ = [
    "AUTO_CANDIDATES",
    "ORDERINGS",
    "alphabetical_order",
    "depth_order",
    "dfs_order",
    "probability_order",
    "weight_order",
]


def dfs_order(tree: FaultTree) -> list[str]:
    """Events in first-visit order of a depth-first walk from the top.

    Events unreachable from the top gate are appended alphabetically so
    that the order always covers the whole event set.
    """
    order: list[str] = []
    seen: set[str] = set()
    stack: list[str] = [tree.top]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if tree.is_event(name):
            order.append(name)
            continue
        for child in reversed(tree.children(name)):
            stack.append(child)
    for name in sorted(tree.events):
        if name not in seen:
            order.append(name)
    return order


def weight_order(tree: FaultTree) -> list[str]:
    """Events by descending *structural weight*, DFS rank as tie-break.

    The top gate carries weight 1, every gate splits its weight equally
    among its children, and weights accumulate over a DAG's multiple
    paths.  An event's weight measures how "central" it is to the top
    gate; putting heavy events near the BDD root keeps the functions at
    each level simple.  Classical heuristic from the BDD literature
    (Minato's weight heuristic adapted to fault trees).
    """
    weight: dict[str, float] = {tree.top: 1.0}
    # Parents precede children when walking the topological order backwards.
    for name in reversed(tree.topological_order()):
        w = weight.get(name)
        if w is None or tree.is_event(name):
            continue
        children = tree.children(name)
        share = w / len(children)
        for child in children:
            weight[child] = weight.get(child, 0.0) + share
    rank = {name: i for i, name in enumerate(dfs_order(tree))}
    return sorted(
        tree.events, key=lambda n: (-weight.get(n, 0.0), rank[n])
    )


def depth_order(tree: FaultTree) -> list[str]:
    """Events by increasing minimal depth below the top, DFS tie-break.

    Events wired close to the top gate decide the top event with few
    other variables in scope, so testing them first keeps the upper BDD
    levels narrow.  Events unreachable from the top sort last.
    """
    depth: dict[str, int] = {tree.top: 0}
    frontier: list[str] = [tree.top]
    while frontier:
        next_frontier: list[str] = []
        for name in frontier:
            d = depth[name] + 1
            for child in tree.children(name):
                if child not in depth:
                    depth[child] = d
                    next_frontier.append(child)
        frontier = next_frontier
    unreachable = len(tree.events) + len(tree.gates) + 1
    rank = {name: i for i, name in enumerate(dfs_order(tree))}
    return sorted(
        tree.events, key=lambda n: (depth.get(n, unreachable), rank[n])
    )


def alphabetical_order(tree: FaultTree) -> list[str]:
    """Events sorted by name — a deliberately structure-blind baseline."""
    return sorted(tree.events)


def probability_order(tree: FaultTree) -> list[str]:
    """Events sorted by descending failure probability.

    Groups the likely events near the root, which sometimes helps the
    probability computation's numerical conditioning; mostly a foil for
    :func:`dfs_order` in the ordering comparison tests.
    """
    return sorted(tree.events, key=lambda n: (-tree.events[n].probability, n))


#: Named heuristics, addressable from options and metrics labels.
ORDERINGS: Mapping[str, Callable[[FaultTree], list[str]]] = {
    "dfs": dfs_order,
    "weight": weight_order,
    "depth": depth_order,
    "alphabetical": alphabetical_order,
    "probability": probability_order,
}

#: Orders tried (in sequence, each under the node budget) by the
#: automatic selection of :func:`repro.bdd.quantify.quantify_static_tree`.
AUTO_CANDIDATES: tuple[str, ...] = ("dfs", "weight", "depth")
