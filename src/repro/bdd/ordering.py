"""Variable-ordering heuristics for fault-tree BDD compilation.

BDD size is notoriously sensitive to the variable order.  For fault
trees, the classical and robust choice is depth-first visit order of the
basic events from the top gate: events that co-occur under the same gate
get adjacent indices.  Alternatives are provided for experimentation and
the ordering ablation tests.
"""

from __future__ import annotations

from repro.ft.tree import FaultTree

__all__ = ["dfs_order", "alphabetical_order", "probability_order"]


def dfs_order(tree: FaultTree) -> list[str]:
    """Events in first-visit order of a depth-first walk from the top.

    Events unreachable from the top gate are appended alphabetically so
    that the order always covers the whole event set.
    """
    order: list[str] = []
    seen: set[str] = set()
    stack: list[str] = [tree.top]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if tree.is_event(name):
            order.append(name)
            continue
        for child in reversed(tree.children(name)):
            stack.append(child)
    for name in sorted(tree.events):
        if name not in seen:
            order.append(name)
    return order


def alphabetical_order(tree: FaultTree) -> list[str]:
    """Events sorted by name — a deliberately structure-blind baseline."""
    return sorted(tree.events)


def probability_order(tree: FaultTree) -> list[str]:
    """Events sorted by descending failure probability.

    Groups the likely events near the root, which sometimes helps the
    probability computation's numerical conditioning; mostly a foil for
    :func:`dfs_order` in the ordering comparison tests.
    """
    return sorted(tree.events, key=lambda n: (-tree.events[n].probability, n))
