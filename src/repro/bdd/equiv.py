"""BDD-backed semantic equivalence of fault trees and scopes.

The semantic-analysis passes of :mod:`repro.sem` (and the rewrite engine
in particular) need one primitive: *do two coherent structure functions
denote the same boolean function?*  Hash-consing makes the answer O(1)
once both functions live in one manager — equal functions reduce to the
same node id — so the helpers here compile the candidates into a shared
manager under one union variable order and compare roots.

Three deliberate design points:

* **Constants are substituted, not ordered.**  A basic event pinned to
  ``True``/``False`` (probability one/zero, as decided by the caller)
  becomes a terminal, so equivalence is judged over the *remaining free
  variables* — exactly what constant-propagation rewrites change.
* **Scopes, not just tops.**  SD trees attach semantics to interior
  gates (a trigger fires on its source gate's status), so
  :func:`trees_equivalent` can be asked to also prove named interior
  scopes equivalent, in the same compilation.
* **Budgeted.**  All compilation goes through the ordinary
  ``node_budget`` guard; a blow-up surfaces as the usual clean
  :class:`~repro.errors.BddBudgetExceeded`, never a hang.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.ordering import dfs_order
from repro.ft.tree import FaultTree, GateType

__all__ = [
    "compile_into",
    "is_monotone",
    "non_monotone_variables",
    "trees_equivalent",
    "union_variables",
]


def union_variables(
    trees: Iterable[FaultTree],
    constants: Mapping[str, bool] | None = None,
) -> dict[str, int]:
    """One shared variable order over the basic events of several trees.

    Constant events are excluded — they compile to terminals.  The order
    follows the DFS heuristic of the *first* tree (structure-aware
    orders keep deep module-heavy trees compact; an alphabetical order
    can blow the node budget on models a good order compiles in
    milliseconds), with events only the other trees know appended
    alphabetically.  Only sameness of the order across the compared
    sides matters for correctness; quality decides whether the check
    fits the budget.
    """
    sequence = list(trees)
    skip = set(constants or {})
    ordered: list[str] = []
    seen: set[str] = set(skip)
    if sequence:
        for name in dfs_order(sequence[0]):
            if name not in seen:
                ordered.append(name)
                seen.add(name)
    extras: set[str] = set()
    for tree in sequence[1:]:
        extras.update(name for name in tree.events if name not in seen)
    ordered.extend(sorted(extras))
    return {name: index for index, name in enumerate(ordered)}


def compile_into(
    tree: FaultTree,
    manager: BddManager,
    variables: Mapping[str, int],
    constants: Mapping[str, bool] | None = None,
) -> dict[str, int]:
    """Compile every node of ``tree`` into an existing manager.

    ``variables`` maps free event names to variable indices (shared with
    any other tree compiled into the same manager); events listed in
    ``constants`` compile to the corresponding terminal.  Returns the
    node of every event *and* gate, keyed by name.
    """
    constants = constants or {}
    node_of: dict[str, int] = {}
    for name in tree.events:
        if name in constants:
            node_of[name] = TRUE if constants[name] else FALSE
        else:
            node_of[name] = manager.var(variables[name])
    for gate in tree.gates_bottom_up():
        children = [node_of[child] for child in gate.children]
        if gate.gate_type is GateType.AND:
            node_of[gate.name] = manager.conjoin(children)
        elif gate.gate_type is GateType.OR:
            node_of[gate.name] = manager.disjoin(children)
        else:
            assert gate.k is not None
            node_of[gate.name] = manager.atleast(gate.k, children)
    return node_of


def trees_equivalent(
    a: FaultTree,
    b: FaultTree,
    *,
    scopes: Iterable[str] = (),
    constants: Mapping[str, bool] | None = None,
    node_budget: int | None = None,
) -> bool:
    """Whether two trees denote the same structure function.

    Both trees compile into one fresh manager under a shared variable
    order; hash-consing then makes the comparison a node-id equality.
    ``scopes`` optionally names interior gates that must *also* agree —
    a gate named in ``scopes`` must exist in both trees and denote the
    same function (the rewrite engine uses this for trigger gates).

    Raises :class:`~repro.errors.BddBudgetExceeded` if either side blows
    past ``node_budget``; the caller decides whether unverifiable means
    rejected (the rewrite engine's policy) or merely unknown.
    """
    variables = union_variables((a, b), constants)
    manager = BddManager(node_budget=node_budget)
    roots_a = compile_into(a, manager, variables, constants)
    roots_b = compile_into(b, manager, variables, constants)
    if roots_a[a.top] != roots_b[b.top]:
        return False
    for scope in scopes:
        if scope not in roots_a or scope not in roots_b:
            return False
        if roots_a[scope] != roots_b[scope]:
            return False
    return True


def non_monotone_variables(manager: BddManager, node: int) -> frozenset[int]:
    """Variables witnessing non-monotonicity of ``node``'s function.

    A function is monotone (coherent) iff at every reachable BDD node
    the low cofactor implies the high cofactor — by induction over the
    Shannon expansion, since the cofactors of a monotone function are
    monotone and ``f = (1-x)·f_low + x·f_high``.  Each failing node's
    root variable is a witness: raising that variable can un-fail the
    function.  Empty iff the function is monotone.
    """
    witnesses: set[int] = set()
    for n in manager._nodes_below(node):
        var = manager.top_var(n)
        low, high = manager.cofactors(n, var)
        if manager.apply_or(low, high) != high:
            witnesses.add(var)
    return frozenset(witnesses)


def is_monotone(manager: BddManager, node: int) -> bool:
    """Whether the function rooted at ``node`` is monotone (coherent).

    Every function compiled from AND/OR/ATLEAST gates over positive
    literals is monotone by construction; this check is the *verifier*
    for that claim, used by the semantic diagnostics as a guard on the
    engine itself.
    """
    return not non_monotone_variables(manager, node)
