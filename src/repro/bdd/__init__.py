"""Reduced ordered BDDs and exact fault-tree analysis built on them.

The exact counterpart of the MOCUS pipeline: compile a coherent fault
tree into a BDD, read off the exact top-event probability, extract the
exact minimal cutsets.  Used as an oracle in the test suite and in the
cutset-engine ablation benchmark.
"""

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.ft_bdd import CompiledTree, compile_tree, exact_mcs, exact_probability
from repro.bdd.ordering import alphabetical_order, dfs_order, probability_order

__all__ = [
    "FALSE",
    "TRUE",
    "BddManager",
    "CompiledTree",
    "alphabetical_order",
    "compile_tree",
    "dfs_order",
    "exact_mcs",
    "exact_probability",
    "probability_order",
]
