"""Reduced ordered BDDs and exact fault-tree analysis built on them.

The exact counterpart of the MOCUS pipeline: compile a coherent fault
tree into a BDD, read off the exact top-event probability, extract the
exact minimal cutsets.  Since the static-engine promotion this is the
*production* quantifier for trigger-free fault trees
(:func:`~repro.bdd.quantify.quantify_static_tree`, selected by
``AnalysisOptions(static_engine="auto"|"bdd")``), as well as the exact
oracle behind the differential cross-checks and the cutset-engine
ablation benchmark.
"""

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.equiv import (
    compile_into,
    is_monotone,
    non_monotone_variables,
    trees_equivalent,
    union_variables,
)
from repro.bdd.ft_bdd import CompiledTree, compile_tree, exact_mcs, exact_probability
from repro.bdd.ordering import (
    ORDERINGS,
    alphabetical_order,
    depth_order,
    dfs_order,
    probability_order,
    weight_order,
)
from repro.bdd.quantify import BddQuantification, quantify_static_tree

__all__ = [
    "FALSE",
    "ORDERINGS",
    "TRUE",
    "BddManager",
    "BddQuantification",
    "CompiledTree",
    "alphabetical_order",
    "compile_into",
    "compile_tree",
    "depth_order",
    "dfs_order",
    "exact_mcs",
    "exact_probability",
    "is_monotone",
    "non_monotone_variables",
    "probability_order",
    "quantify_static_tree",
    "trees_equivalent",
    "union_variables",
]
