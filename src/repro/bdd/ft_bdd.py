"""Fault tree → BDD compilation: exact probability, exact minimal cutsets.

This is the exact counterpart of the MOCUS pipeline.  A coherent fault
tree compiles bottom-up into one BDD per gate; the top gate's BDD gives

* the exact failure probability ``p(FT)`` in time linear in BDD size
  (no rare-event error, no cutoff), and
* the exact family of minimal cutsets, extracted with the classical
  recursion for monotone functions (Rauzy-style minimal solutions,
  materialised as explicit sets with per-node memoisation).

This module is both the production static engine's compiler (wrapped by
:mod:`repro.bdd.quantify`, which adds ordering selection and module-wise
decomposition) and the exact oracle the differential cross-checks and
the A1 ablation benchmark compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bdd.engine import FALSE, TRUE, BddManager
from repro.bdd.ordering import dfs_order
from repro.ft.cutsets import CutSetList
from repro.ft.tree import FaultTree, GateType

__all__ = ["CompiledTree", "compile_tree", "exact_probability", "exact_mcs"]


@dataclass
class CompiledTree:
    """A fault tree compiled to a BDD.

    Holds the manager, the root node of the top gate, the variable order
    used and per-gate roots (useful when sub-gates must be queried, e.g.
    for trigger-gate analyses).
    """

    tree: FaultTree
    manager: BddManager
    root: int
    order: tuple[str, ...]
    gate_roots: dict[str, int]

    @property
    def node_count(self) -> int:
        """Number of BDD nodes reachable from the top root."""
        return self.manager.count_nodes(self.root)

    def probability(self) -> float:
        """Exact top-event probability."""
        probabilities = {
            i: self.tree.events[name].probability
            for i, name in enumerate(self.order)
        }
        return self.manager.probability(self.root, probabilities)

    def minimal_cutsets(self, method: str = "sets") -> CutSetList:
        """Exact minimal cutsets of the top gate.

        ``method`` selects the extraction: ``"sets"`` materialises
        per-node solution families (simple, memory-bound by the MCS
        count), ``"bdd"`` runs the classical minimal-solutions BDD
        recursion (:meth:`repro.bdd.engine.BddManager.minsol`) and reads
        the paths.  Both give identical families (property-tested).
        """
        return self.minimal_cutsets_of(self.tree.top, method)

    def minimal_cutsets_of(self, gate_name: str, method: str = "sets") -> CutSetList:
        """Exact minimal cutsets of an arbitrary gate of the tree."""
        root = self.gate_roots[gate_name]
        if method == "sets":
            sets = _minimal_solutions(self.manager, root)
        elif method == "bdd":
            sets = self.manager.minimal_solution_sets(root)
        else:
            raise ValueError(f"unknown extraction method {method!r}")
        named = [
            frozenset(self.order[i] for i in solution) for solution in sets
        ]
        probabilities = {n: e.probability for n, e in self.tree.events.items()}
        return CutSetList.from_cutsets(named, probabilities, minimal=True)


def compile_tree(
    tree: FaultTree,
    order: Sequence[str] | None = None,
    node_budget: int | None = None,
) -> CompiledTree:
    """Compile every gate of ``tree`` into a shared-manager BDD.

    ``order`` optionally fixes the variable order (a permutation of the
    event names); the default is the DFS heuristic of
    :func:`repro.bdd.ordering.dfs_order`.  ``node_budget`` caps the
    manager's node table: a compilation that would grow past it raises
    :class:`~repro.errors.BddBudgetExceeded` instead of thrashing.
    """
    chosen = list(order) if order is not None else dfs_order(tree)
    if sorted(chosen) != sorted(tree.events):
        raise ValueError("order must be a permutation of the tree's basic events")
    index = {name: i for i, name in enumerate(chosen)}
    manager = BddManager(node_budget=node_budget)
    node_of: dict[str, int] = {
        name: manager.var(index[name]) for name in tree.events
    }
    for gate in tree.gates_bottom_up():
        children = [node_of[c] for c in gate.children]
        if gate.gate_type is GateType.AND:
            node_of[gate.name] = manager.conjoin(children)
        elif gate.gate_type is GateType.OR:
            node_of[gate.name] = manager.disjoin(children)
        else:
            assert gate.k is not None
            node_of[gate.name] = manager.atleast(gate.k, children)
    gate_roots = {name: node_of[name] for name in tree.gates}
    return CompiledTree(tree, manager, node_of[tree.top], tuple(chosen), gate_roots)


def exact_probability(tree: FaultTree) -> float:
    """Exact ``p(FT)`` (compile + evaluate in one call)."""
    return compile_tree(tree).probability()


def exact_mcs(tree: FaultTree) -> CutSetList:
    """Exact minimal cutsets of ``tree`` (compile + extract in one call)."""
    return compile_tree(tree).minimal_cutsets()


def _minimal_solutions(manager: BddManager, root: int) -> list[frozenset[int]]:
    """Minimal solutions of a monotone BDD, as explicit variable sets.

    The recursion over the positive Shannon expansion
    ``f = x·f_high + f_low`` of a monotone function:

    * every minimal solution of ``f_low`` is one of ``f``;
    * a minimal solution ``m`` of ``f_high`` yields ``{x} ∪ m`` unless
      some minimal solution of ``f_low`` is contained in ``m`` (then it
      is subsumed).

    Memoised per BDD node, so shared subfunctions are solved once.  The
    result is materialised as Python sets, which bounds scalability by
    the number of minimal cutsets — acceptable for an exact oracle.
    """
    cache: dict[int, list[frozenset[int]]] = {
        FALSE: [],
        TRUE: [frozenset()],
    }

    order = manager._nodes_below(root)
    for node in order:
        var = manager.top_var(node)
        low, high = manager.cofactors(node, var)
        low_solutions = cache[low]
        high_solutions = cache[high]
        kept: list[frozenset[int]] = list(low_solutions)
        for m in high_solutions:
            if any(s <= m for s in low_solutions):
                continue
            kept.append(m | {var})
        cache[node] = kept
    return cache[root]
