"""Production BDD quantification of static fault trees.

Wraps :func:`repro.bdd.ft_bdd.compile_tree` with the two scaling levers
that turn the exact engine from a ≤24-event test oracle into the default
static quantifier (the "BDDs Strike Back" posture):

* **ordering selection** — ``ordering="auto"`` tries the heuristics of
  :data:`repro.bdd.ordering.AUTO_CANDIDATES` in sequence, each under the
  node budget, and keeps the first that compiles.  A tree whose DFS
  order blows up often compiles comfortably under the weight or depth
  order;
* **module-wise decomposition** — independent subtrees (modules, found
  by :func:`repro.ft.modules.find_modules`) are statistically
  independent of the rest of the tree, so each module compiles into its
  *own* small BDD and its exact probability substitutes for the module
  gate as a pseudo basic event.  Probabilities multiply where the logic
  is independent, and the node budget applies per compilation scope
  instead of to one monolithic diagram.

Everything stays exact: Shannon-expansion probability on each scope,
independence across scopes.  When every ordering trips the budget on
some scope, :class:`~repro.errors.BddBudgetExceeded` propagates and the
caller (the analyzer's static-engine selection) falls back to cutset
quantification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.ft_bdd import CompiledTree, compile_tree
from repro.bdd.ordering import AUTO_CANDIDATES, ORDERINGS
from repro.errors import BddBudgetExceeded
from repro.ft.modules import find_modules
from repro.ft.tree import BasicEvent, FaultTree

__all__ = ["BddQuantification", "quantify_static_tree"]


@dataclass(frozen=True)
class BddQuantification:
    """Exact quantification of a static fault tree via BDD.

    ``node_count`` sums the reachable nodes over every compilation scope
    (modules plus the top residual), ``ordering`` names the heuristic
    the top scope compiled under, and ``module_orderings`` records any
    scope that needed a different heuristic.  ``n_modules`` counts the
    module scopes compiled separately (0 means the tree was compiled
    monolithically).
    """

    probability: float
    node_count: int
    ordering: str
    n_modules: int
    module_orderings: tuple[str, ...] = ()


def _compile_under(
    tree: FaultTree, ordering: str, node_budget: int | None
) -> tuple[CompiledTree, str]:
    """Compile ``tree`` under one ordering, or try the auto candidates.

    Returns the compiled tree and the name of the heuristic that
    succeeded.  With ``ordering="auto"``, each candidate gets the full
    node budget; the error of the *last* candidate propagates when all
    of them trip it.
    """
    if ordering != "auto":
        heuristic = ORDERINGS.get(ordering)
        if heuristic is None:
            raise ValueError(f"unknown BDD ordering {ordering!r}")
        return compile_tree(tree, heuristic(tree), node_budget), ordering
    last_error: BddBudgetExceeded | None = None
    for name in AUTO_CANDIDATES:
        try:
            compiled = compile_tree(tree, ORDERINGS[name](tree), node_budget)
        except BddBudgetExceeded as error:
            last_error = error
            continue
        return compiled, name
    assert last_error is not None
    raise last_error


def _local_scope(
    tree: FaultTree,
    root: str,
    module_probability: dict[str, float],
    pseudo_cache: dict[str, BasicEvent],
) -> FaultTree:
    """The subtree at ``root``, truncated at already-solved modules.

    Walks down from ``root``; any child gate with an entry in
    ``module_probability`` becomes a pseudo basic event of that name and
    probability, so the returned tree covers only the logic *between*
    ``root`` and its nested modules.
    """
    gates = []
    events: dict[str, BasicEvent] = {}
    stack = [root]
    seen: set[str] = set()
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if tree.is_event(name):
            events[name] = tree.events[name]
            continue
        if name != root and name in module_probability:
            pseudo = pseudo_cache.get(name)
            if pseudo is None:
                # Exact module probabilities live in [0, 1]; clamp away
                # float dust so BasicEvent's range check never trips.
                p = min(max(module_probability[name], 0.0), 1.0)
                pseudo = BasicEvent(
                    name, p, description="module pseudo-event"
                )
                pseudo_cache[name] = pseudo
            events[name] = pseudo
            continue
        gates.append(tree.gates[name])
        stack.extend(tree.children(name))
    return FaultTree(root, events.values(), gates, name=f"{tree.name}/{root}")


def quantify_static_tree(
    tree: FaultTree,
    node_budget: int | None = None,
    ordering: str = "auto",
    use_modules: bool = True,
) -> BddQuantification:
    """Exact top-event probability of a static fault tree.

    ``ordering`` is a name from :data:`repro.bdd.ordering.ORDERINGS` or
    ``"auto"`` (try :data:`~repro.bdd.ordering.AUTO_CANDIDATES` in
    sequence under the budget).  With ``use_modules`` (the default), the
    tree is cut at its module gates and each scope compiles separately —
    processed bottom-up over an explicit worklist, so arbitrarily deep
    module nesting (chain trees) never recurses.

    Raises :class:`~repro.errors.BddBudgetExceeded` when some scope
    cannot be compiled under ``node_budget`` by any candidate ordering.
    """
    module_probability: dict[str, float] = {}
    pseudo_cache: dict[str, BasicEvent] = {}
    module_orderings: list[str] = []
    total_nodes = 0
    scopes: list[str] = []
    if use_modules:
        report = find_modules(tree)
        # Bottom-up over all module gates below the top: children-first
        # topological order guarantees nested modules are solved before
        # the scopes that reference them.
        module_set = {m for m in report.modules if m != tree.top}
        scopes = [
            name for name in tree.topological_order() if name in module_set
        ]
    for scope_root in scopes:
        local = _local_scope(
            tree, scope_root, module_probability, pseudo_cache
        )
        compiled, used = _compile_under(local, ordering, node_budget)
        total_nodes += compiled.node_count
        module_orderings.append(used)
        module_probability[scope_root] = compiled.probability()
    top_scope = _local_scope(tree, tree.top, module_probability, pseudo_cache)
    compiled, used = _compile_under(top_scope, ordering, node_budget)
    total_nodes += compiled.node_count
    return BddQuantification(
        probability=compiled.probability(),
        node_count=total_nodes,
        ordering=used,
        n_modules=len(scopes),
        module_orderings=tuple(
            name for name in module_orderings if name != used
        ),
    )
