"""Command-line interface: ``sdft <command>`` (or ``python -m repro``).

Commands
--------
``analyze``     Full SD analysis of a model file (static or SD).
``lint``        Static diagnostics of a model, without analysing it.
``simplify``    Shrink a model through the BDD-verified rewrite engine.
``mcs``         Generate and list minimal cutsets.
``importance``  Fussell–Vesely / Birnbaum / RAW / RRW table.
``classify``    Trigger-gate classes (predicts quantification cost).
``curve``       Failure probability over multiple horizons.
``simulate``    Monte-Carlo cross-check of an SD model.
``demo-bwr``    Build the fictive BWR study, save or analyse it.
``trace``       Summarise a JSONL trace written by ``analyze --trace``.
``chaos``       Seeded fault-injection campaign asserting runs fail
                loudly or stay bracketed (see ``docs/robustness.md``);
                ``--catalog service`` runs the deterministic service
                scenarios instead (see ``docs/service.md``).
``serve``       Long-lived stdio-JSONL analysis daemon: resumable
                sessions, incremental what-if re-analysis, deadlines,
                admission control and a crash-safe journal.

Models are JSON files in the format of :mod:`repro.models.formats`;
files ending in ``.xml``/``.mef`` are read as Open-PSA fault trees
(:mod:`repro.models.openpsa`).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.sdft import SdFaultTree
from repro.ft.importance import importance
from repro.ft.mocus import MocusOptions, mocus
from repro.models.formats import load_model, save_model

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except Exception as error:  # surfaced as a message, not a traceback
        print(f"error: {error}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sdft",
        description="Scalable analysis of fault trees with dynamic features",
    )
    sub = parser.add_subparsers(required=True)

    analyze_cmd = sub.add_parser("analyze", help="full SD analysis of a model")
    analyze_cmd.add_argument("model", help="model JSON file")
    _add_analysis_arguments(analyze_cmd)
    analyze_cmd.add_argument(
        "--top", type=int, default=10, help="number of top cutsets to print"
    )
    analyze_cmd.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for quantification: a number, or 'auto' "
        "for one per CPU; unique cutset models are deduplicated and "
        "solved once on a process pool (default 1 = serial)",
    )
    analyze_cmd.add_argument(
        "--lump",
        action="store_true",
        help="reduce per-cutset chains by exact lumping before solving",
    )
    analyze_cmd.add_argument(
        "--bounds",
        action="store_true",
        help="bound oversized cutset chains instead of failing",
    )
    analyze_cmd.add_argument(
        "--degrade",
        action="store_true",
        help="per-cutset fault isolation: retry failing cutsets down the "
        "degradation ladder (exact -> lumped -> Monte-Carlo -> bound) "
        "instead of aborting the run",
    )
    analyze_cmd.add_argument(
        "--wall-seconds",
        type=float,
        default=None,
        help="wall-clock budget; on exhaustion the run returns a partial "
        "result with a conservative remainder bound",
    )
    analyze_cmd.add_argument(
        "--max-total-states",
        type=int,
        default=None,
        help="budget on total chain states solved across the run",
    )
    analyze_cmd.add_argument(
        "--budget-cutsets",
        type=int,
        default=None,
        help="soft cap on generated cutsets (truncates, never crashes)",
    )
    analyze_cmd.add_argument(
        "--mc-runs",
        type=int,
        default=4_000,
        help="runs per Monte-Carlo fallback simulation (with --degrade)",
    )
    analyze_cmd.add_argument(
        "--mc-max-runs",
        type=int,
        default=None,
        metavar="N",
        help="cap on total trajectories per rare-event estimate "
        "(defaults to --mc-runs)",
    )
    analyze_cmd.add_argument(
        "--mc-target-re",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="target 95%% relative half-width of the Monte-Carlo rung's "
        "rare-event estimator (default 0.10); the health report states "
        "the precision actually achieved",
    )
    analyze_cmd.add_argument(
        "--mc-engine",
        choices=("auto", "crude", "is", "splitting"),
        default="auto",
        help="estimator of the Monte-Carlo rung: crude sampling, "
        "failure-biased importance sampling ('is'), importance "
        "splitting, or 'auto' (a pilot batch decides; default)",
    )
    analyze_cmd.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="snapshot MOCUS/quantification progress to PATH periodically",
    )
    analyze_cmd.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        help="seconds between checkpoint snapshots (default 30)",
    )
    analyze_cmd.add_argument(
        "--resume",
        action="store_true",
        help="resume from the --checkpoint file if it exists",
    )
    analyze_cmd.add_argument(
        "--lint",
        action="store_true",
        help="run the model linter first: error-level diagnostics reject "
        "the model before any analysis work; warnings ride on the "
        "run summary",
    )
    analyze_cmd.add_argument(
        "--verify",
        choices=("off", "cheap", "full"),
        default="off",
        help="runtime self-verification: 'cheap' asserts invariants "
        "(probabilities in range, intervals ordered, worst-case "
        "dominance) at every stage boundary; 'full' additionally "
        "cross-checks a sample of results through independent code "
        "paths (default off)",
    )
    analyze_cmd.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall deadline on the process-pool farm (with "
        "--jobs > 1); an overrunning task is terminated and its "
        "cutsets recovered conservatively in the parent",
    )
    analyze_cmd.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="directory of the persistent cross-run solve cache "
        "(default: $REPRO_CACHE_DIR, else ~/.cache/repro); re-analysis "
        "of an unchanged model is served from it near-instantly",
    )
    analyze_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent solve cache for this run",
    )
    analyze_cmd.add_argument(
        "--static-engine",
        choices=("auto", "bdd", "mcs"),
        default="auto",
        help="quantifier for static (trigger-free) models: 'bdd' compiles "
        "the tree into a BDD and serves the exact probability, 'mcs' "
        "keeps the cutset aggregation, 'auto' (default) prefers the "
        "BDD and falls back to cutsets when the node budget trips",
    )
    analyze_cmd.add_argument(
        "--bdd-node-budget",
        type=int,
        default=200_000,
        metavar="N",
        help="node-table cap per BDD compilation scope (default 200000); "
        "exceeding it falls back to cutset quantification cleanly",
    )
    analyze_cmd.add_argument(
        "--simplify",
        action="store_true",
        help="run the BDD-verified rewrite engine first and analyse the "
        "smaller equivalent model; unverifiable rewrites are discarded, "
        "so this never changes the answer",
    )
    _add_observability_arguments(analyze_cmd)
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    lint_cmd = sub.add_parser(
        "lint", help="static diagnostics of a model (no analysis is run)"
    )
    lint_cmd.add_argument(
        "model", nargs="?", default=None, help="model JSON (or Open-PSA XML) file"
    )
    _add_analysis_arguments(lint_cmd)
    lint_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    lint_cmd.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="exit with code 1 when findings at or above this severity "
        "exist (default error)",
    )
    lint_cmd.add_argument(
        "--disable",
        default="",
        metavar="CODES",
        help="comma-separated diagnostic codes to skip (e.g. SD103,SD402)",
    )
    lint_cmd.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override a rule's severity (e.g. --severity SD201=error); "
        "repeatable",
    )
    lint_cmd.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_cmd.set_defaults(handler=_cmd_lint)

    simplify_cmd = sub.add_parser(
        "simplify",
        help="shrink a model through the BDD-verified rewrite engine",
    )
    simplify_cmd.add_argument(
        "model", help="model JSON (or Open-PSA XML) file"
    )
    simplify_cmd.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the simplified model to PATH (JSON)",
    )
    simplify_cmd.add_argument(
        "--check",
        action="store_true",
        help="gate mode: exit 1 unless every applied rewrite round was "
        "BDD-verified within the node budget (a clean no-op model "
        "passes); for CI over a model corpus",
    )
    simplify_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    simplify_cmd.add_argument(
        "--node-budget",
        type=int,
        default=200_000,
        metavar="N",
        help="node-table cap for the per-round equivalence proofs "
        "(default 200000); an overrunning round is reverted, earlier "
        "verified rounds are kept",
    )
    simplify_cmd.set_defaults(handler=_cmd_simplify)

    mcs_cmd = sub.add_parser("mcs", help="generate minimal cutsets")
    mcs_cmd.add_argument("model", help="model JSON file")
    _add_analysis_arguments(mcs_cmd)
    mcs_cmd.add_argument(
        "--limit", type=int, default=25, help="number of cutsets to print"
    )
    mcs_cmd.set_defaults(handler=_cmd_mcs)

    importance_cmd = sub.add_parser("importance", help="importance measures")
    importance_cmd.add_argument("model", help="model JSON file")
    _add_analysis_arguments(importance_cmd)
    importance_cmd.add_argument(
        "--limit", type=int, default=20, help="number of events to print"
    )
    importance_cmd.set_defaults(handler=_cmd_importance)

    classify_cmd = sub.add_parser(
        "classify", help="classify the triggering gates (predicts cost)"
    )
    classify_cmd.add_argument("model", help="SD model JSON file")
    classify_cmd.set_defaults(handler=_cmd_classify)

    curve_cmd = sub.add_parser(
        "curve", help="failure probability over multiple horizons"
    )
    curve_cmd.add_argument("model", help="model JSON file")
    curve_cmd.add_argument(
        "--horizons",
        default="24,48,72,96",
        help="comma-separated horizons in hours",
    )
    curve_cmd.add_argument("--cutoff", type=float, default=1e-15)
    curve_cmd.set_defaults(handler=_cmd_curve)

    simulate_cmd = sub.add_parser("simulate", help="Monte-Carlo estimate")
    simulate_cmd.add_argument("model", help="SD model JSON file")
    simulate_cmd.add_argument("--horizon", type=float, default=24.0)
    simulate_cmd.add_argument("--runs", type=int, default=20_000)
    simulate_cmd.add_argument("--seed", type=int, default=None)
    simulate_cmd.set_defaults(handler=_cmd_simulate)

    demo_cmd = sub.add_parser("demo-bwr", help="build the fictive BWR study")
    demo_cmd.add_argument("--save", help="write the model to this JSON file")
    demo_cmd.add_argument("--horizon", type=float, default=24.0)
    demo_cmd.add_argument("--cutoff", type=float, default=1e-15)
    demo_cmd.add_argument(
        "--triggers",
        default="all",
        help="comma-separated trigger stages, 'all' or 'none'",
    )
    demo_cmd.add_argument("--repair-rate", type=float, default=0.05)
    demo_cmd.add_argument("--phases", type=int, default=1)
    demo_cmd.add_argument("--jobs", default="1", metavar="N")
    _add_observability_arguments(demo_cmd)
    demo_cmd.set_defaults(handler=_cmd_demo_bwr)

    trace_cmd = sub.add_parser(
        "trace", help="summarise a JSONL trace written by analyze --trace"
    )
    trace_cmd.add_argument("trace_file", help="JSONL trace file")
    trace_cmd.set_defaults(handler=_cmd_trace)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="seeded chaos campaign: prove runs fail loudly, never wrongly",
    )
    chaos_cmd.add_argument(
        "model",
        nargs="?",
        default=None,
        help="model JSON (or Open-PSA XML) file; omitted = built-in BWR demo",
    )
    chaos_cmd.add_argument(
        "--runs", type=int, default=20, help="faulted runs (default 20)"
    )
    chaos_cmd.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    chaos_cmd.add_argument("--horizon", type=float, default=24.0)
    chaos_cmd.add_argument(
        "--cutoff",
        type=float,
        default=1e-10,
        help="MCS cutoff c* (default 1e-10: fast campaign runs)",
    )
    chaos_cmd.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes; > 1 adds process-level faults "
        "(worker kill, task hang) to the schedule (default 1)",
    )
    chaos_cmd.add_argument(
        "--verify",
        choices=("cheap", "full"),
        default="cheap",
        help="verification mode armed during faulted runs (default cheap)",
    )
    chaos_cmd.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write the JSON campaign report to FILE",
    )
    chaos_cmd.add_argument(
        "--catalog",
        choices=("default", "service"),
        default="default",
        help="'default' = randomized fault-injection campaign against "
        "one in-process analysis; 'service' = the deterministic "
        "service scenarios (deadline expiry, daemon SIGKILL + journal "
        "recovery, journal corruption) — ignores --runs/--seed/--jobs",
    )
    chaos_cmd.set_defaults(handler=_cmd_chaos)

    serve_cmd = sub.add_parser(
        "serve",
        help="stdio-JSONL analysis daemon (one JSON request per line on "
        "stdin, one response per line on stdout; see docs/service.md)",
    )
    _add_analysis_arguments(serve_cmd)
    serve_cmd.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for quantification (default 1 = serial)",
    )
    serve_cmd.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="crash-safe request journal; a daemon restarted on the same "
        "file replays completed loads/edits and aborts in-flight work",
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="bounded request queue depth; further analysis requests are "
        "answered immediately with a load-shed error (default 16)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="request worker threads (default 1; sessions are locked, so "
        "extra workers only help across distinct sessions)",
    )
    serve_cmd.add_argument(
        "--request-trace",
        metavar="FILE",
        default=None,
        help="append one JSONL record per request/response pair to FILE",
    )
    serve_cmd.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="directory of the persistent cross-run solve cache "
        "(default: $REPRO_CACHE_DIR, else ~/.cache/repro)",
    )
    serve_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent solve cache",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)
    return parser


def _add_analysis_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument("--horizon", type=float, default=24.0, help="mission time (h)")
    command.add_argument("--cutoff", type=float, default=1e-15, help="MCS cutoff c*")


def _add_observability_arguments(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL trace of the run (phase/solve/pool-task "
        "spans plus metrics) to FILE; inspect with 'sdft trace FILE'",
    )
    command.add_argument(
        "--metrics",
        action="store_true",
        help="collect pipeline metrics and print their highlights",
    )


def _resolve_cache_dir(args: argparse.Namespace) -> "str | None":
    """The persistent cache location for a CLI run (``None`` = off).

    The CLI defaults the cache *on* (unlike the library, whose
    :class:`AnalysisOptions` default is off): repeated command-line
    analyses of the same model are the exact workload the cache exists
    for.  ``--no-cache`` opts out; ``--cache-dir`` overrides the
    ``$REPRO_CACHE_DIR`` / ``~/.cache/repro`` default.
    """
    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    from repro.perf.cache import default_cache_dir

    return default_cache_dir()


def _load_any(path: str):
    """Load a model file: Open-PSA XML by extension, otherwise JSON."""
    if str(path).endswith((".xml", ".mef")):
        from repro.models.openpsa import load_openpsa

        return load_openpsa(path)
    return load_model(path)


def _load_sdft(path: str) -> SdFaultTree:
    model = _load_any(path)
    if isinstance(model, SdFaultTree):
        return model
    # Promote a static tree: an SD tree with no dynamic events.
    return SdFaultTree(
        model.top,
        model.events.values(),
        [],
        model.gates.values(),
        {},
        name=model.name,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    sdft = _load_sdft(args.model)
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    options = AnalysisOptions(
        horizon=args.horizon,
        cutoff=args.cutoff,
        lint=getattr(args, "lint", False),
        simplify=getattr(args, "simplify", False),
        lump_chains=getattr(args, "lump", False),
        on_oversize="bounds" if getattr(args, "bounds", False) else "raise",
        fault_isolation=args.degrade,
        wall_seconds=args.wall_seconds,
        max_total_states=args.max_total_states,
        budget_cutsets=args.budget_cutsets,
        monte_carlo_runs=(
            args.mc_max_runs if args.mc_max_runs is not None else args.mc_runs
        ),
        mc_target_rel_error=args.mc_target_re,
        mc_engine=args.mc_engine,
        checkpoint_path=args.checkpoint,
        checkpoint_interval_seconds=args.checkpoint_interval,
        resume=args.resume,
        verify=args.verify,
        jobs=args.jobs,
        pool_task_timeout_seconds=args.task_timeout,
        trace_path=args.trace,
        collect_metrics=args.metrics,
        cache_dir=_resolve_cache_dir(args),
        static_engine=args.static_engine,
        bdd_node_budget=args.bdd_node_budget,
    )
    result = analyze(sdft, options)
    print(result.summary())
    for event in result.health.events:
        if event.stage == "cache":
            print(event.message)
    if args.trace:
        print(f"trace written to {args.trace} (inspect with: sdft trace {args.trace})")
    if result.n_bounded_cutsets and not result.is_degraded:
        lower, upper = result.failure_probability_interval()
        print(
            f"{result.n_bounded_cutsets} cutsets bounded (oversized chains): "
            f"true value in [{lower:.3e}, {upper:.3e}]"
        )
    print()
    print(f"top {args.top} cutsets by quantified probability:")
    for record in result.top_contributors(args.top):
        events = " ".join(sorted(record.cutset))
        tag = "dynamic" if record.is_dynamic else "static"
        print(f"  {record.probability:.3e}  [{tag}]  {events}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import LintConfig, Severity, all_rules, lint

    if args.list_rules:
        print(f"{'code':7s} {'severity':8s} {'name':28s} description")
        for registered in all_rules():
            print(
                f"{registered.code:7s} {registered.default_severity.value:8s} "
                f"{registered.name:28s} {registered.description}"
            )
        return 0
    if args.model is None:
        print("error: a model file is required (or use --list-rules)", file=sys.stderr)
        return 2

    known_codes = {registered.code for registered in all_rules()}
    disabled = frozenset(
        code.strip().upper() for code in args.disable.split(",") if code.strip()
    )
    unknown = sorted(disabled - known_codes)
    if unknown:
        print(
            f"error: --disable names unknown rule codes: {', '.join(unknown)} "
            f"(see 'sdft lint --list-rules')",
            file=sys.stderr,
        )
        return 2
    overrides: dict[str, Severity] = {}
    for item in args.severity:
        code, separator, level = item.partition("=")
        if not separator or not code.strip() or not level.strip():
            print(
                f"error: --severity expects CODE=LEVEL, got {item!r}",
                file=sys.stderr,
            )
            return 2
        try:
            overrides[code.strip().upper()] = Severity.parse(level)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    unknown = sorted(set(overrides) - known_codes)
    if unknown:
        print(
            f"error: --severity names unknown rule codes: {', '.join(unknown)} "
            f"(see 'sdft lint --list-rules')",
            file=sys.stderr,
        )
        return 2

    report = lint(
        _load_sdft(args.model),
        LintConfig(
            horizon=args.horizon,
            cutoff=args.cutoff,
            disabled=disabled,
            severity_overrides=overrides,
        ),
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    threshold = Severity.parse(args.fail_on)
    return 1 if report.at_or_above(threshold) else 0


def _cmd_simplify(args: argparse.Namespace) -> int:
    from repro.sem import simplify

    sdft = _load_sdft(args.model)
    result = simplify(sdft, node_budget=args.node_budget)
    if args.format == "json":
        import json

        payload = {
            "model": sdft.name,
            "gates_before": result.gates_before,
            "gates_after": result.gates_after,
            "events_before": result.events_before,
            "events_after": result.events_after,
            "rewrites": result.counts_by_kind(),
            "verified_scopes": result.verified_scopes,
            "rounds": result.rounds,
            "budget_hit": result.budget_hit,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{sdft.name}: {result.gates_before} -> {result.gates_after} gates, "
            f"{result.events_before} -> {result.events_after} events "
            f"({result.rounds} rounds, {result.verified_scopes} scopes "
            f"BDD-verified)"
        )
        for kind, count in sorted(result.counts_by_kind().items()):
            print(f"  {count:4d}x {kind}")
        if not result.changed:
            print("  no verified rewrites apply; the model is already tight")
        if result.budget_hit:
            print(
                "  note: the BDD node budget tripped; unverifiable rewrites "
                "were discarded (raise --node-budget to verify more)"
            )
    if args.output:
        save_model(result.model, args.output)
        print(f"simplified model written to {args.output}")
    if args.check and result.budget_hit:
        print(
            "check failed: the node budget prevented full verification",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_mcs(args: argparse.Namespace) -> int:
    model = _load_any(args.model)
    if isinstance(model, SdFaultTree):
        from repro.core.to_static import to_static

        tree = to_static(model, args.horizon).tree
    else:
        tree = model
    result = mocus(tree, MocusOptions(cutoff=args.cutoff))
    cutsets = result.cutsets
    print(f"{len(cutsets)} minimal cutsets above {args.cutoff:g}")
    print(f"rare-event sum: {cutsets.rare_event():.3e}")
    print(f"size histogram: {cutsets.size_histogram()}")
    for i in range(min(args.limit, len(cutsets))):
        print(f"  {cutsets.probability_of(i):.3e}  {' '.join(sorted(cutsets[i]))}")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    model = _load_any(args.model)
    if isinstance(model, SdFaultTree):
        from repro.core.to_static import to_static

        tree = to_static(model, args.horizon).tree
    else:
        tree = model
    cutsets = mocus(tree, MocusOptions(cutoff=args.cutoff)).cutsets
    measures = importance(cutsets)
    ranked = sorted(measures.values(), key=lambda m: -m.fussell_vesely)
    header = f"{'event':40s} {'FV':>10s} {'Birnbaum':>10s} {'RAW':>10s} {'RRW':>10s}"
    print(header)
    for m in ranked[: args.limit]:
        print(
            f"{m.event:40s} {m.fussell_vesely:10.3e} {m.birnbaum:10.3e} "
            f"{m.risk_achievement_worth:10.3f} {m.risk_reduction_worth:10.3f}"
        )
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.classify import classification_report

    sdft = _load_sdft(args.model)
    report = classification_report(sdft)
    if not report.by_gate:
        print("no triggering gates in this model")
        return 0
    print(f"{'triggering gate':40s} class")
    for gate, trigger_class in sorted(report.by_gate.items()):
        print(f"{gate:40s} {trigger_class.value}")
    print()
    if report.all_efficient:
        print(
            "all triggers are static-branching or uniform static-joins: "
            "per-cutset chains stay small"
        )
    elif report.any_general:
        print(
            "warning: general-case triggers present — the per-cutset "
            "models pull in static guards and may grow; consider "
            "AnalysisOptions(on_oversize='bounds')"
        )
    else:
        print(
            "static joins without uniform triggering present: added "
            "trigger gates fall back to the general case"
        )
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from repro.core.analyzer import analyze_curve

    sdft = _load_sdft(args.model)
    horizons = [float(h) for h in args.horizons.split(",") if h.strip()]
    curve = analyze_curve(
        sdft, horizons, AnalysisOptions(cutoff=args.cutoff)
    )
    print(f"{'horizon (h)':>12s} {'P(failure <= t)':>16s}")
    for horizon in sorted(curve):
        print(f"{horizon:12g} {curve[horizon]:16.3e}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.ctmc.simulate import simulate_failure_probability

    sdft = _load_sdft(args.model)
    result = simulate_failure_probability(
        sdft, args.horizon, n_runs=args.runs, seed=args.seed
    )
    low, high = result.confidence_interval
    print(
        f"P(failure <= {args.horizon} h) ~= {result.estimate:.3e} "
        f"(95% CI [{low:.3e}, {high:.3e}], {result.n_failures}/{result.n_runs} runs)"
    )
    return 0


def _cmd_demo_bwr(args: argparse.Namespace) -> int:
    from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr

    if args.triggers == "all":
        triggers: tuple[str, ...] = TRIGGER_STAGES
    elif args.triggers == "none":
        triggers = ()
    else:
        triggers = tuple(s.strip() for s in args.triggers.split(",") if s.strip())
    sdft = build_bwr(
        BwrConfig(
            triggers=triggers,
            repair_rate=args.repair_rate,
            phases=args.phases,
        )
    )
    if args.save:
        save_model(sdft, args.save)
        print(f"saved {sdft!r} to {args.save}")
        return 0
    result = analyze(
        sdft,
        AnalysisOptions(
            horizon=args.horizon,
            cutoff=args.cutoff,
            jobs=args.jobs,
            trace_path=args.trace,
            collect_metrics=args.metrics,
        ),
    )
    print(result.summary())
    if args.trace:
        print(f"trace written to {args.trace} (inspect with: sdft trace {args.trace})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import render_trace_report

    print(render_trace_report(args.trace_file))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.robust.chaos import run_campaign

    if args.model is not None:
        sdft = _load_sdft(args.model)
    else:
        from repro.models.bwr import build_bwr

        sdft = build_bwr()
    if args.catalog == "service":
        from repro.service.chaos import run_service_campaign

        report = run_service_campaign(
            sdft,
            options=AnalysisOptions(horizon=args.horizon, cutoff=args.cutoff),
        )
        print(report.summary())
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"campaign report written to {args.report}")
        return 0 if report.ok else 1
    report = run_campaign(
        sdft,
        runs=args.runs,
        seed=args.seed,
        options=AnalysisOptions(horizon=args.horizon, cutoff=args.cutoff),
        verify=args.verify,
        jobs=args.jobs,
    )
    print(report.summary())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"campaign report written to {args.report}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import ServiceDaemon

    options = AnalysisOptions(
        horizon=args.horizon,
        cutoff=args.cutoff,
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args),
    )
    daemon = ServiceDaemon(
        options,
        journal_path=args.journal,
        max_queue=args.max_queue,
        workers=args.workers,
        trace_path=args.request_trace,
    )
    return daemon.serve()


if __name__ == "__main__":
    sys.exit(main())
