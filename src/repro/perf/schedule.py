"""Largest-first scheduling of unique cutset solves.

A process pool finishing a batch of independent solves is bounded by
whichever task lands last; dispatching the biggest chains first (the
classic LPT heuristic) keeps the stragglers short and cuts the pool's
tail latency.  The chain sizes are not known before the product is
built, so tasks are ordered by a cheap upper-bound *estimate*: the
product of the per-event local state-space sizes of the cutset's model.
"""

from __future__ import annotations

__all__ = ["estimate_chain_states", "order_largest_first", "plan_batches"]

#: Estimates are capped here — beyond it the ordering no longer matters
#: and unbounded products of large chains would overflow usefully-sized
#: integers on serialisation.
ESTIMATE_CAP = 10**12


def estimate_chain_states(model) -> int:
    """Upper bound on the product-chain size of an ``FT_C`` model.

    The product chain interleaves every basic event's local chain, so
    its reachable state space is at most the product of the local sizes
    (dynamic events contribute their CTMC's states, static guards two
    local states).  Reachability pruning usually lands far below the
    bound; for *ranking* solves by expected cost the bound is enough.
    """
    estimate = 1
    for event in model.dynamic_events.values():
        estimate *= max(1, event.chain.n_states)
        if estimate >= ESTIMATE_CAP:
            return ESTIMATE_CAP
    for _ in model.static_events:
        estimate *= 2
        if estimate >= ESTIMATE_CAP:
            return ESTIMATE_CAP
    return estimate


def order_largest_first(tasks) -> list:
    """Sort solve tasks by descending estimated chain size.

    Ties keep submission order (`sorted` is stable), so the schedule is
    deterministic for a deterministic task list.
    """
    return sorted(tasks, key=lambda task: -task.estimated_states)


def plan_batches(tasks, n_batches: int) -> list[list]:
    """Pack solve tasks into ``n_batches`` balanced batches (greedy LPT).

    Tasks are taken largest-first and each is appended to the currently
    lightest batch (by summed estimated states) — the classic
    longest-processing-time makespan heuristic, reused here to balance
    *batch* cost so one IPC round-trip per batch amortises many solves
    without creating a straggler batch.

    Ties pick the lowest batch index, so for a deterministic task list
    the plan is deterministic.  Empty batches are dropped; batch
    internal order is largest-first (big solves fail fast).
    """
    n_batches = max(1, min(n_batches, len(tasks)))
    batches: list[list] = [[] for _ in range(n_batches)]
    loads = [0] * n_batches
    for task in order_largest_first(tasks):
        lightest = loads.index(min(loads))
        batches[lightest].append(task)
        # Every task costs at least 1 so counts stay balanced even when
        # the state estimates are all tiny.
        loads[lightest] += max(1, task.estimated_states)
    return [batch for batch in batches if batch]
