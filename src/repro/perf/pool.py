"""The process-pool solver farm for unique cutset models.

Each :class:`SolveTask` carries one unique ``FT_C`` model (picklable —
plain data all the way down) plus its solver knobs and per-task
resource allowances; :func:`solve_task` runs in a worker process and
mirrors exactly the solving section of
:func:`repro.core.quantify.quantify_model`, including the fault-
injection checkpoints, so parallel runs degrade identically to serial
ones under the same faults.

Failures never escape a worker as exceptions: every error is captured
into the returned :class:`SolveResult`, and the parent decides how to
recover (the analyzer re-runs the affected cutsets through the PR-1
degradation ladder).  A worker that dies outright (a crashed process
breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`) no
longer costs the rest of the batch: the farm rebuilds the pool with
exponential backoff and requeues the unfinished tasks, striking the
task the dead worker was running — a task that kills its worker
repeatedly is *quarantined* (returned as a failure so the parent
re-solves it in-process), and a task that overruns an optional per-task
wall deadline is terminated by a watchdog and returned as a
``"timeout"`` failure.  Every recovery is recorded as a
:class:`FarmEvent` for the run-health report.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.perf.schedule import order_largest_first, plan_batches

__all__ = [
    "FarmEvent",
    "SolveBatch",
    "SolveResult",
    "SolveTask",
    "SolverFarm",
    "resolve_jobs",
    "shutdown_warm_farm",
    "solve_batch",
    "solve_task",
    "warm_farm",
]

#: Watchdog poll period when no per-task deadline is set: frequent
#: enough to observe which futures are *running* (crash attribution),
#: rare enough to cost nothing next to a chain solve.
_WATCH_TICK_SECONDS = 0.1

#: The deduped model table shared with forked workers.  The parent
#: installs it (:meth:`SolverFarm.set_model_table`) *before* the
#: persistent pool forks; children inherit the whole table through the
#: fork snapshot, so a :class:`SolveTask` can reference its model by
#: ``model_index`` instead of pickling the matrices per task.
_MODEL_TABLE: tuple = ()

#: Bumped on every table install; a pool forked under an older epoch
#: holds stale models and is recycled before the next dispatch.
_MODEL_EPOCH: int = 0


def fork_available() -> bool:
    """Whether the ``fork`` start method (inherited state) exists here."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


def resolve_jobs(jobs) -> int:
    """Normalise a ``--jobs`` value to a positive worker count.

    ``"auto"`` (or ``None``) means one worker per CPU the process may
    use; integers (and integer strings) pass through.  ``1`` means the
    serial in-process path — no pool is created at all.
    """
    if jobs is None or jobs == "auto":
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # platforms without CPU affinity
            return os.cpu_count() or 1
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


@dataclass(frozen=True)
class SolveTask:
    """One unique quantification problem, ready to cross a process boundary.

    ``model`` is the cutset's ``FT_C`` :class:`~repro.core.sdft.SdFaultTree`;
    ``cutset`` names the representative cutset (fault-injection context
    and error messages).  ``wall_allowance``/``state_allowance`` bound
    the worker-local budget — the parent derives them from the run
    budget's remaining headroom at dispatch time, so a worker cannot
    overrun the deadline unobserved.  ``estimated_states`` drives the
    largest-first schedule.
    """

    task_id: int
    model: object
    horizon: float
    epsilon: float
    max_chain_states: int
    lump_chains: bool
    cutset: tuple[str, ...]
    wall_allowance: float | None = None
    state_allowance: int | None = None
    estimated_states: int = 0
    #: When set, the worker records a ``pool.task`` span plus solver
    #: metrics and ships them back on the result (parent-side merge).
    collect_obs: bool = False
    #: Dispatch wall-clock (``time.time()``) for queue-wait accounting.
    submitted_at: float | None = None
    #: When ``model`` is ``None``, the index of the model in the
    #: fork-inherited table installed by
    #: :meth:`SolverFarm.set_model_table` — the zero-copy shipping path.
    model_index: int = -1


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one unique solve — value or captured failure.

    ``probability`` is the *dynamic* reachability probability of the
    model (not yet multiplied by any cutset's static factor, which is
    member-specific).  ``error_kind`` classifies captured failures:
    ``"analysis"``/``"numerical"`` for solver errors, ``"budget"`` for
    an exhausted per-task allowance, ``"timeout"`` for a task the
    watchdog terminated, ``"quarantined"`` for a task that killed its
    worker too many times, and ``"crash"`` for anything else
    (including a broken pool).
    """

    task_id: int
    probability: float = 0.0
    chain_states: int = 0
    solve_seconds: float = 0.0
    error: str | None = None
    error_kind: str | None = None
    #: Worker-recorded span payloads (dicts) and metrics snapshot,
    #: shipped back for the parent trace when the task collected them.
    spans: tuple = ()
    metrics: dict | None = None
    queue_wait_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the solve produced a value."""
        return self.error is None


def solve_task(task: SolveTask) -> SolveResult:
    """Solve one unique model; runs inside a worker process.

    Mirrors the dynamic-solve section of
    :func:`repro.core.quantify.quantify_model` step for step — same
    fault-injection stages, same operations in the same order — so a
    fault armed before the pool forked trips here exactly as it would
    have in the serial loop.
    """
    from repro.ctmc.lumping import lump
    from repro.ctmc.product import build_product
    from repro.ctmc.transient import reach_probability
    from repro.errors import AnalysisError, BudgetExceededError, NumericalError
    from repro.obs.core import NULL_OBS, Observability
    from repro.robust import faults
    from repro.robust.budget import Budget

    obs = NULL_OBS
    if task.collect_obs:
        # A worker-local trace slice: span ids are prefixed with the
        # task id so the parent can merge every worker's records into
        # one trace without collisions.
        obs = Observability.collecting(prefix=f"t{task.task_id}.")
    queue_wait = 0.0
    if task.submitted_at is not None:
        queue_wait = max(0.0, time.time() - task.submitted_at)

    def _shipped(result: SolveResult) -> SolveResult:
        if not obs.enabled:
            return result
        import dataclasses

        return dataclasses.replace(
            result,
            spans=tuple(r.to_dict() for r in obs.tracer.records()),
            metrics=obs.metrics.snapshot(),
            queue_wait_seconds=queue_wait,
        )

    started = time.perf_counter()
    cutset = frozenset(task.cutset)
    model = task.model if task.model is not None else _MODEL_TABLE[task.model_index]
    try:
        with obs.tracer.span(
            "pool.task",
            task_id=task.task_id,
            pid=os.getpid(),
            cutset="+".join(task.cutset),
            queue_wait_seconds=queue_wait,
        ) as span:
            # Process-level fault stage: a chaos campaign's ``when``
            # predicate may SIGKILL this very process here, simulating
            # the hard worker death the farm must survive.
            faults.check("worker_kill", cutset=cutset)
            budget = None
            if task.wall_allowance is not None or task.state_allowance is not None:
                budget = Budget(
                    wall_seconds=task.wall_allowance,
                    max_total_states=task.state_allowance,
                )
            faults.check("chain_build", cutset=cutset)
            product = build_product(model, max_states=task.max_chain_states)
            chain = product.chain
            solved_states = product.n_states
            if task.lump_chains:
                faults.check("lump", cutset=cutset)
                lumped = lump(chain.with_absorbing(chain.failed))
                chain = lumped.chain
                solved_states = chain.n_states
            if budget is not None:
                budget.charge_states(solved_states, "quantify")
            faults.check("transient_solve", cutset=cutset)
            probability = reach_probability(
                chain,
                task.horizon,
                epsilon=task.epsilon,
                budget=budget,
                metrics=obs.metrics,
            )
            probability = faults.corrupt(
                "solve_value", probability, cutset=cutset
            )
            span.set(chain_states=solved_states, probability=probability)
    except BudgetExceededError as error:
        return _shipped(
            SolveResult(task.task_id, error=str(error), error_kind="budget")
        )
    except NumericalError as error:
        return _shipped(
            SolveResult(task.task_id, error=str(error), error_kind="numerical")
        )
    except AnalysisError as error:
        return _shipped(
            SolveResult(task.task_id, error=str(error), error_kind="analysis")
        )
    except Exception as error:  # a worker must never raise across the pool
        return _shipped(
            SolveResult(
                task.task_id,
                error=f"{type(error).__name__}: {error}",
                error_kind="crash",
            )
        )
    return _shipped(
        SolveResult(
            task.task_id,
            probability=probability,
            chain_states=solved_states,
            solve_seconds=time.perf_counter() - started,
        )
    )


@dataclass(frozen=True)
class SolveBatch:
    """Many solve tasks shipped across the process boundary in one go.

    One pickle round-trip per *batch* instead of per task — with the
    model table fork-inherited, the payload is just task ids, indices
    and scalar knobs, so the IPC cost per solve collapses.
    """

    tasks: tuple[SolveTask, ...]


def solve_batch(batch: SolveBatch) -> list[SolveResult]:
    """Solve every task of a batch in one worker call, largest first.

    Each task is still solved by :func:`solve_task` with its own error
    capture, so a numerically failing solve cannot take its batch
    siblings down; only a hard worker death loses the batch, and the
    farm then recovers those tasks through the per-task path.
    """
    return [solve_task(task) for task in batch.tasks]


@dataclass(frozen=True)
class FarmEvent:
    """One recovery action of the farm, for health/metrics surfacing.

    ``kind`` is one of ``"rebuild"`` (the pool was recreated after a
    breakage), ``"retry"`` (a crash victim was requeued), ``"timeout"``
    (the watchdog terminated an overrunning task), ``"quarantine"``
    (a task that kills workers was taken off the pool for good),
    ``"probe"`` (a breakage could not be attributed to a task, so the
    next round runs one task at a time to identify the killer) or
    ``"refresh"`` (worker-affecting analysis options changed between
    runs, so the warm pool was deliberately rebuilt — routine, not a
    breakage).
    """

    kind: str
    message: str
    task_id: int | None = None
    cutset: tuple[str, ...] | None = None


class SolverFarm:
    """Run solve tasks on a process pool, yielding results as they land.

    Tasks are dispatched largest-estimated-chain-first (pool tail
    latency); results stream back in completion order — the caller is
    responsible for folding them deterministically.  Every task yields
    exactly one :class:`SolveResult`, whatever happens to its worker:

    * **Worker crash** — a dead worker (SIGKILL, OOM, segfault) breaks
      the whole :class:`~concurrent.futures.ProcessPoolExecutor`; the
      farm rebuilds the pool with exponential backoff and requeues the
      unfinished tasks.  The task a dead worker was running collects a
      *strike* (when the death is too fast to attribute, the suspects
      are probed one per round until it is); at ``max_task_crashes``
      strikes a task is quarantined —
      returned as an ``error_kind="quarantined"`` failure so the parent
      re-solves it in-process — instead of killing pool after pool.
    * **Hung task** — with ``task_timeout`` set, a watchdog terminates
      the workers once a task overruns the deadline; the task is
      returned as an ``error_kind="timeout"`` failure (never retried: a
      task that blew its deadline would blow it again) and the innocent
      tasks are requeued on the rebuilt pool without penalty.
    * **Repeated misfortune** — a task is retried at most
      ``max_task_attempts`` times before it is returned as a
      ``"crash"`` failure.

    Recovery actions are appended to :attr:`events`; the analyzer turns
    them into run-health entries and ``pool.*`` metrics.
    """

    def __init__(
        self,
        jobs: int,
        task_timeout: float | None = None,
        max_task_attempts: int = 3,
        max_task_crashes: int = 2,
        backoff_seconds: float = 0.05,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.max_task_attempts = max_task_attempts
        self.max_task_crashes = max_task_crashes
        self.backoff_seconds = backoff_seconds
        self.events: list[FarmEvent] = []
        self.rebuilds = 0
        self.batch_sizes: list[int] = []
        self._probe_requested = False
        # The persistent (batched-dispatch) pool, kept warm across runs.
        self._pool: ProcessPoolExecutor | None = None
        self._pool_epoch = -1
        self._pool_tainted = False  # forked while faults were armed
        self._table_key: object = None
        #: Fingerprint of the worker-affecting options the pool was
        #: (re)built for; :func:`warm_farm` compares it between runs.
        self.options_key: object = None
        #: Cumulative option-driven rebuilds (never reset per run).
        self.option_refreshes = 0
        self._pending_refresh = False

    def _reset_run_state(self) -> None:
        """Per-run bookkeeping reset so a warm farm reports per-analysis."""
        self.events = []
        self.rebuilds = 0
        self.batch_sizes = []
        self._probe_requested = False
        if self._pending_refresh:
            # Surface the between-runs option refresh in *this* run's
            # events (the per-run reset would otherwise swallow it).
            self._pending_refresh = False
            self.rebuilds += 1
            self.events.append(
                FarmEvent(
                    "refresh",
                    "analysis options affecting workers changed; "
                    "warm pool rebuilt",
                )
            )

    def refresh_workers(self) -> None:
        """Recycle the persistent pool because worker options changed.

        The recorded event is flushed into the *next* run's event list
        (and counted in its ``pool.rebuilds`` metric), since this is
        called between runs.
        """
        self._recycle()
        self.option_refreshes += 1
        self._pending_refresh = True

    @property
    def timeouts(self) -> int:
        """Tasks the watchdog terminated."""
        return sum(1 for e in self.events if e.kind == "timeout")

    @property
    def quarantined(self) -> int:
        """Tasks taken off the pool for repeatedly killing workers."""
        return sum(1 for e in self.events if e.kind == "quarantine")

    @staticmethod
    def _context():
        """Fork where available: cheap task shipping, inherited state."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    def set_model_table(self, models, key) -> None:
        """Install the deduped model table for fork-inherited shipping.

        ``key`` identifies the table's content (e.g. the tuple of group
        fingerprints); re-installing the same key is free.  A changed
        table bumps the global epoch, which recycles the persistent
        pool before its next dispatch — workers forked under the old
        table must never serve the new indices.
        """
        global _MODEL_TABLE, _MODEL_EPOCH
        if key == self._table_key and self._pool is not None:
            return
        _MODEL_TABLE = tuple(models)
        _MODEL_EPOCH += 1
        self._table_key = key

    def _persistent_pool(self) -> ProcessPoolExecutor:
        """The warm pool for batched dispatch, recycled when stale.

        Stale means: forked under an older model table, forked while
        fault injection was armed (workers inherited armed faults), or
        faults are armed *now* (the next fork must inherit them, so the
        chaos/test semantics of ``run()`` carry over to batches).
        """
        from repro.robust import faults

        armed = faults.any_armed()
        if self._pool is not None and (
            self._pool_tainted or armed or self._pool_epoch != _MODEL_EPOCH
        ):
            self._recycle()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=self._context()
            )
            self._pool_epoch = _MODEL_EPOCH
            self._pool_tainted = armed
        return self._pool

    def _recycle(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True)
            except Exception:
                pass  # a broken pool may refuse a clean shutdown
            self._pool = None

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        self._recycle()

    def run_batched(self, tasks: Iterable[SolveTask]) -> Iterator[SolveResult]:
        """Yield one result per task, dispatched in balanced batches.

        The economic path: tasks are packed into ``~4×jobs`` batches by
        :func:`repro.perf.schedule.plan_batches` and submitted to the
        persistent warm pool, one pickle round-trip per batch.  A batch
        lost to a worker death (or any pool breakage) is recovered
        through :meth:`run`'s per-task path, which preserves the
        strike/quarantine/probe hardening; small task lists, ``jobs=1``
        and per-task watchdog deadlines also fall back to :meth:`run`
        (a batch is not interruptible mid-flight, so timeouts need
        per-task dispatch).
        """
        queue = list(tasks)
        self._reset_run_state()
        if not queue:
            return
        if (
            self.task_timeout is not None
            or self.jobs == 1
            or len(queue) <= self.jobs * 2
        ):
            yield from self._run(queue)
            return
        batches = plan_batches(queue, self.jobs * 4)
        self.batch_sizes = [len(batch) for batch in batches]
        pool = self._persistent_pool()
        fallback: list[SolveTask] = []
        try:
            futures = {
                pool.submit(solve_batch, SolveBatch(tuple(batch))): batch
                for batch in batches
            }
        except Exception:
            # The warm pool died between runs (e.g. its processes were
            # reaped); rebuild through the per-task path.
            self._recycle()
            self.rebuilds += 1
            self.events.append(
                FarmEvent(
                    "rebuild",
                    "warm pool was unusable at dispatch; "
                    "recovering through per-task dispatch",
                )
            )
            yield from self._run(queue)
            return
        for future in as_completed(futures):
            batch = futures[future]
            error = future.exception()
            if error is None:
                yield from future.result()
            else:
                self.rebuilds += 1
                self.events.append(
                    FarmEvent(
                        "rebuild",
                        f"batch of {len(batch)} task(s) lost with the "
                        f"pool ({type(error).__name__}); recovering "
                        f"through per-task dispatch",
                    )
                )
                fallback.extend(batch)
        if fallback:
            self._recycle()
            yield from self._run(fallback)

    def run(self, tasks: Iterable[SolveTask]) -> Iterator[SolveResult]:
        """Yield one result per task, in completion order."""
        self._reset_run_state()
        yield from self._run(tasks)

    def _run(self, tasks: Iterable[SolveTask]) -> Iterator[SolveResult]:
        queue = order_largest_first(tasks)
        if not queue:
            return
        attempts: dict[int, int] = {}
        strikes: dict[int, int] = {}
        while queue:
            # After an unattributable breakage, probe: run a single task
            # on the next pool so a repeat breakage names its killer.
            probe = self._probe_requested
            self._probe_requested = False
            batch = queue[:1] if probe else queue
            deferred = queue[1:] if probe else []
            requeue: list[SolveTask] = []
            for item in self._round(batch, attempts, strikes):
                if isinstance(item, SolveResult):
                    yield item
                else:
                    requeue.append(item)
            requeue.extend(deferred)
            if requeue and len(requeue) > len(deferred):
                self.rebuilds += 1
                self.events.append(
                    FarmEvent(
                        "rebuild",
                        f"process pool rebuilt (rebuild {self.rebuilds}); "
                        f"{len(requeue)} task(s) requeued",
                    )
                )
                if self.backoff_seconds > 0:
                    time.sleep(
                        min(
                            1.0,
                            self.backoff_seconds
                            * (2 ** min(self.rebuilds - 1, 6)),
                        )
                    )
            queue = order_largest_first(requeue)

    def _round(
        self,
        batch: list[SolveTask],
        attempts: dict[int, int],
        strikes: dict[int, int],
    ) -> "Iterator[SolveResult | SolveTask]":
        """One pool lifetime: terminal results and tasks to requeue.

        Polls :func:`~concurrent.futures.wait` on a short tick so it can
        observe which futures are *running* — the only portable way to
        attribute a pool breakage to the task that killed the worker —
        and, when ``task_timeout`` is set, to spot overrunning tasks.
        """
        workers = min(self.jobs, len(batch))
        if self.task_timeout is not None:
            tick = max(0.01, min(_WATCH_TICK_SECONDS, self.task_timeout / 4.0))
        else:
            tick = _WATCH_TICK_SECONDS
        dispatch_order = {task.task_id: i for i, task in enumerate(batch)}
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=self._context()
        )
        try:
            pending = {pool.submit(solve_task, task): task for task in batch}
            running_since: dict = {}
            timeout_killed = False
            while pending:
                done, _ = wait(
                    pending, timeout=tick, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in pending:
                    if (
                        future not in done
                        and future not in running_since
                        and future.running()
                    ):
                        running_since[future] = now
                if self.task_timeout is not None and not timeout_killed:
                    overdue = [
                        future
                        for future, since in running_since.items()
                        if future in pending
                        and future not in done
                        and now - since > self.task_timeout
                    ]
                    if overdue:
                        timeout_killed = True
                        for future in overdue:
                            task = pending.pop(future)
                            self.events.append(
                                FarmEvent(
                                    "timeout",
                                    f"task exceeded its "
                                    f"{self.task_timeout:g}s wall deadline; "
                                    f"workers terminated",
                                    task.task_id,
                                    task.cutset,
                                )
                            )
                            yield SolveResult(
                                task.task_id,
                                error=f"task exceeded its "
                                f"{self.task_timeout:g}s wall deadline",
                                error_kind="timeout",
                            )
                        # Terminating the workers breaks the pool; every
                        # remaining future resolves with
                        # BrokenProcessPool and is requeued unpenalised.
                        running_since.clear()
                        for process in list(
                            getattr(pool, "_processes", {}).values()
                        ):
                            process.terminate()
                        continue
                broken: list[tuple[SolveTask, bool]] = []
                for future in done:
                    task = pending.pop(future, None)
                    if task is None:  # already resolved (timed out)
                        continue
                    error = future.exception()
                    if error is None:
                        yield future.result()
                    elif isinstance(error, BrokenProcessPool):
                        broken.append((task, future in running_since))
                    else:
                        yield SolveResult(
                            task.task_id,
                            error=f"worker died: "
                            f"{type(error).__name__}: {error}",
                            error_kind="crash",
                        )
                if broken:
                    # The pool is gone: sweep everything still pending —
                    # a result that landed just before the breakage is
                    # kept, the rest joins the casualty list.
                    for future, task in pending.items():
                        if future.done() and future.exception() is None:
                            yield future.result()
                        else:
                            broken.append((task, future in running_since))
                    pending.clear()
                    yield from self._casualties(
                        broken,
                        dispatch_order,
                        workers,
                        timeout_killed,
                        attempts,
                        strikes,
                    )
        finally:
            pool.shutdown(wait=True)

    def _casualties(
        self,
        broken: list[tuple[SolveTask, bool]],
        dispatch_order: dict[int, int],
        workers: int,
        innocent: bool,
        attempts: dict[int, int],
        strikes: dict[int, int],
    ) -> "Iterator[SolveResult | SolveTask]":
        """Classify every task lost with the pool: requeue or give up.

        ``innocent=True`` (a deliberate watchdog termination) requeues
        everything without penalty.  Otherwise tasks observed running on
        the dead worker collect a strike.  If the death was too fast to
        observe any running future, a lone casualty is charged (it is
        the only candidate); with several, nobody is — the runner is
        asked to probe them one per pool round instead, so the next
        breakage identifies its killer without striking innocents, and
        a kill-on-arrival task still can never requeue forever.
        """
        if innocent:
            for task, _ in broken:
                yield task
            return
        if not any(was_running for _, was_running in broken):
            if len(broken) > 1:
                # More casualties than certainty: blaming the first
                # ``workers`` by dispatch order would strike innocents,
                # so nobody is charged — the runner probes tasks one at
                # a time instead, and the next breakage is definitive.
                self._probe_requested = True
                self.events.append(
                    FarmEvent(
                        "probe",
                        f"pool broke before any task was observed "
                        f"running; probing {len(broken)} suspect task(s) "
                        f"one at a time",
                    )
                )
                for task, _ in broken:
                    yield task
                return
            broken = [(task, True) for task, _ in broken]
        for task, was_running in broken:
            tid = task.task_id
            if was_running:
                strikes[tid] = strikes.get(tid, 0) + 1
                attempts[tid] = attempts.get(tid, 0) + 1
            if strikes.get(tid, 0) >= self.max_task_crashes:
                self.events.append(
                    FarmEvent(
                        "quarantine",
                        f"worker died {strikes[tid]} times under this "
                        f"task; quarantined to the in-process path",
                        tid,
                        task.cutset,
                    )
                )
                yield SolveResult(
                    tid,
                    error=f"quarantined after {strikes[tid]} worker crashes",
                    error_kind="quarantined",
                )
            elif attempts.get(tid, 0) >= self.max_task_attempts:
                yield SolveResult(
                    tid,
                    error=f"worker died on all {attempts[tid]} attempts",
                    error_kind="crash",
                )
            elif was_running:
                self.events.append(
                    FarmEvent(
                        "retry",
                        f"worker died under this task; requeued "
                        f"(attempt {attempts[tid] + 1})",
                        tid,
                        task.cutset,
                    )
                )
                yield task
            else:
                yield task


#: The process-wide warm farm, shared by consecutive analyses in one
#: process (the CLI, tests, future service loops) so the pool fork and
#: worker imports are paid once, not per analysis.
_WARM_FARM: SolverFarm | None = None


def warm_farm(
    jobs: int,
    task_timeout: float | None = None,
    options_key: object = None,
) -> SolverFarm:
    """The lazily-created shared farm for ``jobs`` workers.

    A different ``jobs`` count shuts the previous farm down and builds
    a new one; a different ``task_timeout`` just updates the attribute
    (it only gates the batched/per-task dispatch choice and the
    watchdog deadline of the next run).  ``options_key`` fingerprints
    the :class:`~repro.core.analyzer.AnalysisOptions` that affect worker
    behaviour: when it differs from the key the farm was serving, the
    persistent pool is recycled (surfaced as a ``pool.rebuilds`` metric
    on the next run) instead of serving stale worker config.  ``None``
    means "caller doesn't track options" and never
    forces a rebuild.  The farm's persistent pool is closed
    automatically at interpreter exit; call :func:`shutdown_warm_farm`
    for an explicit shutdown.
    """
    global _WARM_FARM
    if _WARM_FARM is not None and _WARM_FARM.jobs != jobs:
        shutdown_warm_farm()
    if _WARM_FARM is None:
        _WARM_FARM = SolverFarm(jobs, task_timeout=task_timeout)
        _WARM_FARM.options_key = options_key
    else:
        _WARM_FARM.task_timeout = task_timeout
        if options_key is not None and _WARM_FARM.options_key != options_key:
            _WARM_FARM.options_key = options_key
            _WARM_FARM.refresh_workers()
    return _WARM_FARM


def shutdown_warm_farm() -> None:
    """Close the shared farm's pool and forget it (idempotent)."""
    global _WARM_FARM
    if _WARM_FARM is not None:
        _WARM_FARM.close()
        _WARM_FARM = None


atexit.register(shutdown_warm_farm)
