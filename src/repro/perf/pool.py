"""The process-pool solver farm for unique cutset models.

Each :class:`SolveTask` carries one unique ``FT_C`` model (picklable —
plain data all the way down) plus its solver knobs and per-task
resource allowances; :func:`solve_task` runs in a worker process and
mirrors exactly the solving section of
:func:`repro.core.quantify.quantify_model`, including the fault-
injection checkpoints, so parallel runs degrade identically to serial
ones under the same faults.

Failures never escape a worker as exceptions: every error is captured
into the returned :class:`SolveResult`, and the parent decides how to
recover (the analyzer re-runs the affected cutsets through the PR-1
degradation ladder).  A worker that dies outright (a crashed process
breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`) is
likewise converted into per-task failure results, so one crash costs a
serial re-run of the affected cutsets, never the analysis.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.perf.schedule import order_largest_first

__all__ = [
    "SolveResult",
    "SolveTask",
    "SolverFarm",
    "resolve_jobs",
    "solve_task",
]


def resolve_jobs(jobs) -> int:
    """Normalise a ``--jobs`` value to a positive worker count.

    ``"auto"`` (or ``None``) means one worker per CPU the process may
    use; integers (and integer strings) pass through.  ``1`` means the
    serial in-process path — no pool is created at all.
    """
    if jobs is None or jobs == "auto":
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # platforms without CPU affinity
            return os.cpu_count() or 1
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


@dataclass(frozen=True)
class SolveTask:
    """One unique quantification problem, ready to cross a process boundary.

    ``model`` is the cutset's ``FT_C`` :class:`~repro.core.sdft.SdFaultTree`;
    ``cutset`` names the representative cutset (fault-injection context
    and error messages).  ``wall_allowance``/``state_allowance`` bound
    the worker-local budget — the parent derives them from the run
    budget's remaining headroom at dispatch time, so a worker cannot
    overrun the deadline unobserved.  ``estimated_states`` drives the
    largest-first schedule.
    """

    task_id: int
    model: object
    horizon: float
    epsilon: float
    max_chain_states: int
    lump_chains: bool
    cutset: tuple[str, ...]
    wall_allowance: float | None = None
    state_allowance: int | None = None
    estimated_states: int = 0
    #: When set, the worker records a ``pool.task`` span plus solver
    #: metrics and ships them back on the result (parent-side merge).
    collect_obs: bool = False
    #: Dispatch wall-clock (``time.time()``) for queue-wait accounting.
    submitted_at: float | None = None


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one unique solve — value or captured failure.

    ``probability`` is the *dynamic* reachability probability of the
    model (not yet multiplied by any cutset's static factor, which is
    member-specific).  ``error_kind`` classifies captured failures:
    ``"analysis"``/``"numerical"`` for solver errors, ``"budget"`` for
    an exhausted per-task allowance, ``"crash"`` for anything else
    (including a broken pool).
    """

    task_id: int
    probability: float = 0.0
    chain_states: int = 0
    solve_seconds: float = 0.0
    error: str | None = None
    error_kind: str | None = None
    #: Worker-recorded span payloads (dicts) and metrics snapshot,
    #: shipped back for the parent trace when the task collected them.
    spans: tuple = ()
    metrics: dict | None = None
    queue_wait_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the solve produced a value."""
        return self.error is None


def solve_task(task: SolveTask) -> SolveResult:
    """Solve one unique model; runs inside a worker process.

    Mirrors the dynamic-solve section of
    :func:`repro.core.quantify.quantify_model` step for step — same
    fault-injection stages, same operations in the same order — so a
    fault armed before the pool forked trips here exactly as it would
    have in the serial loop.
    """
    from repro.ctmc.lumping import lump
    from repro.ctmc.product import build_product
    from repro.ctmc.transient import reach_probability
    from repro.errors import AnalysisError, BudgetExceededError, NumericalError
    from repro.obs.core import NULL_OBS, Observability
    from repro.robust import faults
    from repro.robust.budget import Budget

    obs = NULL_OBS
    if task.collect_obs:
        # A worker-local trace slice: span ids are prefixed with the
        # task id so the parent can merge every worker's records into
        # one trace without collisions.
        obs = Observability.collecting(prefix=f"t{task.task_id}.")
    queue_wait = 0.0
    if task.submitted_at is not None:
        queue_wait = max(0.0, time.time() - task.submitted_at)

    def _shipped(result: SolveResult) -> SolveResult:
        if not obs.enabled:
            return result
        import dataclasses

        return dataclasses.replace(
            result,
            spans=tuple(r.to_dict() for r in obs.tracer.records()),
            metrics=obs.metrics.snapshot(),
            queue_wait_seconds=queue_wait,
        )

    started = time.perf_counter()
    cutset = frozenset(task.cutset)
    try:
        with obs.tracer.span(
            "pool.task",
            task_id=task.task_id,
            pid=os.getpid(),
            cutset="+".join(task.cutset),
            queue_wait_seconds=queue_wait,
        ) as span:
            budget = None
            if task.wall_allowance is not None or task.state_allowance is not None:
                budget = Budget(
                    wall_seconds=task.wall_allowance,
                    max_total_states=task.state_allowance,
                )
            faults.check("chain_build", cutset=cutset)
            product = build_product(task.model, max_states=task.max_chain_states)
            chain = product.chain
            solved_states = product.n_states
            if task.lump_chains:
                faults.check("lump", cutset=cutset)
                lumped = lump(chain.with_absorbing(chain.failed))
                chain = lumped.chain
                solved_states = chain.n_states
            if budget is not None:
                budget.charge_states(solved_states, "quantify")
            faults.check("transient_solve", cutset=cutset)
            probability = reach_probability(
                chain,
                task.horizon,
                epsilon=task.epsilon,
                budget=budget,
                metrics=obs.metrics,
            )
            span.set(chain_states=solved_states, probability=probability)
    except BudgetExceededError as error:
        return _shipped(
            SolveResult(task.task_id, error=str(error), error_kind="budget")
        )
    except NumericalError as error:
        return _shipped(
            SolveResult(task.task_id, error=str(error), error_kind="numerical")
        )
    except AnalysisError as error:
        return _shipped(
            SolveResult(task.task_id, error=str(error), error_kind="analysis")
        )
    except Exception as error:  # a worker must never raise across the pool
        return _shipped(
            SolveResult(
                task.task_id,
                error=f"{type(error).__name__}: {error}",
                error_kind="crash",
            )
        )
    return _shipped(
        SolveResult(
            task.task_id,
            probability=probability,
            chain_states=solved_states,
            solve_seconds=time.perf_counter() - started,
        )
    )


class SolverFarm:
    """Run solve tasks on a process pool, yielding results as they land.

    Tasks are dispatched largest-estimated-chain-first (pool tail
    latency); results stream back in completion order — the caller is
    responsible for folding them deterministically.  Every task yields
    exactly one :class:`SolveResult`: a worker-process death surfaces as
    ``error_kind="crash"`` results for the tasks it took down, never as
    an exception.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    @staticmethod
    def _context():
        """Fork where available: cheap task shipping, inherited state."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    def run(self, tasks: Iterable[SolveTask]) -> Iterator[SolveResult]:
        """Yield one result per task, in completion order."""
        ordered = order_largest_first(tasks)
        if not ordered:
            return
        workers = min(self.jobs, len(ordered))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=self._context()
        ) as pool:
            pending = {pool.submit(solve_task, task): task for task in ordered}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = pending.pop(future)
                    try:
                        yield future.result()
                    except Exception as error:  # pool broke under the task
                        yield SolveResult(
                            task.task_id,
                            error=f"worker died: {type(error).__name__}: {error}",
                            error_kind="crash",
                        )
