"""Signature-based deduplication of per-cutset solves.

Identical ``FT_C`` shapes recur massively across a cutset list — the
same redundant trains appear in thousands of cutsets.  The serial
pipeline exploits that incidentally through a solve cache; for parallel
execution the grouping must happen *up front*, so the pool is handed
exactly one task per unique model instead of racing duplicate solves.

A :class:`DedupPlan` collects dynamic cutset models keyed by their
:func:`~repro.perf.fingerprint.model_signature` and exposes the unique
groups in deterministic first-seen order, plus the dedup statistics the
run report surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DedupPlan", "ModelGroup"]


@dataclass
class ModelGroup:
    """All cutsets sharing one quantification problem.

    ``representative`` is the :class:`~repro.core.cutset_model.CutsetModel`
    of the first member — its ``model`` is the one handed to a solver.
    ``result`` is filled in by the execution layer once the unique solve
    lands (a :class:`~repro.perf.pool.SolveResult`).
    """

    key: tuple
    representative: object
    members: list[frozenset] = field(default_factory=list)
    result: object | None = None

    @property
    def n_members(self) -> int:
        """Number of cutsets answered by this group's single solve."""
        return len(self.members)


class DedupPlan:
    """Deterministic grouping of dynamic cutset models by signature."""

    def __init__(self) -> None:
        self._groups: dict[tuple, ModelGroup] = {}

    def add(self, key: tuple, cutset_model) -> ModelGroup:
        """Register one dynamic cutset model under its signature.

        The first model registered for a key becomes the group's
        representative; later members only extend the fold list.
        """
        group = self._groups.get(key)
        if group is None:
            group = ModelGroup(key, cutset_model)
            self._groups[key] = group
        group.members.append(cutset_model.cutset)
        return group

    def get(self, key: tuple) -> ModelGroup:
        """The group registered under ``key``."""
        return self._groups[key]

    @property
    def groups(self) -> list[ModelGroup]:
        """All groups, in deterministic first-seen order."""
        return list(self._groups.values())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def n_models(self) -> int:
        """Total dynamic models registered (duplicates included)."""
        return sum(group.n_members for group in self._groups.values())

    @property
    def n_unique(self) -> int:
        """Unique quantification problems (= solver tasks needed)."""
        return len(self._groups)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of dynamic solves avoided by sharing, in ``[0, 1)``."""
        total = self.n_models
        if total == 0:
            return 0.0
        return (total - self.n_unique) / total

    def __repr__(self) -> str:
        return (
            f"DedupPlan({self.n_models} models, {self.n_unique} unique, "
            f"ratio {self.dedup_ratio:.2f})"
        )
