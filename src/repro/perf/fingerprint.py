"""Content-based signatures of per-cutset quantification problems.

A signature identifies everything the reachability probability of an
``FT_C`` model depends on: the gate structure, the dynamic events with
their chain *contents* (:meth:`repro.ctmc.chain.Ctmc.fingerprint`), the
static guards with probabilities, the trigger edges and the horizon.

Unlike the historical ``id(chain)`` keys, these signatures are stable
across processes and recognise structurally-identical chains built
separately — which makes them usable both for the in-process
quantification cache (:class:`repro.core.quantify.QuantificationCache`)
and for the cross-process dedup of :mod:`repro.perf.dedup`.
"""

from __future__ import annotations

__all__ = ["model_signature"]


def model_signature(model, horizon: float) -> tuple:
    """A hashable key identifying one quantification problem.

    ``model`` is the :class:`~repro.core.sdft.SdFaultTree` of a cutset's
    ``FT_C``; identical keys guarantee identical reachability
    probabilities, so a solve may be shared between all cutsets whose
    models produce the same signature.
    """
    gates = tuple(
        (g.name, g.gate_type.value, g.children, g.k)
        for g in sorted(model.gates.values(), key=lambda g: g.name)
    )
    dynamic = tuple(
        (name, event.chain.fingerprint())
        for name, event in sorted(model.dynamic_events.items())
    )
    static = tuple(
        (name, event.probability)
        for name, event in sorted(model.static_events.items())
    )
    triggers = tuple(sorted((g, tuple(e)) for g, e in model.triggers.items()))
    return (gates, dynamic, static, triggers, horizon)
